"""Incremental-vs-cold equivalence for the refutation loop and the
threshold search (the ``IncrementalLP`` consumers).

The incremental path must be a pure performance change: bit-identical
``Fraction`` gaps, the same best witness, valid certificates — with
measurably fewer exact factorizations, asserted through the solver
stats that ``BENCH_lp.json`` tracks.
"""

from dataclasses import replace
from fractions import Fraction

import pytest

from repro import AnalysisConfig, load_program
from repro.bench.suite import SUITE, load_pair
from repro.core import DiffCostAnalyzer, analyze_diffcost, refute_threshold
from repro.core.refutation import default_witnesses
from repro.errors import AnalysisError
from repro.invariants.polyhedron import Polyhedron


@pytest.fixture(scope="module")
def dis2_pair():
    return load_pair("dis2")


@pytest.fixture(scope="module")
def dis2_config():
    pair = next(p for p in SUITE if p.name == "dis2")
    return pair.config("exact-warm")


class TestIncrementalRefutationEquivalence:
    @pytest.fixture(scope="class")
    def both_runs(self, dis2_pair, dis2_config):
        old, new = dis2_pair
        incremental = refute_threshold(
            old, new, 0, replace(dis2_config, lp_incremental=True)
        )
        cold = refute_threshold(
            old, new, 0, replace(dis2_config, lp_incremental=False)
        )
        return incremental, cold

    def test_gap_and_witness_bit_identical(self, both_runs):
        incremental, cold = both_runs
        assert incremental.status == cold.status
        assert isinstance(incremental.guaranteed_difference, Fraction)
        assert incremental.guaranteed_difference == cold.guaranteed_difference
        assert incremental.witness_input == cold.witness_input

    def test_certificates_certify_the_gap(self, both_runs):
        # The two paths may stop at different vertices of the optimal
        # face, so the certificates need not be syntactically equal —
        # but both must certify exactly the reported gap at the chosen
        # witness: chi(l0, w) - phi(l0, w) == gap.
        for result in both_runs:
            witness = result.witness_input
            chi = result.anti_potential_new.initial_value(witness)
            phi = result.potential_old.initial_value(witness)
            assert chi - phi == result.guaranteed_difference

    def test_incremental_does_fewer_factorizations(self, both_runs):
        incremental, cold = both_runs
        stats_inc, stats_cold = incremental.lp_stats, cold.lp_stats
        assert stats_inc["incremental"] is True
        assert stats_cold["incremental"] is False
        assert stats_inc["solves"] == stats_cold["solves"] >= 3
        # One cold start, every further witness a basis re-solve.
        assert stats_inc["cold_solves"] == 1
        assert stats_inc["resolves"] == stats_inc["solves"] - 1
        # The headline: the eta-file re-solves amortize the exact
        # factorizations the cold loop pays per witness.
        assert 3 * stats_inc["factorizations"] <= stats_cold["factorizations"]

    def test_scipy_backend_shares_the_single_encoding(self, dis2_pair):
        # The one-encode loop is backend-independent: float backends
        # share the encoding too (cold solves, swapped objectives) and
        # must keep producing the same refutations as before.
        old, new = dis2_pair
        result = refute_threshold(
            old, new, 0, AnalysisConfig(lp_backend="scipy")
        )
        assert result.is_refuted
        assert result.lp_stats["incremental"] is True
        assert result.lp_stats["solves"] >= 3
        cold = refute_threshold(
            old, new, 0,
            AnalysisConfig(lp_backend="scipy", lp_incremental=False),
        )
        assert cold.is_refuted
        assert cold.witness_input == result.witness_input


class TestWitnessDeduplication:
    def test_degenerate_box_yields_single_witness(self):
        source = """
        proc p(n) {
          assume(3 <= n && n <= 3);
          var i = 0;
          while (i < n) { tick(1); i = i + 1; }
        }
        """
        program = load_program(source, name="fixed")
        analyzer = DiffCostAnalyzer(program, program)
        theta0 = Polyhedron(analyzer.combined_theta0())
        witnesses = default_witnesses(
            analyzer.old_system, analyzer.new_system, theta0
        )
        # All corners and the center coincide on a point box: exactly
        # one candidate may survive per distinct point.
        keys = [tuple(sorted(w.items())) for w in witnesses]
        assert len(keys) == len(set(keys))
        distinct_n = {w["n"] for w in witnesses}
        assert distinct_n == {3}

    def test_partially_degenerate_box(self):
        source = """
        proc p(a, b) {
          assume(2 <= a && a <= 2);
          assume(0 <= b && b <= 4);
          var i = 0;
          while (i < b) { tick(a); i = i + 1; }
        }
        """
        program = load_program(source, name="half")
        analyzer = DiffCostAnalyzer(program, program)
        theta0 = Polyhedron(analyzer.combined_theta0())
        witnesses = default_witnesses(
            analyzer.old_system, analyzer.new_system, theta0
        )
        keys = [tuple(sorted(w.items())) for w in witnesses]
        assert len(keys) == len(set(keys))


class TestThresholdSearch:
    def test_probes_match_the_minimized_threshold(self, dis2_pair):
        old, new = dis2_pair
        analyzer = DiffCostAnalyzer(old, new, AnalysisConfig())
        reference = analyze_diffcost(
            old, new, AnalysisConfig(lp_backend="exact-warm")
        )
        assert reference.is_threshold
        threshold = reference.threshold
        search = analyzer.threshold_search(
            [threshold + 50, threshold, threshold - 1]
        )
        assert search.threshold == threshold
        assert search.feasible[Fraction(threshold) + 50] is True
        assert search.feasible[Fraction(threshold)] is True
        assert search.feasible[Fraction(threshold) - 1] is False
        assert search.tightest_feasible() == threshold
        # One encoding, one cold factorization; tighter caps ride the
        # dual simplex.
        assert search.lp_stats["cold_solves"] == 1
        assert search.lp_stats["dual_resolves"] >= 1

    def test_all_caps_below_threshold(self, dis2_pair):
        old, new = dis2_pair
        analyzer = DiffCostAnalyzer(old, new, AnalysisConfig())
        search = analyzer.threshold_search([1, 0])
        assert search.threshold is None
        assert search.feasible == {Fraction(1): False, Fraction(0): False}
        assert search.tightest_feasible() is None

    def test_requires_candidates(self, dis2_pair):
        old, new = dis2_pair
        analyzer = DiffCostAnalyzer(old, new, AnalysisConfig())
        with pytest.raises(AnalysisError, match="candidate"):
            analyzer.threshold_search([])
