"""The tiered result cache: hot LRU, warm append-log, migration,
maintenance, and the cache-correctness bugfix regressions.

The invariants under test, per tier:

- **hot**: populated only by a disk-verified read, bounded LRU, repeat
  lookups never touch disk again;
- **warm**: single append-log + sidecar index, O(1) re-open (the
  ``dir_scan_entries`` counter stays zero after migration), compaction
  and age-bounded eviction never lose a live verified entry;
- **facade**: legacy directories migrate transparently, ``merge_from``
  copies only entries ``get`` would trust, transient I/O errors are
  plain misses (never quarantine), quarantine files age out and are
  visible in ``stats()``.
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro.config import AnalysisConfig
from repro.engine.cache import (
    DEFAULT_HOT_CAPACITY,
    ResultCache,
    build_entry,
    classify_entry,
)
from repro.engine.cache.hot import HotTier
from repro.engine.cache.warm import WarmStore, read_log_records
from repro.engine.jobs import AnalysisJob, JobResult
from repro.errors import AnalysisError


def job(index: int) -> AnalysisJob:
    source = (
        "proc p(n) {\n"
        f"  assume(1 <= n && n <= {index + 2});\n"
        "  var i = 0;\n"
        "  while (i < n) { tick(1); i = i + 1; }\n"
        "}\n"
    )
    return AnalysisJob(kind="single", old_source=source,
                       config=AnalysisConfig(), name=f"tier{index}")


def result(the_job: AnalysisJob, index: int) -> JobResult:
    return JobResult(
        job_key=the_job.key,
        name=the_job.name,
        kind=the_job.kind,
        status="ok",
        outcome="bounded",
        threshold=float(index),
        threshold_str=str(index),
        message=f"tier entry {index}",
        seconds=0.25,
    )


def fill(cache: ResultCache, count: int) -> list[str]:
    keys = []
    for index in range(count):
        the_job = job(index)
        assert cache.put(the_job, result(the_job, index))
        keys.append(the_job.key)
    return keys


class TestHotTier:
    def test_repeat_lookup_skips_disk_entirely(self, tmp_path):
        cache = ResultCache(tmp_path / "cache", backend="warm")
        [key] = fill(cache, 1)
        first = cache.get(key)
        assert first is not None and first.cached
        # Remove the disk tier out from under the handle: only a pure
        # in-process hit can answer now.
        (tmp_path / "cache" / "warm.log").unlink()
        second = cache.get(key)
        assert second is not None
        assert second.threshold == first.threshold
        assert cache.hot.hits == 1
        assert cache.hits == 2

    def test_store_does_not_prime_the_hot_tier(self, tmp_path):
        # Only a verified read vouches for an entry: the bytes published
        # by put() may be damaged behind our back (torn writes).
        cache = ResultCache(tmp_path / "cache", backend="warm")
        fill(cache, 3)
        assert len(cache.hot) == 0

    def test_lru_eviction_is_bounded_and_orders_by_recency(self):
        hot = HotTier(capacity=2)
        hot.put("a", {"x": 1})
        hot.put("b", {"x": 2})
        assert hot.get("a") == {"x": 1}  # refresh a
        hot.put("c", {"x": 3})  # evicts b, the least recently used
        assert hot.get("b") is None
        assert hot.get("a") is not None
        assert hot.get("c") is not None
        assert hot.evictions == 1
        assert len(hot) == 2

    def test_zero_capacity_disables_the_tier(self, tmp_path):
        cache = ResultCache(tmp_path / "cache", backend="warm",
                            hot_capacity=0)
        [key] = fill(cache, 1)
        assert cache.get(key) is not None
        assert cache.get(key) is not None
        assert len(cache.hot) == 0 and cache.hot.hits == 0

    def test_default_capacity_is_sane(self):
        assert DEFAULT_HOT_CAPACITY >= 64


class TestWarmStore:
    def test_round_trip_and_reopen(self, tmp_path):
        cache = ResultCache(tmp_path / "cache", backend="warm")
        keys = fill(cache, 5)
        for index, key in enumerate(keys):
            got = cache.get(key)
            assert got is not None
            assert got.threshold == float(index)
        reopened = ResultCache(tmp_path / "cache", backend="warm")
        assert len(reopened) == 5
        assert reopened.get(keys[3]).threshold == 3.0

    def test_reopen_does_no_per_entry_directory_scan(self, tmp_path):
        cache = ResultCache(tmp_path / "cache", backend="warm")
        fill(cache, 8)
        reopened = ResultCache(tmp_path / "cache", backend="warm")
        stats = reopened.stats()
        assert stats["entries"] == 8
        assert stats["dir_scan_entries"] == 0
        assert stats["warm_backend"] == 1

    def test_sidecar_survives_and_generation_matches(self, tmp_path):
        cache = ResultCache(tmp_path / "cache", backend="warm")
        fill(cache, 4)
        cache.warm.write_sidecar()
        sidecar = json.loads(
            (tmp_path / "cache" / ".warm-index.json").read_text())
        assert sidecar["generation"] == cache.warm.generation
        assert len(sidecar["entries"]) == 4

    def test_auto_backend_detects_a_warm_log(self, tmp_path):
        ResultCache(tmp_path / "cache", backend="warm")
        assert ResultCache(tmp_path / "cache",
                           backend="auto").backend == "warm"
        assert ResultCache(tmp_path / "dir-cache",
                           backend="auto").backend == "dir"
        with pytest.raises(AnalysisError):
            ResultCache(tmp_path / "x", backend="lukewarm")

    def test_compaction_drops_superseded_records_keeps_answers(
            self, tmp_path):
        cache = ResultCache(tmp_path / "cache", backend="warm")
        keys = fill(cache, 4)
        # Rewrite every key once (overwrite path) to fatten the log,
        # then tombstone one.
        for index in range(4):
            the_job = job(index)
            cache.warm.append_many(
                [(the_job.key, build_entry(the_job,
                                           result(the_job, index)))],
                overwrite=True)
        cache.warm.remove(keys[0])
        before = cache.warm.log_bytes()
        summary = cache.compact()
        assert summary["aborted"] == 0
        assert summary["kept"] == 3
        assert cache.warm.log_bytes() < before
        assert cache.get(keys[0]) is None
        for index in (1, 2, 3):
            assert cache.get(keys[index]).threshold == float(index)

    def test_compaction_is_visible_to_a_second_handle(self, tmp_path):
        writer = ResultCache(tmp_path / "cache", backend="warm")
        reader = ResultCache(tmp_path / "cache", backend="warm")
        keys = fill(writer, 3)
        assert reader.get(keys[0]) is not None  # reader indexed gen 1
        writer.compact()  # publishes generation 2, new inode
        for index, key in enumerate(keys):
            assert reader.get(key).threshold == float(index)

    def test_eviction_is_age_bounded(self, tmp_path):
        cache = ResultCache(tmp_path / "cache", backend="warm")
        now = time.time()
        old_job, fresh_job = job(0), job(1)
        cache.warm.append(old_job.key, build_entry(old_job,
                                                   result(old_job, 0)),
                          ts=now - 3600)
        cache.warm.append(fresh_job.key, build_entry(fresh_job,
                                                     result(fresh_job, 1)),
                          ts=now)
        assert cache.evict(max_age_s=600, now=now) == 1
        assert cache.get(old_job.key) is None
        assert cache.get(fresh_job.key) is not None
        assert cache.stats()["evicted"] == 1

    def test_torn_log_tail_is_healed_not_fatal(self, tmp_path):
        cache = ResultCache(tmp_path / "cache", backend="warm")
        keys = fill(cache, 3)
        log = tmp_path / "cache" / "warm.log"
        data = log.read_bytes()
        log.write_bytes(data[:-10])  # a crash mid-append tears the tail
        reopened = ResultCache(tmp_path / "cache", backend="warm")
        # The torn record is lost (it never finished), every record
        # before it survives, and new appends still work.
        assert reopened.get(keys[0]).threshold == 0.0
        assert reopened.get(keys[1]).threshold == 1.0
        the_job = job(9)
        assert reopened.put(the_job, result(the_job, 9))
        assert reopened.get(the_job.key) is not None

    def test_clear_empties_the_log(self, tmp_path):
        cache = ResultCache(tmp_path / "cache", backend="warm")
        fill(cache, 3)
        assert cache.clear() == 3
        assert len(cache) == 0
        assert ResultCache(tmp_path / "cache", backend="warm") \
            .stats()["entries"] == 0


class TestLegacyMigration:
    def test_legacy_directory_migrates_transparently(self, tmp_path):
        legacy = ResultCache(tmp_path / "cache")  # dir backend
        keys = fill(legacy, 5)
        warm = ResultCache(tmp_path / "cache", backend="warm")
        assert warm.migrated == 5
        assert sorted(tmp_path.joinpath("cache").glob("[!.]*.json")) == []
        for index, key in enumerate(keys):
            assert warm.get(key).threshold == float(index)
        # The migration scan was the last directory walk ever: a third
        # open finds nothing to migrate and scans nothing.
        again = ResultCache(tmp_path / "cache", backend="warm")
        assert again.migrated == 0
        assert again.stats()["dir_scan_entries"] == 0

    def test_migration_quarantines_corrupt_and_drops_stale(self, tmp_path):
        legacy = ResultCache(tmp_path / "cache")
        keys = fill(legacy, 2)
        # keys[0]: bit rot (checksum mismatch); a third file: stale
        # checksum-less legacy entry.
        path = legacy.path_for(keys[0])
        entry = json.loads(path.read_text())
        entry["result"]["threshold"] = 999.0
        path.write_text(json.dumps(entry))
        stale = dict(entry)
        del stale["checksum"]
        (tmp_path / "cache" / "deadbeef.json").write_text(
            json.dumps(stale))
        warm = ResultCache(tmp_path / "cache", backend="warm")
        assert warm.migrated == 1  # only the intact entry traveled
        assert warm.corrupted == 1
        assert (tmp_path / "cache" / f"{keys[0]}.corrupt").exists()
        assert not (tmp_path / "cache" / "deadbeef.json").exists()
        assert warm.get(keys[1]) is not None


class TestMergeTrust:
    def test_merge_skips_stale_legacy_entries(self, tmp_path):
        """Regression: ``merge_from`` used to copy checksum-less and
        version-mismatched entries that ``get`` would never replay —
        dead weight spread shard to shard, forever re-skipped."""
        source = ResultCache(tmp_path / "source")
        keys = fill(source, 3)
        # keys[0] loses its checksum (pre-checksum legacy format);
        # keys[1] claims a future schema version.
        for key, damage in ((keys[0], "checksum"), (keys[1], "version")):
            path = source.path_for(key)
            entry = json.loads(path.read_text())
            if damage == "checksum":
                del entry["checksum"]
            else:
                entry["version"] = 99
            path.write_text(json.dumps(entry))
        destination = ResultCache(tmp_path / "destination")
        assert destination.merge_from(tmp_path / "source") == 1
        assert destination.merge_skipped == 2
        assert len(destination) == 1
        assert destination.get(keys[2]) is not None

    def test_merge_reads_both_source_formats(self, tmp_path):
        warm_source = ResultCache(tmp_path / "warm-source", backend="warm")
        dir_source = ResultCache(tmp_path / "dir-source")
        warm_keys = fill(warm_source, 2)
        the_job = job(7)
        dir_source.put(the_job, result(the_job, 7))
        destination = ResultCache(tmp_path / "destination", backend="warm")
        copied = destination.merge_from(tmp_path / "warm-source")
        copied += destination.merge_from(tmp_path / "dir-source")
        assert copied == 3
        for key in (*warm_keys, the_job.key):
            assert destination.get(key) is not None
        # The warm source log was never written to.
        assert len(ResultCache(tmp_path / "warm-source",
                               backend="warm")) == 2

    def test_merge_is_first_writer_wins(self, tmp_path):
        a = ResultCache(tmp_path / "a", backend="warm")
        b = ResultCache(tmp_path / "b", backend="warm")
        fill(a, 2)
        fill(b, 2)
        destination = ResultCache(tmp_path / "dest", backend="warm")
        assert destination.merge_from(tmp_path / "a") == 2
        assert destination.merge_from(tmp_path / "b") == 0  # all present
        assert len(destination) == 2


class TestTransientIOErrors:
    def test_oserror_is_a_plain_miss_and_entry_survives(self, tmp_path,
                                                        monkeypatch):
        """Regression: ``get`` used to lump EACCES/EMFILE/NFS hiccups
        with decode failures and quarantine perfectly healthy entries —
        a transient error permanently cost the entry."""
        cache = ResultCache(tmp_path / "cache")
        [key] = fill(cache, 1)
        path = cache.path_for(key)
        real_read_bytes = Path.read_bytes

        def flaky_read_bytes(self):
            if self == path:
                raise PermissionError(13, "Permission denied", str(self))
            return real_read_bytes(self)

        monkeypatch.setattr(Path, "read_bytes", flaky_read_bytes)
        assert cache.get(key) is None  # a miss, not a crash
        monkeypatch.undo()
        assert cache.io_errors == 1
        assert cache.corrupted == 0
        assert path.exists()  # never quarantined
        assert not path.with_suffix(".corrupt").exists()
        assert cache.get(key) is not None  # the next reader is luckier
        assert cache.stats()["io_errors"] == 1

    def test_decode_failure_still_quarantines(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        [key] = fill(cache, 1)
        cache.path_for(key).write_bytes(b"}{ not json")
        assert cache.get(key) is None
        assert cache.corrupted == 1
        assert cache.io_errors == 0
        assert cache.path_for(key).with_suffix(".corrupt").exists()


class TestQuarantineLifecycle:
    def test_aged_corrupt_files_swept_fresh_kept(self, tmp_path):
        """Regression: ``.corrupt`` files accumulated forever and were
        invisible to ``stats()``."""
        directory = tmp_path / "cache"
        directory.mkdir()
        old = directory / "aaaa.corrupt"
        old.write_text("rotten")
        long_ago = time.time() - 30 * 24 * 3600
        os.utime(old, (long_ago, long_ago))
        fresh = directory / "bbbb.corrupt"
        fresh.write_text("fresh evidence")
        cache = ResultCache(directory)
        assert cache.corrupt_swept == 1
        assert not old.exists()
        assert fresh.exists()  # post-mortem evidence survives the sweep
        stats = cache.stats()
        assert stats["corrupt_swept"] == 1
        assert stats["corrupt_files"] == 1
        assert stats["total_bytes"] >= len("fresh evidence")

    def test_stats_schema_includes_quarantine_everywhere(self, tmp_path):
        empty = ResultCache.empty_stats()
        assert "corrupt_files" in empty and "corrupt_swept" in empty
        for backend in ("dir", "warm"):
            cache = ResultCache(tmp_path / backend, backend=backend)
            assert set(cache.stats()) == set(empty)

    def test_warm_quarantine_writes_corpse_and_tombstones(self, tmp_path):
        cache = ResultCache(tmp_path / "cache", backend="warm")
        [key] = fill(cache, 1)
        # Scribble over the record in place: bit rot inside the log.
        offset, length, _ts = cache.warm.index[key]
        with open(cache.warm.log_path, "r+b") as handle:
            handle.seek(offset)
            handle.write(b"x" * (length - 1))
        assert cache.get(key) is None
        assert cache.corrupted == 1
        assert (tmp_path / "cache" / f"{key}.corrupt").exists()
        # The slot is tombstoned: the next lookup is a plain miss.
        assert cache.get(key) is None
        assert cache.corrupted == 1


class TestFederationPrimitives:
    def test_delta_since_apply_delta_round_trip(self, tmp_path):
        a = ResultCache(tmp_path / "a", backend="warm")
        b = ResultCache(tmp_path / "b", backend="warm")
        keys = fill(a, 3)
        watermark, records = a.delta_since(0.0)
        assert watermark > 0.0
        assert sorted(r["key"] for r in records) == sorted(keys)
        applied, skipped = b.apply_delta(records)
        assert (applied, skipped) == (3, 0)
        for index, key in enumerate(keys):
            assert b.get(key).threshold == float(index)
        # Idempotent: re-delivery applies nothing.
        assert b.apply_delta(records) == (0, 0)
        # Nothing newer than the watermark.
        _wm, newer = a.delta_since(watermark)
        assert newer == []

    def test_delta_never_ships_untrusted_entries(self, tmp_path):
        a = ResultCache(tmp_path / "a")
        keys = fill(a, 2)
        path = a.path_for(keys[0])
        entry = json.loads(path.read_text())
        del entry["checksum"]
        path.write_text(json.dumps(entry))
        _watermark, records = a.delta_since(0.0)
        assert [r["key"] for r in records] == [keys[1]]

    def test_apply_delta_rejects_unsafe_and_untrusted_records(
            self, tmp_path):
        b = ResultCache(tmp_path / "b", backend="warm")
        the_job = job(0)
        good = build_entry(the_job, result(the_job, 0))
        bad = dict(good, checksum="0" * 64)
        applied, skipped = b.apply_delta([
            {"key": "../../etc/passwd", "ts": 1.0, "entry": good},
            {"key": "", "ts": 1.0, "entry": good},
            {"key": "deadbeef", "ts": 1.0, "entry": bad},
            "not-a-record",
            {"key": the_job.key, "ts": 1.0, "entry": good},
        ])
        assert (applied, skipped) == (1, 4)
        assert b.get(the_job.key) is not None
        assert b.merge_skipped == 1  # only the checksum-failing record


class TestCacheCLI:
    def run_cli(self, capsys, *argv):
        from repro.cli import main

        code = main(list(argv))
        return code, capsys.readouterr().out

    def test_stats_compact_evict(self, tmp_path, capsys):
        cache = ResultCache(tmp_path / "cache", backend="warm")
        fill(cache, 3)
        cache.warm.remove(job(0).key)

        code, out = self.run_cli(
            capsys, "cache", "stats", "--cache-dir", str(tmp_path / "cache"))
        assert code == 0
        stats = json.loads(out)
        assert stats["entries"] == 2
        assert stats["warm_backend"] == 1  # --cache-backend auto found it

        code, out = self.run_cli(
            capsys, "cache", "compact",
            "--cache-dir", str(tmp_path / "cache"))
        assert code == 0
        assert json.loads(out)["kept"] == 2

        code, out = self.run_cli(
            capsys, "cache", "evict",
            "--cache-dir", str(tmp_path / "cache"), "--max-age-s", "0")
        assert code == 0
        assert "evicted 2 entries" in out

    def test_compact_refuses_the_dir_backend(self, tmp_path, capsys):
        ResultCache(tmp_path / "cache")  # plain directory cache
        code, _out = self.run_cli(
            capsys, "cache", "compact",
            "--cache-dir", str(tmp_path / "cache"))
        assert code == 2  # structured ReproError exit

    def test_migration_via_warm_open(self, tmp_path, capsys):
        legacy = ResultCache(tmp_path / "cache")
        fill(legacy, 4)
        code, out = self.run_cli(
            capsys, "cache", "stats",
            "--cache-dir", str(tmp_path / "cache"),
            "--cache-backend", "warm")
        assert code == 0
        stats = json.loads(out)
        assert stats["migrated"] == 4
        assert stats["entries"] == 4


class TestWarmLogReader:
    def test_read_log_records_is_read_only_and_complete(self, tmp_path):
        cache = ResultCache(tmp_path / "cache", backend="warm")
        keys = fill(cache, 3)
        cache.warm.remove(keys[0])
        log = tmp_path / "cache" / "warm.log"
        before = log.read_bytes()
        records = read_log_records(log)
        assert sorted(records) == sorted(keys[1:])
        assert all(classify_entry(r["entry"]) == "ok"
                   for r in records.values())
        assert log.read_bytes() == before
