"""Tests for the naive two-pass baseline and the certificate checker."""

import random

import pytest

from repro import analyze_diffcost, load_program, naive_diffcost
from repro.core.checker import (
    CertificateChecker,
    certify_implications_exact,
    sample_inputs,
)
from repro.core.potentials import ANTI_POTENTIAL, POTENTIAL, PotentialFunction
from repro.errors import CertificateError
from repro.poly.polynomial import Polynomial

OLD = """
proc p(n) {
  assume(1 <= n && n <= 10);
  var i = 0;
  while (i < n) { tick(1); i = i + 1; }
}
"""

NEW = """
proc p(n) {
  assume(1 <= n && n <= 10);
  var i = 0;
  while (i < n) { tick(2); i = i + 1; }
}
"""


class TestNaiveBaseline:
    def test_naive_is_sound(self):
        old = load_program(OLD, name="old")
        new = load_program(NEW, name="new")
        result = naive_diffcost(old, new)
        assert result.is_threshold
        # True max diff is 2n - n = 10; naive must be >= that.
        assert float(result.threshold) >= 10 - 1e-6

    def test_naive_never_beats_simultaneous(self):
        old = load_program(OLD, name="old")
        new = load_program(NEW, name="new")
        simultaneous = analyze_diffcost(old, new)
        naive = naive_diffcost(old, new)
        assert float(naive.threshold) >= float(simultaneous.threshold) - 1e-6

    def test_naive_loses_on_relational_pair(self):
        # Equivalent versions whose cost min(n, m) is disjunctive: the
        # simultaneous analysis coordinates phi and chi so most of the
        # over-approximation cancels; the naive passes optimize each
        # unary bound at the box center and cannot coordinate.
        source = """
        proc p(n, m) {
          assume(1 <= n && n <= 10);
          assume(1 <= m && m <= 10);
          var x = 0;
          while (x < n && x < m) { tick(1); x = x + 1; }
        }
        """
        old = load_program(source, name="old")
        new = load_program(source, name="new")
        simultaneous = analyze_diffcost(old, new)
        naive = naive_diffcost(old, new)
        assert float(naive.threshold) > float(simultaneous.threshold) + 1


class TestRunBasedChecker:
    def _result(self):
        old = load_program(OLD, name="old")
        new = load_program(NEW, name="new")
        return old, new, analyze_diffcost(old, new)

    def test_valid_certificates_pass(self):
        old, new, result = self._result()
        checker = CertificateChecker(tolerance=1e-5)
        inputs = sample_inputs(new.system, 5, random.Random(0))
        checker.check_potential(result.potential_new, inputs).require_ok()
        checker.check_potential(result.anti_potential_old, inputs).require_ok()

    def test_bogus_potential_rejected(self):
        old, new, result = self._result()
        bogus = PotentialFunction(
            new.system,
            {location: Polynomial.constant(0)
             for location in new.system.locations},
            POTENTIAL,
        )
        checker = CertificateChecker(tolerance=1e-5)
        inputs = sample_inputs(new.system, 3, random.Random(0))
        report = checker.check_potential(bogus, inputs)
        assert not report.ok
        with pytest.raises(CertificateError):
            report.require_ok()

    def test_bogus_anti_potential_rejected(self):
        old, new, result = self._result()
        bogus = PotentialFunction(
            old.system,
            {location: Polynomial.constant(10**6)
             for location in old.system.locations},
            ANTI_POTENTIAL,
        )
        checker = CertificateChecker(tolerance=1e-5)
        inputs = sample_inputs(old.system, 3, random.Random(0))
        assert not checker.check_potential(bogus, inputs).ok

    def test_diffcost_check_detects_wrong_threshold(self):
        old, new, result = self._result()
        checker = CertificateChecker(tolerance=1e-5)
        inputs = sample_inputs(new.system, 4, random.Random(2))
        bad = checker.check_diffcost(
            old.system, new.system, threshold=0.0,
            potential_new=result.potential_new,
            anti_potential_old=result.anti_potential_old,
            inputs=inputs,
        )
        assert not bad.ok

    def test_cost_variable_rejected_in_certificates(self):
        old, _, _ = self._result()
        with pytest.raises(CertificateError):
            PotentialFunction(
                old.system,
                {old.system.initial_location: Polynomial.variable("cost")},
            )


class TestExactCertification:
    def test_exact_backend_certificates_certify(self):
        from fractions import Fraction

        from repro import AnalysisConfig
        from repro.core.diffcost import DiffCostAnalyzer, THRESHOLD_SYMBOL
        from repro.poly.template import TemplatePolynomial
        from repro.poly.linexpr import AffineExpr

        old = load_program(OLD, name="old")
        new = load_program(NEW, name="new")
        analyzer = DiffCostAnalyzer(
            old, new, AnalysisConfig(lp_backend="exact")
        )
        bound = TemplatePolynomial.from_symbol(THRESHOLD_SYMBOL)
        _old_t, _new_t, constraints = analyzer.build_constraints(bound)
        model = analyzer.encode(constraints)
        model.minimize(AffineExpr.variable(THRESHOLD_SYMBOL))
        solution = analyzer.solve(model)
        assignment = {
            name: value for name, value in solution.values.items()
            if isinstance(value, Fraction)
        }
        failures = certify_implications_exact(constraints, assignment, 2)
        assert failures == []

    def test_certification_flags_invalid_assignment(self):
        from fractions import Fraction

        from repro.core.diffcost import DiffCostAnalyzer, THRESHOLD_SYMBOL
        from repro.poly.template import TemplatePolynomial

        old = load_program(OLD, name="old")
        new = load_program(NEW, name="new")
        analyzer = DiffCostAnalyzer(old, new)
        bound = TemplatePolynomial.from_symbol(THRESHOLD_SYMBOL)
        _o, _n, constraints = analyzer.build_constraints(bound)
        # All-zero templates with t = -1 violate the diff constraint.
        assignment = {THRESHOLD_SYMBOL: Fraction(-1)}
        failures = certify_implications_exact(constraints, assignment, 2)
        assert any("diffcost" in name for name in failures)
