"""Tests of the benchmark suite itself: loading, ground-truth tightness
on shrunk boxes, and end-to-end shape on a fast subset.

The "Tight" column of Table 1 is determined analytically for each
reconstructed pair; here the exhaustive interpreter verifies the same
formulas on shrunk input boxes (full 100-wide boxes would be too slow to
enumerate), which validates the calibration.
"""

import pytest

from repro.bench import (
    SUITE,
    format_table,
    get_pair,
    load_pair,
    run_pair,
)
from repro.ts import CostSearch

SMALL = list(range(1, 5))


def max_diff(old_system, new_system, boxes: dict[str, list[int]]) -> int:
    """Exhaustive max of CostSup_new - CostInf_old over small boxes."""
    old_search = CostSearch(old_system)
    new_search = CostSearch(new_system)
    names = sorted(boxes)
    best = None

    def rec(index, assignment):
        nonlocal best
        if index == len(names):
            old_inputs = {v: assignment.get(v, 0)
                          for v in old_system.state_variables}
            new_inputs = {v: assignment.get(v, 0)
                          for v in new_system.state_variables}
            from repro.ts.guards import all_hold

            probe = dict(old_inputs)
            probe.update(new_inputs)
            probe["cost"] = 0
            if not all_hold(old_system.init_constraint, probe):
                return
            old_inf, _ = old_search.cost_bounds(old_inputs)
            _, new_sup = new_search.cost_bounds(new_inputs)
            diff = new_sup - old_inf
            best = diff if best is None else max(best, diff)
            return
        for value in boxes[names[index]]:
            assignment[names[index]] = value
            rec(index + 1, assignment)

    rec(0, {})
    assert best is not None
    return best


class TestSuiteRegistry:
    def test_twenty_entries(self):
        assert len(SUITE) == 20  # 19 Table 1 rows + the Fig. 1 example

    def test_all_pairs_load_and_validate(self):
        for pair in SUITE:
            old, new = load_pair(pair.name)
            assert old.system.name == f"{pair.name}_old"
            assert new.system.name == f"{pair.name}_new"

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            get_pair("no_such_benchmark")

    def test_nested_uses_cubic_templates(self):
        pair = get_pair("nested")
        assert pair.degree == 3 and pair.max_products == 3


# Ground-truth formulas for the tight threshold of each reconstructed
# pair, as a function of the (shrunk) input box maxima.  See
# DESIGN.md §4 for the derivations.
@pytest.mark.parametrize("name,formula", [
    ("join", lambda hi: hi * hi),
    ("simple_single", lambda hi: hi),
    ("simple_multiple", lambda hi: hi),
    ("sequential_single", lambda hi: hi),
    ("nested_single", lambda hi: hi + 1),
    ("nested_multiple", lambda hi: hi),
    ("nested_multiple_dep", lambda hi: hi * (hi - 1)),
    ("simple_multiple_dep", lambda hi: hi * hi),
    ("dis1", lambda hi: hi),
    ("ex2", lambda hi: hi - 1),
    ("ex4", lambda hi: 2 * hi + 1),
    ("ex6", lambda hi: hi - 1),
    ("ddec", lambda hi: 0),
    ("ddec_modified", lambda hi: 0),
    ("sum", lambda hi: 0),
])
def test_tight_formula_on_shrunk_box(name, formula):
    old, new = load_pair(name)
    params = load_pair(name)[0].params
    boxes = {param: SMALL for param in params}
    observed = max_diff(old.system, new.system, boxes)
    assert observed == formula(max(SMALL))


def test_dis2_tight_formula():
    old, new = load_pair("dis2")
    boxes = {"a": [0, 1, 2, 3], "b": [1, 2, 3, 4]}
    assert max_diff(old.system, new.system, boxes) == 4  # max(b - a)


def test_ex5_ex7_tight_on_small_inputs():
    # ex5: diff = min(n, 100) -> equals n for n <= 4.
    old, new = load_pair("ex5")
    assert max_diff(old.system, new.system, {"n": SMALL}) == max(SMALL)
    # ex7: diff = min(n, 1) = 1.
    old, new = load_pair("ex7")
    assert max_diff(old.system, new.system, {"n": SMALL}) == 1


def test_nested_zero_diff_on_small_inputs():
    old, new = load_pair("nested")
    boxes = {"n": [1, 2], "m": [1, 2], "p": [1, 2]}
    assert max_diff(old.system, new.system, boxes) == 0


class TestEndToEndSubset:
    @pytest.mark.parametrize("name", ["simple_single", "ex4", "dis2"])
    def test_fast_rows_tight(self, name):
        outcome = run_pair(get_pair(name))
        assert outcome.is_tight
        assert outcome.matches_paper_shape

    def test_expected_failure_rows(self):
        outcome = run_pair(get_pair("ex7"))
        assert outcome.computed is None
        assert outcome.matches_paper_shape

    def test_formatting(self):
        outcome = run_pair(get_pair("ex4"))
        table = format_table([outcome])
        assert "ex4" in table and "201" in table
