"""Unit, integration and property tests for the LP layer."""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import LPError
from repro.lp import (
    DenseSimplexBackend,
    ExactSimplexBackend,
    LPModel,
    LPStatus,
    RevisedSimplexBackend,
    ScipyBackend,
    WarmStartExactBackend,
    available_backends,
    backend_is_exact,
    get_backend,
)
from repro.lp.standard import standardize
from repro.poly.linexpr import AffineExpr

X = AffineExpr.variable("x")
Y = AffineExpr.variable("y")


def all_backends():
    return [
        ScipyBackend(),
        RevisedSimplexBackend(),
        WarmStartExactBackend(),
        DenseSimplexBackend(),
    ]


def exact_backends():
    return [
        RevisedSimplexBackend(),
        WarmStartExactBackend(),
        DenseSimplexBackend(),
    ]


class TestLPModel:
    def test_variables_registered_implicitly(self):
        model = LPModel()
        model.add_inequality(X + Y)
        assert set(model.variable_names) == {"x", "y"}

    def test_bounds_tighten_on_redeclare(self):
        model = LPModel()
        model.add_variable("x", 0, 10)
        model.add_variable("x", 2, None)
        assert model.bounds("x") == (2, 10)

    def test_unknown_sense_rejected(self):
        from repro.lp.model import Constraint

        with pytest.raises(LPError):
            Constraint(X, "<=")

    def test_check_assignment_reports_violations(self):
        model = LPModel()
        model.add_variable("x", 0)
        model.add_equality(X - 1)
        assert model.check_assignment({"x": 1}) == []
        assert len(model.check_assignment({"x": -2})) == 2

    def test_maximize_negates(self):
        model = LPModel()
        model.maximize(X)
        assert model.objective.expr == -X


class TestStandardForm:
    def test_columns_stay_sparse(self):
        model = LPModel()
        for i in range(20):
            model.add_variable(f"v{i}", 0)
        model.add_inequality(
            AffineExpr.variable("v0") + AffineExpr.variable("v19") - 1
        )
        form = standardize(model)
        # One constraint row; only three columns touch it (v0, v19 and
        # the slack) — the other 18 columns hold no data at all.
        assert form.num_rows == 1
        assert form.num_nonzeros == 3

    def test_rhs_sign_normalized(self):
        model = LPModel()
        model.add_variable("x", 0)
        model.add_equality(X - 5)  # x = 5, encoded as columns.x = 5
        model.add_equality(-X + 3)  # -x = -3, must flip to x = 3
        form = standardize(model)
        assert all(rhs >= 0 for rhs in form.rhs)

    def test_dense_rows_match_sparse_columns(self):
        model = LPModel()
        model.add_variable("x", 0)
        model.add_variable("y", 0)
        model.add_inequality(4 - X - Y)
        model.add_equality(X - Y)
        form = standardize(model)
        rows = form.dense_rows()
        for j, col in enumerate(form.cols):
            for i, coeff in col.items():
                assert rows[i][j] == coeff
        assert sum(1 for row in rows for v in row if v != 0) == form.num_nonzeros


class TestBackendsAgree:
    @pytest.mark.parametrize("backend", all_backends(),
                             ids=lambda b: b.name)
    def test_simple_optimum(self, backend):
        model = LPModel()
        model.add_variable("x", 0)
        model.add_variable("y", 0)
        model.add_inequality(4 - X - Y)       # x + y <= 4
        model.add_inequality(2 - X + Y)       # x - y <= 2
        model.minimize(-(X + 2 * Y))          # max x + 2y -> 8
        solution = backend.solve(model)
        assert solution.status is LPStatus.OPTIMAL
        assert float(solution.objective_value) == pytest.approx(-8)

    @pytest.mark.parametrize("backend", all_backends(),
                             ids=lambda b: b.name)
    def test_infeasible(self, backend):
        model = LPModel()
        model.add_variable("x", 0)
        model.add_equality(X + 1)
        assert backend.solve(model).status is LPStatus.INFEASIBLE

    @pytest.mark.parametrize("backend", all_backends(),
                             ids=lambda b: b.name)
    def test_unbounded(self, backend):
        model = LPModel()
        model.add_inequality(X)
        model.minimize(-X)
        assert backend.solve(model).status is LPStatus.UNBOUNDED

    @pytest.mark.parametrize("backend", all_backends(),
                             ids=lambda b: b.name)
    def test_free_variables_in_equalities(self, backend):
        model = LPModel()
        model.add_equality(X + Y - 3)
        model.add_inequality(X - 1)
        model.minimize(X - Y)
        solution = backend.solve(model)
        assert solution.status is LPStatus.OPTIMAL
        assert float(solution.objective_value) == pytest.approx(-1)

    @pytest.mark.parametrize("backend", all_backends(),
                             ids=lambda b: b.name)
    def test_upper_bounded_only_variable(self, backend):
        model = LPModel()
        model.add_variable("x", None, 5)
        model.minimize(-X)
        solution = backend.solve(model)
        assert solution.status is LPStatus.OPTIMAL
        assert float(solution.value("x")) == pytest.approx(5)

    @pytest.mark.parametrize("backend", all_backends(),
                             ids=lambda b: b.name)
    def test_two_sided_bounds(self, backend):
        model = LPModel()
        model.add_variable("x", -3, 7)
        model.minimize(X)
        solution = backend.solve(model)
        assert float(solution.value("x")) == pytest.approx(-3)

    @pytest.mark.parametrize("backend", exact_backends(),
                             ids=lambda b: b.name)
    def test_exact_backends_return_fractions(self, backend):
        model = LPModel()
        model.add_variable("x", 0)
        model.add_equality(X.scale(3) - 1)
        solution = backend.solve(model)
        assert solution.values["x"] == Fraction(1, 3)
        assert isinstance(solution.values["x"], Fraction)

    def test_feasibility_problem_without_objective(self):
        model = LPModel()
        model.add_variable("x", 0)
        model.add_inequality(X - 2)
        for backend in all_backends():
            solution = backend.solve(model)
            assert solution.status is LPStatus.OPTIMAL
            assert solution.objective_value is None

    def test_legacy_alias_is_the_exact_backend(self):
        assert ExactSimplexBackend is RevisedSimplexBackend


class TestEmptyBounds:
    """The seed only rejected ``upper < lower`` in the lower-bounded
    standardization branch and without naming the variable everywhere;
    validation now runs up front for every variable."""

    @pytest.mark.parametrize("backend", exact_backends(),
                             ids=lambda b: b.name)
    def test_lower_then_upper(self, backend):
        model = LPModel()
        model.add_variable("x", 5, 2)
        with pytest.raises(LPError, match="'x'"):
            backend.solve(model)

    @pytest.mark.parametrize("backend", exact_backends(),
                             ids=lambda b: b.name)
    def test_upper_then_lower_tightening(self, backend):
        # Declared upper-bound-only first; a later tightening adds a
        # lower bound above it.  The seed's branch-local check saw this
        # case only by accident of branch order.
        model = LPModel()
        model.add_variable("y", None, 2)
        model.add_variable("y", 5, None)
        with pytest.raises(LPError, match="'y'"):
            backend.solve(model)

    def test_message_reports_bounds(self):
        model = LPModel()
        model.add_variable("gap", 7, 3)
        with pytest.raises(LPError, match=r"lower 7 > upper 3"):
            standardize(model)


class TestRegistry:
    def test_builtin_backends_registered(self):
        names = available_backends()
        assert set(names) >= {"scipy", "exact", "exact-warm", "exact-dense"}

    def test_get_backend_names_match(self):
        for name in ("scipy", "exact", "exact-warm", "exact-dense"):
            assert get_backend(name).name == name

    def test_unknown_backend_rejected(self):
        with pytest.raises(LPError):
            get_backend("gurobi")

    def test_exactness_classification(self):
        assert backend_is_exact("exact")
        assert backend_is_exact("exact-warm")
        assert backend_is_exact("exact-dense")
        assert not backend_is_exact("scipy")
        assert not backend_is_exact("never-registered")


@st.composite
def random_lp(draw):
    """Small random LPs with mixed bounds and constraint senses."""
    rng_vars = ["v0", "v1", "v2", "v3"]
    model = LPModel()
    for name in rng_vars:
        if draw(st.booleans()):
            model.add_variable(name, 0)
        if draw(st.integers(0, 3)) == 0:
            model.add_variable(name, None, draw(st.integers(1, 10)))
    num_constraints = draw(st.integers(1, 5))
    for _ in range(num_constraints):
        expr = AffineExpr.constant(draw(st.integers(-5, 5)))
        for name in rng_vars:
            expr = expr + draw(st.integers(-3, 3)) * AffineExpr.variable(name)
        if draw(st.booleans()):
            model.add_equality(expr)
        else:
            model.add_inequality(expr)
    objective = AffineExpr.zero()
    for name in rng_vars:
        objective = objective + draw(st.integers(-2, 2)) * AffineExpr.variable(name)
    model.minimize(objective)
    return model


@settings(max_examples=40, deadline=None)
@given(random_lp())
def test_backends_agree_on_random_instances(model):
    scipy_solution = ScipyBackend().solve(model)
    exact_solution = RevisedSimplexBackend().solve(model)
    assert scipy_solution.status == exact_solution.status
    if scipy_solution.status is LPStatus.OPTIMAL:
        assert float(scipy_solution.objective_value) == pytest.approx(
            float(exact_solution.objective_value), abs=1e-6
        )
        # The exact optimum must satisfy the model exactly.
        assert model.check_assignment(exact_solution.values) == []
