"""Unit, integration and property tests for the LP layer."""

import random
from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import LPError
from repro.lp import (
    ExactSimplexBackend,
    LPModel,
    LPStatus,
    ScipyBackend,
    get_backend,
)
from repro.poly.linexpr import AffineExpr

X = AffineExpr.variable("x")
Y = AffineExpr.variable("y")


def both_backends():
    return [ScipyBackend(), ExactSimplexBackend()]


class TestLPModel:
    def test_variables_registered_implicitly(self):
        model = LPModel()
        model.add_inequality(X + Y)
        assert set(model.variable_names) == {"x", "y"}

    def test_bounds_tighten_on_redeclare(self):
        model = LPModel()
        model.add_variable("x", 0, 10)
        model.add_variable("x", 2, None)
        assert model.bounds("x") == (2, 10)

    def test_unknown_sense_rejected(self):
        from repro.lp.model import Constraint

        with pytest.raises(LPError):
            Constraint(X, "<=")

    def test_check_assignment_reports_violations(self):
        model = LPModel()
        model.add_variable("x", 0)
        model.add_equality(X - 1)
        assert model.check_assignment({"x": 1}) == []
        assert len(model.check_assignment({"x": -2})) == 2

    def test_maximize_negates(self):
        model = LPModel()
        model.maximize(X)
        assert model.objective.expr == -X


class TestBackendsAgree:
    @pytest.mark.parametrize("backend", both_backends(),
                             ids=lambda b: b.name)
    def test_simple_optimum(self, backend):
        model = LPModel()
        model.add_variable("x", 0)
        model.add_variable("y", 0)
        model.add_inequality(4 - X - Y)       # x + y <= 4
        model.add_inequality(2 - X + Y)       # x - y <= 2
        model.minimize(-(X + 2 * Y))          # max x + 2y -> 8
        solution = backend.solve(model)
        assert solution.status is LPStatus.OPTIMAL
        assert float(solution.objective_value) == pytest.approx(-8)

    @pytest.mark.parametrize("backend", both_backends(),
                             ids=lambda b: b.name)
    def test_infeasible(self, backend):
        model = LPModel()
        model.add_variable("x", 0)
        model.add_equality(X + 1)
        assert backend.solve(model).status is LPStatus.INFEASIBLE

    @pytest.mark.parametrize("backend", both_backends(),
                             ids=lambda b: b.name)
    def test_unbounded(self, backend):
        model = LPModel()
        model.add_inequality(X)
        model.minimize(-X)
        assert backend.solve(model).status is LPStatus.UNBOUNDED

    @pytest.mark.parametrize("backend", both_backends(),
                             ids=lambda b: b.name)
    def test_free_variables_in_equalities(self, backend):
        model = LPModel()
        model.add_equality(X + Y - 3)
        model.add_inequality(X - 1)
        model.minimize(X - Y)
        solution = backend.solve(model)
        assert solution.status is LPStatus.OPTIMAL
        assert float(solution.objective_value) == pytest.approx(-1)

    @pytest.mark.parametrize("backend", both_backends(),
                             ids=lambda b: b.name)
    def test_upper_bounded_only_variable(self, backend):
        model = LPModel()
        model.add_variable("x", None, 5)
        model.minimize(-X)
        solution = backend.solve(model)
        assert solution.status is LPStatus.OPTIMAL
        assert float(solution.value("x")) == pytest.approx(5)

    @pytest.mark.parametrize("backend", both_backends(),
                             ids=lambda b: b.name)
    def test_two_sided_bounds(self, backend):
        model = LPModel()
        model.add_variable("x", -3, 7)
        model.minimize(X)
        solution = backend.solve(model)
        assert float(solution.value("x")) == pytest.approx(-3)

    def test_exact_backend_returns_fractions(self):
        model = LPModel()
        model.add_variable("x", 0)
        model.add_equality(X.scale(3) - 1)
        solution = ExactSimplexBackend().solve(model)
        assert solution.values["x"] == Fraction(1, 3)

    def test_feasibility_problem_without_objective(self):
        model = LPModel()
        model.add_variable("x", 0)
        model.add_inequality(X - 2)
        for backend in both_backends():
            solution = backend.solve(model)
            assert solution.status is LPStatus.OPTIMAL
            assert solution.objective_value is None

    def test_empty_bounds_rejected_exact(self):
        model = LPModel()
        model.add_variable("x", 5, 2)
        with pytest.raises(LPError):
            ExactSimplexBackend().solve(model)

    def test_get_backend(self):
        assert get_backend("scipy").name == "scipy"
        assert get_backend("exact").name == "exact"
        with pytest.raises(LPError):
            get_backend("gurobi")


@st.composite
def random_lp(draw):
    """Small random LPs with mixed bounds and constraint senses."""
    rng_vars = ["v0", "v1", "v2", "v3"]
    model = LPModel()
    for name in rng_vars:
        if draw(st.booleans()):
            model.add_variable(name, 0)
        if draw(st.integers(0, 3)) == 0:
            model.add_variable(name, None, draw(st.integers(1, 10)))
    num_constraints = draw(st.integers(1, 5))
    for _ in range(num_constraints):
        expr = AffineExpr.constant(draw(st.integers(-5, 5)))
        for name in rng_vars:
            expr = expr + draw(st.integers(-3, 3)) * AffineExpr.variable(name)
        if draw(st.booleans()):
            model.add_equality(expr)
        else:
            model.add_inequality(expr)
    objective = AffineExpr.zero()
    for name in rng_vars:
        objective = objective + draw(st.integers(-2, 2)) * AffineExpr.variable(name)
    model.minimize(objective)
    return model


@settings(max_examples=40, deadline=None)
@given(random_lp())
def test_backends_agree_on_random_instances(model):
    scipy_solution = ScipyBackend().solve(model)
    exact_solution = ExactSimplexBackend().solve(model)
    assert scipy_solution.status == exact_solution.status
    if scipy_solution.status is LPStatus.OPTIMAL:
        assert float(scipy_solution.objective_value) == pytest.approx(
            float(exact_solution.objective_value), abs=1e-6
        )
        # The exact optimum must satisfy the model exactly.
        assert model.check_assignment(exact_solution.values) == []
