"""Unit and property tests for polynomial arithmetic."""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import PolynomialError
from repro.poly.monomial import Monomial
from repro.poly.polynomial import Polynomial
from repro.poly.parse import parse_polynomial

X = Polynomial.variable("x")
Y = Polynomial.variable("y")


class TestPolynomialBasics:
    def test_zero(self):
        assert Polynomial.zero().is_zero()
        assert Polynomial.zero().degree == 0

    def test_constant_coefficients_normalized(self):
        poly = Polynomial({Monomial.of("x"): 0, Monomial.one(): 3})
        assert poly.monomials() == [Monomial.one()]
        assert poly.constant_term == 3

    def test_equality_with_numbers(self):
        assert Polynomial.constant(5) == 5
        assert Polynomial.zero() == 0

    def test_degree(self):
        assert (X * X * Y + 1).degree == 3

    def test_variables(self):
        assert (X * Y + 2).variables == frozenset({"x", "y"})

    def test_is_affine(self):
        assert (2 * X - Y + 3).is_affine()
        assert not (X * Y).is_affine()


class TestPolynomialArithmetic:
    def test_add_sub(self):
        assert (X + Y) - Y == X

    def test_product_difference_of_squares(self):
        assert (X + Y) * (X - Y) == X * X - Y * Y

    def test_scalar_operations(self):
        assert 2 * X + 1 == X + X + 1
        assert (3 - X) + X == 3

    def test_negation(self):
        assert -(X - Y) == Y - X

    def test_power(self):
        assert (X + 1) ** 2 == X * X + 2 * X + 1
        assert X ** 0 == 1

    def test_power_rejects_negative(self):
        with pytest.raises(PolynomialError):
            X ** -1

    def test_scale_with_fraction(self):
        assert (2 * X).scale(Fraction(1, 2)) == X


class TestPolynomialEvaluation:
    def test_evaluate(self):
        poly = X * X + 2 * Y - 1
        assert poly.evaluate({"x": 3, "y": 4}) == 16

    def test_substitute(self):
        poly = X * X
        assert poly.substitute({"x": Y + 1}) == Y * Y + 2 * Y + 1

    def test_substitute_identity_for_missing(self):
        assert (X + Y).substitute({"x": X}) == X + Y

    def test_rename(self):
        assert (X + Y).rename({"x": "y"}) == 2 * Y


# -- property tests (ring laws) ------------------------------------------

names = st.sampled_from(["x", "y", "z"])
coefficients = st.integers(min_value=-4, max_value=4)


@st.composite
def polynomials(draw, max_terms: int = 4, max_degree: int = 3):
    terms = {}
    for _ in range(draw(st.integers(0, max_terms))):
        exponents = {
            draw(names): draw(st.integers(0, max_degree)) for _ in range(2)
        }
        terms[Monomial(exponents)] = draw(coefficients)
    return Polynomial(terms)


@settings(max_examples=60, deadline=None)
@given(polynomials(), polynomials(), polynomials())
def test_ring_laws(a, b, c):
    assert a + b == b + a
    assert a * b == b * a
    assert (a + b) + c == a + (b + c)
    assert (a * b) * c == a * (b * c)
    assert a * (b + c) == a * b + a * c
    assert a + Polynomial.zero() == a
    assert a * Polynomial.constant(1) == a
    assert a - a == Polynomial.zero()


@settings(max_examples=60, deadline=None)
@given(polynomials(), polynomials(),
       st.dictionaries(names, st.integers(-5, 5),
                       min_size=3, max_size=3))
def test_evaluation_is_homomorphic(a, b, point):
    assert (a + b).evaluate(point) == a.evaluate(point) + b.evaluate(point)
    assert (a * b).evaluate(point) == a.evaluate(point) * b.evaluate(point)


@settings(max_examples=40, deadline=None)
@given(polynomials(), st.dictionaries(names, st.integers(-5, 5),
                                      min_size=3, max_size=3))
def test_substitution_commutes_with_evaluation(poly, point):
    substitution = {"x": X + 1, "y": Y * Y, "z": Polynomial.constant(2)}
    shifted_point = {
        "x": point["x"] + 1,
        "y": point["y"] ** 2,
        "z": 2,
    }
    assert poly.substitute(substitution).evaluate(point) == \
        poly.evaluate(shifted_point)


class TestParsePolynomial:
    def test_paper_annotation(self):
        poly = parse_polynomial("2*(lenB - i)*lenA - 2*j")
        expected = (2 * (Polynomial.variable("lenB") - Polynomial.variable("i"))
                    * Polynomial.variable("lenA")
                    - 2 * Polynomial.variable("j"))
        assert poly == expected

    def test_powers(self):
        assert parse_polynomial("x^2 + x**2") == 2 * X * X

    def test_unary_minus(self):
        assert parse_polynomial("-x + 3") == 3 - X

    def test_rational_division(self):
        assert parse_polynomial("x / 2") == X.scale(Fraction(1, 2))

    def test_division_by_variable_rejected(self):
        with pytest.raises(PolynomialError):
            parse_polynomial("1 / x")

    def test_garbage_rejected(self):
        with pytest.raises(PolynomialError):
            parse_polynomial("x +")
        with pytest.raises(PolynomialError):
            parse_polynomial("x $ y")

    def test_roundtrip_through_str(self):
        poly = X * X - 2 * X * Y + 3
        assert parse_polynomial(str(poly)) == poly
