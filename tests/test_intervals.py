"""Unit and property tests for interval arithmetic."""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.invariants.intervals import Interval, polynomial_range
from repro.poly.polynomial import Polynomial

X = Polynomial.variable("x")
Y = Polynomial.variable("y")


class TestIntervalBasics:
    def test_empty_interval_rejected(self):
        with pytest.raises(ValueError):
            Interval(Fraction(2), Fraction(1))

    def test_top_contains_everything(self):
        assert Interval.top().contains(10**9)
        assert not Interval.top().is_bounded()

    def test_point(self):
        point = Interval.point(3)
        assert point.contains(3)
        assert not point.contains(4)
        assert point.is_bounded()


class TestIntervalArithmetic:
    def test_add(self):
        assert Interval(Fraction(1), Fraction(2)).add(
            Interval(Fraction(3), Fraction(5))
        ) == Interval(Fraction(4), Fraction(7))

    def test_add_infinite(self):
        result = Interval(Fraction(1), None).add(Interval.point(1))
        assert result.lower == 2 and result.upper is None

    def test_negate(self):
        assert Interval(Fraction(1), Fraction(3)).negate() == \
            Interval(Fraction(-3), Fraction(-1))

    def test_scale_negative(self):
        assert Interval(Fraction(1), Fraction(2)).scale(Fraction(-2)) == \
            Interval(Fraction(-4), Fraction(-2))

    def test_multiply_sign_cases(self):
        assert Interval(Fraction(-2), Fraction(3)).multiply(
            Interval(Fraction(-1), Fraction(4))
        ) == Interval(Fraction(-8), Fraction(12))

    def test_power_even_is_nonnegative_at_endpoints(self):
        squared = Interval(Fraction(-3), Fraction(2)).power(2)
        assert squared.upper == 9
        # Endpoint-based power is sound though not optimal.
        assert squared.contains(0)

    def test_hull(self):
        assert Interval.point(1).hull(Interval.point(5)) == \
            Interval(Fraction(1), Fraction(5))


class TestPolynomialRange:
    def test_affine(self):
        result = polynomial_range(
            2 * X - Y + 1,
            {"x": Interval(Fraction(0), Fraction(3)),
             "y": Interval(Fraction(1), Fraction(2))},
        )
        assert result == Interval(Fraction(-1), Fraction(6))

    def test_missing_variable_is_unbounded(self):
        result = polynomial_range(X + Y, {"x": Interval.point(0)})
        assert not result.is_bounded()

    def test_product(self):
        result = polynomial_range(
            X * Y,
            {"x": Interval(Fraction(1), Fraction(10)),
             "y": Interval(Fraction(2), Fraction(3))},
        )
        assert result == Interval(Fraction(2), Fraction(30))


@settings(max_examples=60, deadline=None)
@given(st.integers(-5, 5), st.integers(0, 4), st.integers(-5, 5),
       st.integers(0, 4), st.integers(0, 3), st.integers(0, 3))
def test_polynomial_range_is_sound(x_lo, x_width, y_lo, y_width, ex, ey):
    poly = (X ** ex) * (Y ** ey) - 2 * X + Y
    bounds = {
        "x": Interval(Fraction(x_lo), Fraction(x_lo + x_width)),
        "y": Interval(Fraction(y_lo), Fraction(y_lo + y_width)),
    }
    value_range = polynomial_range(poly, bounds)
    for x in range(x_lo, x_lo + x_width + 1):
        for y in range(y_lo, y_lo + y_width + 1):
            assert value_range.contains(poly.evaluate({"x": x, "y": y}))
