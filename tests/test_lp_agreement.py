"""Cross-backend LP agreement and revised-simplex regression tests.

The exact backends (``exact``, ``exact-warm``, ``exact-dense``) must be
interchangeable oracles: same status on every instance and bit-identical
``Fraction`` optima whenever one exists.  The float backend must agree
on status and approximate the exact optimum.  Degenerate and cycling
instances exercise the Dantzig→Bland anti-cycling fallback.
"""

import random
from fractions import Fraction

import pytest

import repro.lp.certify as certify
from repro.lp import (
    DenseSimplexBackend,
    IncrementalLP,
    LPModel,
    LPStatus,
    RevisedSimplexBackend,
    ScipyBackend,
    WarmStartExactBackend,
)
from repro.lp.dual import exact_dual_feasible, run_dual_simplex
from repro.lp.revised import (
    OPTIMAL,
    WARM_INFEASIBLE,
    WARM_READY,
    WARM_SINGULAR,
    RevisedSimplex,
)
from repro.lp.standard import standardize
from repro.poly.linexpr import AffineExpr

SEED = 20220622


def make_random_lp(rng: random.Random) -> LPModel:
    """A small LP with mixed bounds, free variables and senses; the
    population includes optimal, infeasible and unbounded instances."""
    names = ["v0", "v1", "v2", "v3"]
    model = LPModel()
    for name in names:
        if rng.random() < 0.5:
            model.add_variable(name, 0)
        if rng.random() < 0.25:
            model.add_variable(name, None, rng.randint(1, 10))
        if rng.random() < 0.15:
            model.add_variable(name, rng.randint(-5, 0), rng.randint(1, 6))
    for _ in range(rng.randint(1, 5)):
        expr = AffineExpr.constant(rng.randint(-5, 5))
        for name in names:
            expr = expr + rng.randint(-3, 3) * AffineExpr.variable(name)
        if rng.random() < 0.5:
            model.add_equality(expr)
        else:
            model.add_inequality(expr)
    objective = AffineExpr.zero()
    for name in names:
        objective = objective + rng.randint(-2, 2) * AffineExpr.variable(name)
    model.minimize(objective)
    return model


class TestRandomizedAgreement:
    """The satellite agreement suite: seeded, deterministic, 60 LPs."""

    def test_exact_trio_and_scipy_agree(self):
        rng = random.Random(SEED)
        statuses_seen = set()
        for trial in range(60):
            model = make_random_lp(rng)
            exact = RevisedSimplexBackend().solve(model)
            warm = WarmStartExactBackend().solve(model)
            dense = DenseSimplexBackend().solve(model)
            floaty = ScipyBackend().solve(model)
            assert exact.status == warm.status == dense.status, trial
            assert floaty.status == exact.status, trial
            statuses_seen.add(exact.status)
            if exact.status is LPStatus.OPTIMAL:
                # Bit-identical Fractions across the exact trio.
                assert exact.objective_value == warm.objective_value, trial
                assert exact.objective_value == dense.objective_value, trial
                assert isinstance(exact.objective_value, Fraction)
                assert isinstance(warm.objective_value, Fraction)
                # Exact optima satisfy the model exactly.
                assert model.check_assignment(exact.values) == [], trial
                assert model.check_assignment(warm.values) == [], trial
                assert float(floaty.objective_value) == pytest.approx(
                    float(exact.objective_value), abs=1e-6
                ), trial
        # The population must actually exercise all three outcomes,
        # otherwise the suite silently degrades.
        assert statuses_seen == {
            LPStatus.OPTIMAL, LPStatus.INFEASIBLE, LPStatus.UNBOUNDED
        }

    def test_warm_without_scipy_matches_exact(self, monkeypatch):
        """Force the float-revised-simplex warm-start path."""
        monkeypatch.setattr(certify, "USE_SCIPY", False)
        rng = random.Random(SEED + 1)
        for trial in range(25):
            model = make_random_lp(rng)
            exact = RevisedSimplexBackend().solve(model)
            warm = WarmStartExactBackend().solve(model)
            assert exact.status == warm.status, trial
            if exact.status is LPStatus.OPTIMAL:
                assert exact.objective_value == warm.objective_value, trial
                assert "float_status" not in warm.stats, trial


def beale_cycling_lp() -> LPModel:
    """Beale's classical cycling instance (Dantzig pricing cycles on it
    with naive tie-breaking); exact optimum is -1/20."""
    x4, x5, x6 = (AffineExpr.variable(n) for n in ("x4", "x5", "x6"))
    x7 = AffineExpr.variable("x7")
    model = LPModel()
    for name in ("x4", "x5", "x6", "x7"):
        model.add_variable(name, 0)
    # (1/4)x4 - 60x5 - (1/25)x6 + 9x7 <= 0
    model.add_inequality(
        -(x4.scale(Fraction(1, 4)) - x5.scale(60)
          - x6.scale(Fraction(1, 25)) + x7.scale(9))
    )
    # (1/2)x4 - 90x5 - (1/50)x6 + 3x7 <= 0
    model.add_inequality(
        -(x4.scale(Fraction(1, 2)) - x5.scale(90)
          - x6.scale(Fraction(1, 50)) + x7.scale(3))
    )
    model.add_inequality(1 - x6)  # x6 <= 1
    model.minimize(
        -x4.scale(Fraction(3, 4)) + x5.scale(150)
        - x6.scale(Fraction(1, 50)) + x7.scale(6)
    )
    return model


class TestDegenerateAndCycling:
    def test_beale_terminates_at_exact_optimum(self):
        model = beale_cycling_lp()
        for backend in (RevisedSimplexBackend(), WarmStartExactBackend(),
                        DenseSimplexBackend()):
            solution = backend.solve(model)
            assert solution.status is LPStatus.OPTIMAL
            assert solution.objective_value == Fraction(-1, 20)

    def test_bland_fallback_engages_and_agrees(self):
        # bland_trigger=1 flips to Bland's rule on the first degenerate
        # pivot; the optimum must be unchanged and the fallback counter
        # must show the rule actually ran.
        model = beale_cycling_lp()
        eager = RevisedSimplexBackend(bland_trigger=1).solve(model)
        default = RevisedSimplexBackend().solve(model)
        assert eager.status is LPStatus.OPTIMAL
        assert eager.objective_value == default.objective_value
        assert eager.stats["degenerate_pivots"] > 0
        assert eager.stats["bland_pivots"] > 0

    def test_fully_degenerate_feasible_point(self):
        # Every basic feasible solution is degenerate (b = 0); the
        # solver must not loop.
        x, y = AffineExpr.variable("x"), AffineExpr.variable("y")
        model = LPModel()
        model.add_variable("x", 0)
        model.add_variable("y", 0)
        model.add_inequality(-(x + y))        # x + y <= 0
        model.add_inequality(-(x - y))        # x - y <= 0
        model.minimize(-x)
        for backend in (RevisedSimplexBackend(), WarmStartExactBackend()):
            solution = backend.solve(model)
            assert solution.status is LPStatus.OPTIMAL
            assert solution.objective_value == 0
            assert solution.values["x"] == 0


class TestWarmStartPaths:
    def test_scipy_path_records_source(self):
        x, y = AffineExpr.variable("x"), AffineExpr.variable("y")
        model = LPModel()
        model.add_variable("x", 0)
        model.add_variable("y", 0)
        model.add_inequality(4 - x - y)
        model.minimize(-(x + y))
        solution = WarmStartExactBackend().solve(model)
        assert solution.status is LPStatus.OPTIMAL
        assert solution.stats["path"] in ("certified", "resumed")
        assert solution.stats["basis_source"] in ("scipy", "float-simplex")

    def test_infeasible_model_takes_fallback_path(self):
        x = AffineExpr.variable("x")
        model = LPModel()
        model.add_variable("x", 0)
        model.add_equality(x + 1)
        solution = WarmStartExactBackend().solve(model)
        assert solution.status is LPStatus.INFEASIBLE
        assert solution.stats["path"] == "fallback"

    def test_certified_path_has_zero_exact_pivots(self, monkeypatch):
        monkeypatch.setattr(certify, "USE_SCIPY", False)
        x, y = AffineExpr.variable("x"), AffineExpr.variable("y")
        model = LPModel()
        model.add_variable("x", 0)
        model.add_variable("y", 0)
        model.add_inequality(4 - x - y)
        model.add_inequality(2 - x + y)
        model.minimize(-(x + 2 * y))
        solution = WarmStartExactBackend().solve(model)
        assert solution.status is LPStatus.OPTIMAL
        assert solution.objective_value == -8
        if solution.stats["path"] == "certified":
            assert solution.stats["phase2_pivots"] == 0

    def test_warm_start_rejects_bad_bases(self):
        x, y = AffineExpr.variable("x"), AffineExpr.variable("y")
        model = LPModel()
        model.add_variable("x", 0)
        model.add_variable("y", 0)
        model.add_inequality(4 - x - y)
        model.add_inequality(2 - x + y)
        model.minimize(-(x + 2 * y))
        form = standardize(model)
        solver = RevisedSimplex(form)
        # Wrong length and duplicate columns are both singular.
        assert solver.warm_start([0]) == WARM_SINGULAR
        assert solver.warm_start([0, 0]) == WARM_SINGULAR
        # The artificial identity basis is nonsingular but leaves the
        # artificials at b != 0, i.e. A x = b is violated — rejected as
        # infeasible rather than silently solving the wrong program.
        artificial = list(range(form.num_cols,
                                form.num_cols + form.num_rows))
        assert RevisedSimplex(form).warm_start(artificial) == WARM_INFEASIBLE
        # A genuinely optimal basis round-trips as ready.
        solved = RevisedSimplex(form)
        assert solved.solve_two_phase() == "optimal"
        assert RevisedSimplex(form).warm_start(solved.basis) == WARM_READY


def _random_objective(rng: random.Random) -> AffineExpr:
    objective = AffineExpr.zero()
    for name in ("v0", "v1", "v2", "v3"):
        objective = objective + rng.randint(-2, 2) * AffineExpr.variable(name)
    return objective


class TestIncrementalAgainstColdOracles:
    """The LU-basis / dual-simplex extension of the seeded agreement
    suite: every incremental re-solve (objective swap through primal
    phase 2, bound tweak through the dual simplex) must report the same
    status and a bit-identical ``Fraction`` optimum as cold solves by
    the ``exact`` and ``exact-dense`` oracles."""

    def test_objective_swaps_match_cold_trio(self):
        rng = random.Random(SEED + 2)
        statuses_seen = set()
        for trial in range(20):
            model = make_random_lp(rng)
            incremental = IncrementalLP(model)
            for _ in range(3):
                solution = incremental.solve(_random_objective(rng))
                exact = RevisedSimplexBackend().solve(model)
                dense = DenseSimplexBackend().solve(model)
                assert solution.status == exact.status == dense.status, trial
                statuses_seen.add(solution.status)
                if solution.status is LPStatus.OPTIMAL:
                    assert solution.objective_value == exact.objective_value
                    assert solution.objective_value == dense.objective_value
                    assert isinstance(solution.objective_value, Fraction)
                    assert model.check_assignment(solution.values) == []
            if incremental.solver is not None:
                # One factorized system served every swap: at most the
                # cold start's factorizations plus eta-driven refactors,
                # never one per objective.
                assert incremental.stats["cold_solves"] == 1
        assert statuses_seen == {
            LPStatus.OPTIMAL, LPStatus.INFEASIBLE, LPStatus.UNBOUNDED
        }

    def test_bound_tightening_matches_cold_trio(self):
        rng = random.Random(SEED + 3)
        dual_runs = 0
        for trial in range(15):
            model = make_random_lp(rng)
            model.add_variable("v0", 0, 12)
            model.minimize(_random_objective(rng))
            incremental = IncrementalLP(model)
            incremental.solve()
            for upper in (9, 5, 2, 0):
                solution = incremental.update_upper("v0", upper)
                cold = RevisedSimplexBackend().solve(model)
                dense = DenseSimplexBackend().solve(model)
                assert solution.status == cold.status == dense.status, (
                    trial, upper
                )
                if solution.status is LPStatus.OPTIMAL:
                    assert solution.objective_value == cold.objective_value
                    assert solution.objective_value == dense.objective_value
                    assert model.check_assignment(solution.values) == []
            dual_runs += incremental.stats["dual_resolves"]
        # The tweaks must actually exercise the dual path, not fall
        # back to cold solves every time.
        assert dual_runs > 0

    def test_dual_simplex_repairs_rhs_shift(self):
        # Optimal basis, then a manual rhs patch that breaks primal
        # feasibility: the dual simplex must repair it to the same
        # optimum a cold solve of the patched program finds.
        x, y = AffineExpr.variable("x"), AffineExpr.variable("y")

        def patched_model(demand):
            model = LPModel()
            model.add_variable("x", 0)
            model.add_variable("y", 0)
            model.add_inequality(x + y - demand)      # x + y >= demand
            model.add_inequality(6 - x)               # x <= 6
            model.minimize(2 * x + 3 * y)
            return model

        form = standardize(patched_model(3))
        solver = RevisedSimplex(form)
        assert solver.solve_two_phase() == OPTIMAL
        assert exact_dual_feasible(solver, solver.phase2_costs())
        # Raise the demand row's rhs: the basis stays dual feasible
        # (costs unchanged) but some basic value goes negative.
        solver.b[0] = Fraction(8)
        solver.xb = solver.fact.ftran_dense(solver.b)
        assert any(value < 0 for value in solver.xb)
        status = run_dual_simplex(solver, solver.phase2_costs())
        assert status == OPTIMAL
        assert solver.stats["dual_pivots"] > 0
        # The standard-form objective at the repaired basis equals the
        # cold optimum of the patched program (x, y have zero shifts).
        objective = sum(
            (cost * value for cost, value in
             zip(solver.costs, solver.assignment())),
            Fraction(0),
        )
        reference = RevisedSimplexBackend().solve(patched_model(8))
        assert objective == reference.objective_value

    def test_budget_exhausted_resolve_is_rescued(self, monkeypatch):
        # A 1-pivot budget forces every re-solve through the rescue
        # path (float candidate warm-started on the live solver); the
        # optima must stay bit-identical to cold solves.
        monkeypatch.setattr(IncrementalLP, "RESOLVE_PIVOT_BUDGET", 1)
        rng = random.Random(SEED + 4)
        rescued = 0
        for trial in range(10):
            model = make_random_lp(rng)
            incremental = IncrementalLP(model)
            for _ in range(3):
                solution = incremental.solve(_random_objective(rng))
                exact = RevisedSimplexBackend().solve(model)
                assert solution.status == exact.status, trial
                if solution.status is LPStatus.OPTIMAL:
                    assert solution.objective_value == exact.objective_value
            rescued += incremental.stats.get("resolve_rescues", 0)
        assert rescued > 0

    def test_dual_simplex_certifies_infeasibility(self):
        x = AffineExpr.variable("x")
        model = LPModel()
        model.add_variable("x", 0, 5)
        model.add_inequality(x - 2)   # x >= 2, consistent
        model.minimize(x)
        incremental = IncrementalLP(model)
        assert incremental.solve().objective_value == 2
        solution = incremental.update_upper("x", 1)  # x <= 1: empty
        assert solution.status is LPStatus.INFEASIBLE
        reference = RevisedSimplexBackend().solve(model)
        assert reference.status is LPStatus.INFEASIBLE
        # Re-widening repairs feasibility again (the cached proof must
        # not outlive the rhs patch).
        solution = incremental.update_upper("x", 4)
        assert solution.status is LPStatus.OPTIMAL
        assert solution.objective_value == 2


class TestTable1ExactParity:
    """Acceptance gate: on a Table 1 Handelman LP the warm-started
    backend returns the bit-identical Fraction threshold of the plain
    exact backend, and the exact certificate checker verifies it."""

    def test_thresholds_bit_identical_and_certified(self):
        from repro.bench.suite import SUITE, load_pair
        from repro.core.checker import certify_implications_exact
        from repro.core.diffcost import THRESHOLD_SYMBOL, DiffCostAnalyzer
        from repro.poly.template import TemplatePolynomial

        pair = next(p for p in SUITE if p.name == "dis2")
        old, new = load_pair("dis2")
        analyzer = DiffCostAnalyzer(old, new, pair.config("exact"))
        bound = TemplatePolynomial.from_symbol(THRESHOLD_SYMBOL)
        _, _, constraints = analyzer.build_constraints(bound)
        model = analyzer.encode(constraints)
        model.minimize(AffineExpr.variable(THRESHOLD_SYMBOL))

        exact = RevisedSimplexBackend().solve(model)
        warm = WarmStartExactBackend().solve(model)
        dense = DenseSimplexBackend().solve(model)
        assert exact.status is LPStatus.OPTIMAL
        threshold = exact.value(THRESHOLD_SYMBOL)
        assert isinstance(threshold, Fraction)
        assert warm.value(THRESHOLD_SYMBOL) == threshold
        assert dense.value(THRESHOLD_SYMBOL) == threshold

        # The warm backend's full assignment is an exact certificate.
        assignment = {
            name: value for name, value in warm.values.items()
            if isinstance(value, Fraction)
        }
        failures = certify_implications_exact(
            constraints, assignment, pair.max_products
        )
        assert failures == []


class TestSolverRevisionInCacheKey:
    def test_job_key_changes_with_solver_revision(self, monkeypatch):
        from repro.engine import jobs as jobs_module
        from repro.engine.jobs import AnalysisJob

        job = AnalysisJob(kind="single", old_source="x := 1")
        before = job.key
        payload = job.canonical_payload()
        assert payload["lp_solver"]["backend"] == job.config.lp_backend
        monkeypatch.setattr(jobs_module, "LP_SOLVER_REVISION", 9999)
        assert job.key != before

    def test_cache_entry_records_solver(self, tmp_path):
        from repro.engine.cache import ResultCache
        from repro.engine.jobs import AnalysisJob, JobResult

        job = AnalysisJob(kind="single", old_source="x := 1")
        result = JobResult(job_key=job.key, name="", kind="single",
                           status="ok", outcome="threshold")
        cache = ResultCache(tmp_path)
        assert cache.put(job, result)
        import json
        entry = json.loads(cache.path_for(job.key).read_text())
        assert "lp_solver" in entry["job"]
        assert entry["job"]["lp_solver"]["backend"] == "scipy"
