"""Tests for the observability layer (:mod:`repro.obs`).

Three contracts matter:

- **merging is exact**: worker-process snapshot deltas folded into the
  parent registry produce the same totals as a single-process run
  (asserted by a multi-process soak in the ``test_cache_soak`` mold and
  an end-to-end ``jobs=2`` executor run);
- **observability never perturbs results**: a batch run with tracing
  enabled is canonically byte-identical to the same run without;
- the exposition/side outputs are well-formed: Prometheus text,
  Chrome ``trace_event`` JSONL, ``/healthz``'s zeroed pre-warm-up
  schema, and the cache's capacity-planning stats.
"""

import json
import multiprocessing
import time

import pytest

from repro.config import AnalysisConfig, ObsConfig, ServeConfig
from repro.engine.batch import batch_to_json, run_batch
from repro.engine.cache import ResultCache
from repro.engine.executor import ExecutorStats, ParallelExecutor
from repro.engine.jobs import AnalysisJob, JobResult
from repro.errors import AnalysisError
from repro.obs import get_registry
from repro.obs.log import get_logger, parse_level, setup_logging
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import span, trace_active, trace_disable, trace_enable
from repro.serve.server import AnalysisServer
from repro.serve.shard import canonical_json

QUICK_SOURCE = """
proc count(n) {{
  assume(1 <= n && n <= {cap});
  var i = 0;
  while (i < n) {{ tick({cost}); i = i + 1; }}
}}
"""


def _quick_job(index: int) -> AnalysisJob:
    return AnalysisJob(
        kind="single",
        old_source=QUICK_SOURCE.format(cap=index + 2, cost=1),
        config=AnalysisConfig(),
        name=f"obs{index}",
    )


class TestMetricsRegistry:
    def test_counter_gauge_histogram_basics(self):
        registry = MetricsRegistry()
        jobs = registry.counter("jobs_total", "Jobs.", ("status",))
        jobs.inc(status="ok")
        jobs.inc(2, status="ok")
        jobs.inc(status="error")
        assert jobs.value(status="ok") == 3
        assert jobs.value(status="error") == 1
        with pytest.raises(ValueError):
            jobs.inc(-1, status="ok")

        depth = registry.gauge("queue_depth", "Depth.")
        depth.set(5)
        depth.inc()
        depth.dec(2)
        assert depth.value() == 4

        lat = registry.histogram("latency_seconds", "Latency.",
                                 buckets=(0.1, 1.0))
        lat.observe(0.05)
        lat.observe(0.5)
        lat.observe(30.0)
        cell = lat.value()
        assert cell["count"] == 3
        assert cell["buckets"] == [1, 1, 1]  # 0.1, 1.0, +Inf
        assert cell["sum"] == pytest.approx(30.55)

    def test_get_or_create_is_idempotent_but_typed(self):
        registry = MetricsRegistry()
        first = registry.counter("x_total", "X.", ("a",))
        assert registry.counter("x_total", "X.", ("a",)) is first
        with pytest.raises(ValueError):
            registry.gauge("x_total")
        with pytest.raises(ValueError):
            registry.counter("x_total", "X.", ("b",))
        with pytest.raises(ValueError):
            first.inc(wrong="label")

    def test_snapshot_diff_merge_is_exact(self):
        worker = MetricsRegistry()
        worker.counter("jobs_total", "J.", ("kind",)).inc(kind="warm")
        before = worker.snapshot()
        # The "job": what a worker would count between snapshots.
        worker.counter("jobs_total", "J.", ("kind",)).inc(3, kind="diff")
        worker.histogram("job_seconds", "S.", buckets=(1.0,)).observe(0.5)
        worker.gauge("rss_bytes", "R.").set(123.0)
        delta = worker.diff(before)
        # Pre-existing counts are subtracted out of the delta.
        assert "jobs_total" in delta["metrics"]
        series = dict(
            (tuple(k), v)
            for k, v in delta["metrics"]["jobs_total"]["series"]
        )
        assert series == {("diff",): 3}

        # The delta survives JSON transport and merges additively.
        delta = json.loads(json.dumps(delta))
        parent = MetricsRegistry()
        parent.counter("jobs_total", "J.", ("kind",)).inc(10, kind="diff")
        parent.merge(delta)
        parent.merge(delta)  # two workers reporting the same work
        assert parent.counter("jobs_total", "J.",
                              ("kind",)).value(kind="diff") == 16
        cell = parent.histogram("job_seconds", "S.",
                                buckets=(1.0,)).value()
        assert cell["count"] == 2 and cell["sum"] == pytest.approx(1.0)
        assert parent.gauge("rss_bytes", "R.").value() == 123.0

    def test_diff_of_idle_worker_is_empty(self):
        registry = MetricsRegistry()
        registry.counter("jobs_total").inc()
        before = registry.snapshot()
        assert registry.diff(before)["metrics"].get("jobs_total") is None

    def test_merge_rejects_unknown_version(self):
        with pytest.raises(ValueError):
            MetricsRegistry().merge({"version": 99, "metrics": {}})

    def test_prometheus_rendering(self):
        registry = MetricsRegistry()
        registry.counter(
            "repro_http_requests_total", "HTTP requests.", ("path",)
        ).inc(2, path="/analyze")
        registry.gauge("repro_server_inflight", "In flight.").set(1)
        registry.histogram(
            "repro_job_seconds", "Job seconds.", buckets=(0.1, 1.0)
        ).observe(0.5)
        text = registry.render_prometheus()
        assert "# HELP repro_http_requests_total HTTP requests." in text
        assert "# TYPE repro_http_requests_total counter" in text
        assert 'repro_http_requests_total{path="/analyze"} 2' in text
        assert "repro_server_inflight 1" in text
        # Histogram buckets are cumulative and end at +Inf.
        assert 'repro_job_seconds_bucket{le="0.1"} 0' in text
        assert 'repro_job_seconds_bucket{le="1"} 1' in text
        assert 'repro_job_seconds_bucket{le="+Inf"} 1' in text
        assert "repro_job_seconds_sum 0.5" in text
        assert "repro_job_seconds_count 1" in text
        assert text.endswith("\n")

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "C.", ("p",)).inc(p='a"b\nc\\d')
        rendered = registry.render_prometheus()
        assert r'c_total{p="a\"b\nc\\d"} 1' in rendered


class TestTrace:
    def test_span_emits_loadable_trace_events(self, tmp_path):
        trace_file = tmp_path / "trace.jsonl"
        trace_enable(str(trace_file))
        try:
            assert trace_active()
            with span("outer", cat="test", args={"job_key": "abc"}):
                with span("inner", cat="test"):
                    pass
        finally:
            trace_disable()
        assert not trace_active()
        events = [json.loads(line)
                  for line in trace_file.read_text().splitlines()]
        assert [e["name"] for e in events] == ["inner", "outer"]
        for event in events:
            assert event["ph"] == "X"
            assert event["cat"] == "test"
            assert isinstance(event["ts"], int)
            assert event["dur"] >= 1
            assert event["pid"] > 0
        assert events[1]["args"] == {"job_key": "abc"}

    def test_span_is_noop_when_disabled(self, tmp_path):
        trace_disable()
        with span("ignored"):
            pass
        assert list(tmp_path.iterdir()) == []


class TestLog:
    def test_parse_level(self):
        assert parse_level("debug") < parse_level("warning")
        with pytest.raises(ValueError):
            parse_level("chatty")

    def test_setup_logging_is_idempotent(self):
        import io
        import logging

        stream = io.StringIO()
        assert setup_logging("info", stream=stream)
        assert setup_logging("info", stream=stream)  # replaces, no dup
        root = logging.getLogger("repro")
        assert len(root.handlers) == 1
        assert root.propagate is False
        get_logger("engine.test").info("hello from %s", "obs")
        assert "hello from obs" in stream.getvalue()
        assert "repro.engine.test" in stream.getvalue()

    def test_setup_without_level_or_env_is_noop(self, monkeypatch):
        monkeypatch.delenv("REPRO_LOG", raising=False)
        assert setup_logging() is False


class TestObsConfig:
    def test_rejects_unknown_log_level(self):
        with pytest.raises(AnalysisError):
            ObsConfig(log_level="nope")

    def test_activate_exports_trace_env(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        trace_file = tmp_path / "t.jsonl"
        ObsConfig(trace_file=str(trace_file)).activate()
        try:
            assert trace_active()
        finally:
            trace_disable()


class TestCacheStats:
    def test_empty_stats_schema_is_zeroed(self):
        stats = ResultCache.empty_stats()
        assert stats["entries"] == 0 and stats["total_bytes"] == 0
        assert stats["hits"] == 0 and stats["misses"] == 0
        assert stats["eviction_candidates"] == 0

    def test_stats_reflect_disk_shape(self, tmp_path):
        cache = ResultCache(tmp_path / "cache", eviction_age_s=3600.0)
        for index in range(4):
            job = _quick_job(index)
            result = JobResult(job_key=job.key, name=job.name,
                               kind=job.kind, status="ok")
            assert cache.put(job, result)
        stats = cache.stats()
        assert set(stats) == set(ResultCache.empty_stats())
        assert stats["entries"] == 4
        assert stats["total_bytes"] > 0
        assert 0.0 <= stats["newest_age_s"] <= stats["oldest_age_s"]
        assert stats["age_p50_s"] <= stats["age_p90_s"]
        assert stats["eviction_candidates"] == 0
        # Pretend two hours pass: every entry becomes an eviction
        # candidate and the ages move together.
        later = cache.stats(now=time.time() + 7200)
        assert later["eviction_candidates"] == 4
        assert later["oldest_age_s"] >= 7200

    def test_cache_hit_zeroes_metrics_and_seconds(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        job = _quick_job(0)
        stored = JobResult(job_key=job.key, name=job.name, kind=job.kind,
                           status="ok", seconds=1.5,
                           metrics={"version": 1, "metrics": {}})
        assert cache.put(job, stored)
        replay = cache.get(job.key)
        assert replay.cached is True
        assert replay.seconds == 0.0
        # Replaying must not re-merge the original run's deltas.
        assert replay.metrics == {}


class TestHealthzSchema:
    def test_pre_warmup_healthz_is_zeroed_not_null(self):
        server = AnalysisServer(ServeConfig(port=0))
        health = server._healthz()
        assert health["status"] == "ok"
        assert health["engine"] == ExecutorStats().as_dict()
        assert health["cache"] == ResultCache.empty_stats()
        assert health["cache"]["hits"] == 0


# -- multi-process snapshot merging (soak harness) -------------------------

#: Per-process work of the soak: every worker counts the same series.
SOAK_INCREMENTS = 50
SOAK_WORKERS = 3


def _metrics_worker(result_queue, worker_index: int) -> None:
    registry = MetricsRegistry()
    registry.counter("soak_jobs_total", "Soak.", ("kind",)).inc(kind="warm")
    before = registry.snapshot()
    counter = registry.counter("soak_jobs_total", "Soak.", ("kind",))
    seconds = registry.histogram("soak_seconds", "Soak.", buckets=(0.5, 1.0))
    for step in range(SOAK_INCREMENTS):
        counter.inc(kind="diff")
        seconds.observe((worker_index + step) % 3 * 0.4)
    # JSON round-trip: the delta rides a process boundary in real life.
    result_queue.put(json.dumps(registry.diff(before)))


class TestMultiProcessMerge:
    def test_worker_deltas_merge_to_exact_totals(self):
        context = multiprocessing.get_context()
        result_queue = context.Queue()
        processes = [
            context.Process(target=_metrics_worker,
                            args=(result_queue, index))
            for index in range(SOAK_WORKERS)
        ]
        for process in processes:
            process.start()
        deltas = [json.loads(result_queue.get(timeout=60))
                  for _ in processes]
        for process in processes:
            process.join(timeout=60)
            assert process.exitcode == 0, process

        parent = MetricsRegistry()
        for delta in deltas:
            parent.merge(delta)
        counter = parent.counter("soak_jobs_total", "Soak.", ("kind",))
        assert counter.value(kind="diff") == SOAK_WORKERS * SOAK_INCREMENTS
        # The pre-snapshot increment must not leak into any delta.
        assert counter.value(kind="warm") == 0
        cell = parent.histogram("soak_seconds", "Soak.",
                                buckets=(0.5, 1.0)).value()
        assert cell["count"] == SOAK_WORKERS * SOAK_INCREMENTS
        assert sum(cell["buckets"]) == cell["count"]

    def test_pool_workers_report_into_parent_registry(self):
        """End to end: a jobs=2 executor run advances the parent's
        ``repro_jobs_total`` by exactly the number of executed jobs."""
        registry = get_registry()
        counter = registry.counter(
            "repro_jobs_total", "Analysis jobs executed, by kind and status.",
            ("kind", "status"),
        )
        before = counter.value(kind="single", status="ok")
        jobs = [_quick_job(index) for index in range(3)]
        executor = ParallelExecutor(jobs=2)
        try:
            results = executor.run(jobs)
        finally:
            executor.close()
        assert all(result.status == "ok" for result in results)
        # The deltas were merged and cleared — never double-counted.
        assert all(result.metrics == {} for result in results)
        after = counter.value(kind="single", status="ok")
        assert after - before == len(jobs)


class TestByteIdentity:
    """Canonical reports are identical with observability on or off."""

    def _write_pairs(self, directory) -> None:
        directory.mkdir()
        for name, cap in (("alpha", 6), ("beta", 9)):
            old = QUICK_SOURCE.format(cap=cap, cost=1)
            new = QUICK_SOURCE.format(cap=cap, cost=2)
            (directory / f"{name}_old.imp").write_text(old)
            (directory / f"{name}_new.imp").write_text(new)

    def test_batch_report_is_byte_identical_under_tracing(self, tmp_path):
        pairs = tmp_path / "pairs"
        self._write_pairs(pairs)
        trace_file = tmp_path / "trace.jsonl"

        trace_disable()
        plain = run_batch(str(pairs))
        trace_enable(str(trace_file))
        try:
            traced = run_batch(str(pairs))
        finally:
            trace_disable()

        assert canonical_json(json.loads(batch_to_json(plain))) \
            == canonical_json(json.loads(batch_to_json(traced)))
        # The traced run really did write spans, and they all parse.
        events = [json.loads(line)
                  for line in trace_file.read_text().splitlines()]
        assert any(event["name"] == "batch" for event in events)
        assert any(event["name"].startswith("job:") for event in events)
        assert any(event["name"] == "lp-solve" for event in events)
