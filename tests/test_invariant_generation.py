"""Integration and property tests for the invariant generator.

The key soundness property: every state visited by any concrete run must
satisfy the generated invariant at its location.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.invariants import generate_invariants
from repro.lang import load_program
from repro.ts import Interpreter
from repro.ts.guards import LinIneq
from repro.ts.interpreter import random_choice
from repro.ts.system import COST_VAR, NondetUpdate

JOIN = """
proc join(lenA, lenB) {
  assume(1 <= lenA && lenA <= 12);
  assume(1 <= lenB && lenB <= 12);
  var i = 0;
  var j = 0;
  while (i < lenA) {
    j = 0;
    while (j < lenB) { tick(1); j = j + 1; }
    i = i + 1;
  }
}
"""


def run_and_check(source: str, inputs: dict, seed: int = 0) -> None:
    """Execute with random nondet resolution; assert the invariant holds
    at every visited state."""
    lowered = load_program(source)
    invariants = generate_invariants(lowered.system,
                                     hints=lowered.invariant_hints)
    interpreter = Interpreter(lowered.system)
    rng = random.Random(seed)
    state = interpreter.initial_state(inputs)
    steps = 0
    while steps < 20_000:
        valuation = state.values()
        valuation.pop(COST_VAR)
        assert invariants.check_state(state.location, valuation), (
            f"invariant violated at {state.location}: {valuation} "
            f"not in {invariants.at(state.location)}"
        )
        if interpreter.is_terminal(state):
            return
        options = interpreter.enabled(state)
        transition = rng.choice(options)
        nondet = {}
        for var, update in transition.updates.items():
            if isinstance(update, NondetUpdate):
                low = int(update.lower.evaluate(state.values()))
                high = int(update.upper.evaluate(state.values()))
                nondet[var] = rng.randint(low, high)
        state = interpreter.apply(state, transition, nondet)
        steps += 1
    raise AssertionError("did not terminate")


class TestJoinInvariants:
    def test_loop_bound_facts_present(self):
        lowered = load_program(JOIN)
        invariants = generate_invariants(lowered.system)
        system = lowered.system
        from repro.poly.polynomial import Polynomial

        i = Polynomial.variable("i")
        lena = Polynomial.variable("lenA")
        # The inner-body location must know i <= lenA - 1 (the paper's
        # "expected invariants about the loop bounds").
        inner = system.location_by_name("l2")
        assert invariants.at(inner).entails(LinIneq.leq(i, lena - 1))
        assert invariants.at(inner).entails(
            LinIneq.geq(Polynomial.variable("j"), 0)
        )

    def test_initial_location_is_theta0(self):
        lowered = load_program(JOIN)
        invariants = generate_invariants(lowered.system)
        polyhedron = invariants.at(lowered.system.initial_location)
        assert polyhedron.contains_point(
            {"lenA": 1, "lenB": 12, "i": 0, "j": 0}
        )
        assert not polyhedron.contains_point(
            {"lenA": 0, "lenB": 12, "i": 0, "j": 0}
        )


class TestSoundnessOnRuns:
    def test_join(self):
        run_and_check(JOIN, {"lenA": 3, "lenB": 4, "i": 0, "j": 0})

    def test_nondet_branching(self):
        source = """
        proc p(n) {
          assume(1 <= n && n <= 10);
          var x = 0;
          var y = 0;
          while (x + y < n) {
            if (*) { x = x + 1; } else { tick(1); y = y + 1; }
          }
        }
        """
        for seed in range(5):
            run_and_check(source, {"n": 8, "x": 0, "y": 0}, seed)

    def test_nondet_assignment(self):
        source = """
        proc p(n) {
          assume(1 <= n && n <= 8);
          var i = 0;
          var k = 0;
          while (i < n) {
            k = nondet(0, n);
            tick(k);
            i = i + 1;
          }
        }
        """
        for seed in range(5):
            run_and_check(source, {"n": 6, "i": 0, "k": 0}, seed)

    def test_down_counting(self):
        source = """
        proc p(n) {
          assume(1 <= n && n <= 10);
          var x = n;
          while (x > 0) { tick(1); x = x - 1; }
        }
        """
        run_and_check(source, {"n": 10, "x": 0})

    def test_nonaffine_update(self):
        source = """
        proc p(n) {
          assume(1 <= n && n <= 5);
          var q = 0;
          var k = 0;
          q = n * n;
          while (k < q) { tick(1); k = k + 1; }
        }
        """
        run_and_check(source, {"n": 4, "q": 0, "k": 0})


@settings(max_examples=12, deadline=None)
@given(st.integers(1, 12), st.integers(1, 12), st.integers(0, 100))
def test_join_invariants_hold_on_random_inputs(lena, lenb, seed):
    run_and_check(JOIN, {"lenA": lena, "lenB": lenb, "i": 0, "j": 0}, seed)


class TestHints:
    def test_hints_are_conjoined(self):
        source = """
        proc p(n) {
          assume(1 <= n && n <= 10);
          var i = 0;
          while (i < n) {
            invariant(i <= 9);
            tick(1);
            i = i + 1;
          }
        }
        """
        lowered = load_program(source)
        invariants = generate_invariants(lowered.system,
                                         hints=lowered.invariant_hints)
        from repro.poly.polynomial import Polynomial

        (head_name,) = lowered.invariant_hints.keys()
        head = lowered.system.location_by_name(head_name)
        assert invariants.at(head).entails(
            LinIneq.leq(Polynomial.variable("i"), 9)
        )
