"""Regression: job cache keys are dict-insertion-order independent.

The content-addressed key hashes ``json.dumps(payload, sort_keys=True)``;
these tests pin that down by rebuilding payloads with deliberately
permuted dict insertion orders and demanding byte-identical canonical
JSON (and hence identical SHA-256 keys).
"""

import hashlib
import json

from repro.config import AnalysisConfig
from repro.engine.jobs import AnalysisJob

OLD = """
proc p(n) {
  assume(1 <= n && n <= 10);
  var i = 0;
  while (i < n) { tick(2); i = i + 1; }
}
"""
NEW = OLD.replace("tick(2)", "tick(1)")


def permute(value):
    """Deep copy with every dict rebuilt in reversed insertion order."""
    if isinstance(value, dict):
        return {k: permute(value[k]) for k in reversed(list(value))}
    if isinstance(value, list):
        return [permute(v) for v in value]
    return value


def canonical(payload) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def test_permuted_payload_has_identical_canonical_json():
    job = AnalysisJob(kind="diff", old_source=OLD, new_source=NEW,
                      name="perm")
    payload = job.canonical_payload()
    shuffled = permute(payload)
    assert list(shuffled) != list(payload)  # the permutation is real
    assert canonical(shuffled) == canonical(payload)


def test_key_matches_hash_of_permuted_payload():
    job = AnalysisJob(kind="diff", old_source=OLD, new_source=NEW)
    digest = hashlib.sha256(
        canonical(permute(job.canonical_payload())).encode()
    ).hexdigest()
    assert digest == job.key


def test_equal_jobs_share_keys_and_different_jobs_do_not():
    a = AnalysisJob(kind="diff", old_source=OLD, new_source=NEW,
                    config=AnalysisConfig())
    b = AnalysisJob(kind="diff", old_source=OLD, new_source=NEW,
                    config=AnalysisConfig())
    assert a.key == b.key
    c = AnalysisJob(kind="diff", old_source=OLD, new_source=OLD)
    assert c.key != a.key


def test_name_is_not_part_of_the_key():
    # Display names must not fragment the cache.
    a = AnalysisJob(kind="diff", old_source=OLD, new_source=NEW, name="x")
    b = AnalysisJob(kind="diff", old_source=OLD, new_source=NEW, name="y")
    assert a.key == b.key
