"""Unit and property tests for the Handelman encoding."""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.handelman import (
    ImplicationConstraint,
    encode_affine_implication,
    encode_implication,
    generate_products,
)
from repro.lp import ExactSimplexBackend, LPModel, LPStatus, ScipyBackend
from repro.poly.polynomial import Polynomial
from repro.poly.template import TemplatePolynomial
from repro.ts.guards import LinIneq, box
from repro.utils.naming import FreshNameGenerator

X = Polynomial.variable("x")
Y = Polynomial.variable("y")


class TestProducts:
    def test_includes_one(self):
        products = generate_products([X], 2)
        assert products[0] == Polynomial.constant(1)

    def test_counts(self):
        products = generate_products([X, Y], 2)
        # 1, x, y, x^2, xy, y^2.
        assert len(products) == 6

    def test_deduplication(self):
        products = generate_products([X, X], 2)
        assert len(products) == 3  # 1, x, x^2

    def test_zero_generator_skipped(self):
        products = generate_products([Polynomial.zero(), X], 1)
        assert products == [Polynomial.constant(1), X]


def solve_implication(premise, consequent_poly, max_factors=2,
                      backend=None):
    """Encode one concrete implication and report LP feasibility."""
    constraint = ImplicationConstraint(
        premise=tuple(premise),
        consequent=TemplatePolynomial.from_polynomial(consequent_poly),
        name="test",
    )
    model = LPModel()
    encode_implication(constraint, model, FreshNameGenerator(), max_factors)
    solution = (backend or ExactSimplexBackend()).solve(model)
    return solution


class TestEncodingSoundAndComplete:
    def test_valid_implication_certified(self):
        # 0 <= x <= 10  =>  10 - x >= 0.
        solution = solve_implication(box({"x": (0, 10)}), 10 - X)
        assert solution.status is LPStatus.OPTIMAL

    def test_invalid_implication_rejected(self):
        # 0 <= x <= 10  =/=>  x - 5 >= 0.
        solution = solve_implication(box({"x": (0, 10)}), X - 5)
        assert solution.status is not LPStatus.OPTIMAL

    def test_quadratic_needs_k2(self):
        # 0 <= x <= 10 => x*(10 - x) >= 0: needs a degree-2 product.
        premise = box({"x": (0, 10)})
        poly = X * (10 - X)
        assert solve_implication(premise, poly, max_factors=1).status \
            is not LPStatus.OPTIMAL
        assert solve_implication(premise, poly, max_factors=2).status \
            is LPStatus.OPTIMAL

    def test_relational_premise(self):
        # x <= y and y <= 5 => 5 - x >= 0.
        premise = [LinIneq.leq(X, Y), LinIneq.leq(Y, 5)]
        assert solve_implication(premise, 5 - X).status is LPStatus.OPTIMAL

    def test_affine_fast_path_matches(self):
        constraint = ImplicationConstraint(
            premise=box({"x": (0, 10)}),
            consequent=TemplatePolynomial.from_polynomial(10 - X),
            name="affine",
        )
        model = LPModel()
        encode_affine_implication(constraint, model, FreshNameGenerator())
        assert ExactSimplexBackend().solve(model).status is LPStatus.OPTIMAL

    def test_symbolic_threshold_minimization(self):
        # min t s.t. 1 <= x <= 100 => t - x >= 0 gives t = 100.
        constraint = ImplicationConstraint(
            premise=box({"x": (1, 100)}),
            consequent=TemplatePolynomial.from_symbol("t")
            - TemplatePolynomial.from_polynomial(X),
            name="thr",
        )
        model = LPModel()
        encode_implication(constraint, model, FreshNameGenerator(), 2)
        from repro.poly.linexpr import AffineExpr

        model.minimize(AffineExpr.variable("t"))
        solution = ExactSimplexBackend().solve(model)
        assert solution.status is LPStatus.OPTIMAL
        assert solution.values["t"] == Fraction(100)

    def test_quadratic_threshold(self):
        # min t s.t. box => t - x*y >= 0 gives t = 100 (needs K = 2).
        constraint = ImplicationConstraint(
            premise=box({"x": (1, 10), "y": (1, 10)}),
            consequent=TemplatePolynomial.from_symbol("t")
            - TemplatePolynomial.from_polynomial(X * Y),
            name="quad",
        )
        model = LPModel()
        encode_implication(constraint, model, FreshNameGenerator(), 2)
        from repro.poly.linexpr import AffineExpr

        model.minimize(AffineExpr.variable("t"))
        solution = ExactSimplexBackend().solve(model)
        assert solution.values["t"] == Fraction(100)


@settings(max_examples=25, deadline=None)
@given(st.lists(st.tuples(st.integers(-3, 3), st.integers(-3, 3),
                          st.integers(0, 5)),
                min_size=1, max_size=3),
       st.integers(1, 3))
def test_certified_combinations_are_pointwise_sound(rows, max_factors):
    """Whatever the LP certifies really is nonnegative on the premise."""
    premise = list(box({"x": (0, 4), "y": (0, 4)}))
    premise += [
        LinIneq(Fraction(a) * LinIneq.geq(X, 0).expr
                + Fraction(b) * LinIneq.geq(Y, 0).expr + Fraction(c))
        for a, b, c in rows
    ]
    products = generate_products([p.expr.to_polynomial() for p in premise],
                                 max_factors)
    # Every product must be nonnegative wherever the premise holds.
    for x in range(0, 5):
        for y in range(0, 5):
            point = {"x": x, "y": y}
            if all(p.holds(point) for p in premise):
                for product in products:
                    assert product.evaluate(point) >= 0
