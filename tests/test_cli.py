"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main

OLD = """
proc count(n) {
  assume(1 <= n && n <= 10);
  var i = 0;
  while (i < n) { tick(1); i = i + 1; }
}
"""

NEW = OLD.replace("tick(1)", "tick(2)")


@pytest.fixture
def program_files(tmp_path):
    old_path = tmp_path / "old.imp"
    new_path = tmp_path / "new.imp"
    old_path.write_text(OLD)
    new_path.write_text(NEW)
    return str(old_path), str(new_path)


class TestDiff:
    def test_threshold_printed(self, program_files, capsys):
        old, new = program_files
        assert main(["diff", old, new]) == 0
        out = capsys.readouterr().out
        assert "threshold" in out
        assert "10" in out

    def test_certificates_flag(self, program_files, capsys):
        old, new = program_files
        assert main(["diff", old, new, "--certificates"]) == 0
        out = capsys.readouterr().out
        assert "potential for" in out
        assert "anti-potential for" in out

    def test_exact_backend(self, program_files, capsys):
        old, new = program_files
        assert main(["diff", old, new, "--backend", "exact"]) == 0
        assert "threshold t = 10" in capsys.readouterr().out

    def test_failure_exit_code(self, tmp_path, capsys):
        unbounded = tmp_path / "u.imp"
        unbounded.write_text("""
        proc p(n) {
          assume(1 <= n);
          var i = 0;
          while (i < n) {
            if (i < 2) { tick(2); } else { tick(1); }
            i = i + 1;
          }
        }
        """)
        plain = tmp_path / "p.imp"
        plain.write_text("""
        proc p(n) {
          assume(1 <= n);
          var i = 0;
          while (i < n) { tick(1); i = i + 1; }
        }
        """)
        assert main(["diff", str(plain), str(unbounded)]) == 1


class TestBoundRefuteSingle:
    def test_bound_proved(self, program_files, capsys):
        old, new = program_files
        assert main(["bound", old, new, "--bound", "n"]) == 0
        assert "proved" in capsys.readouterr().out

    def test_bound_unprovable(self, program_files, capsys):
        old, new = program_files
        assert main(["bound", old, new, "--bound", "n - 1"]) == 1

    def test_refute(self, program_files, capsys):
        old, new = program_files
        assert main(["refute", old, new, "--candidate", "5"]) == 0
        assert "refuted" in capsys.readouterr().out

    def test_refute_valid_threshold(self, program_files):
        old, new = program_files
        assert main(["refute", old, new, "--candidate", "10"]) == 1

    def test_single(self, program_files, capsys):
        old, _ = program_files
        assert main(["single", old]) == 0
        assert "precision gap" in capsys.readouterr().out


class TestShowAndErrors:
    def test_show_text(self, program_files, capsys):
        old, _ = program_files
        assert main(["show", old]) == 0
        assert "transition system" in capsys.readouterr().out

    def test_show_dot(self, program_files, capsys):
        old, _ = program_files
        assert main(["show", old, "--dot"]) == 0
        assert "digraph" in capsys.readouterr().out

    def test_missing_file(self, capsys):
        assert main(["show", "/nonexistent.imp"]) == 2
        assert "error" in capsys.readouterr().err

    def test_parse_error_reported(self, tmp_path, capsys):
        bad = tmp_path / "bad.imp"
        bad.write_text("proc p( { }")
        assert main(["show", str(bad)]) == 2
        assert "error" in capsys.readouterr().err

    def test_parser_has_all_subcommands(self):
        parser = build_parser()
        text = parser.format_help()
        for command in ("diff", "bound", "refute", "single", "suite", "show"):
            assert command in text


class TestSuiteCommand:
    def test_subset(self, capsys):
        assert main(["suite", "--names", "ex4"]) == 0
        out = capsys.readouterr().out
        assert "ex4" in out
        assert "201" in out


class TestWitnessCommand:
    def test_witness_found(self, program_files, capsys):
        old, new = program_files
        assert main(["witness", old, new]) == 0
        out = capsys.readouterr().out
        assert "difference 10" in out

    def test_witness_exceed(self, program_files):
        old, new = program_files
        assert main(["witness", old, new, "--exceed", "5"]) == 0
        assert main(["witness", old, new, "--exceed", "10"]) == 1


class TestSuiteFormats:
    def test_markdown(self, capsys):
        assert main(["suite", "--names", "ex4", "--format", "markdown"]) == 0
        assert capsys.readouterr().out.startswith("| Benchmark")

    def test_csv(self, capsys):
        assert main(["suite", "--names", "ex4", "--format", "csv"]) == 0
        assert "benchmark," in capsys.readouterr().out
