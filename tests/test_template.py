"""Unit tests for symbolic polynomial templates."""

from fractions import Fraction

from repro.poly.linexpr import AffineExpr
from repro.poly.monomial import Monomial
from repro.poly.polynomial import Polynomial
from repro.poly.template import TemplatePolynomial

X = Polynomial.variable("x")


def fresh_template(degree=1, variables=("x",)):
    return TemplatePolynomial.fresh(
        list(variables), degree, name_of=lambda m: f"u[{m}]"
    )


class TestTemplateConstruction:
    def test_fresh_has_one_symbol_per_monomial(self):
        template = fresh_template(degree=2, variables=("x", "y"))
        assert len(template.monomials()) == 6
        assert len(template.symbols) == 6

    def test_from_polynomial_embeds_constants(self):
        template = TemplatePolynomial.from_polynomial(2 * X + 1)
        assert template.coefficient(Monomial.of("x")) == AffineExpr.constant(2)
        assert template.symbols == frozenset()

    def test_from_symbol(self):
        template = TemplatePolynomial.from_symbol("t")
        assert template.coefficient(Monomial.one()) == AffineExpr.variable("t")


class TestTemplateArithmetic:
    def test_add_and_subtract_polynomial(self):
        template = fresh_template()
        assert (template + X) - X == template

    def test_subtraction_of_equal_templates_is_zero(self):
        template = fresh_template()
        assert (template - template).is_zero()

    def test_scale(self):
        template = fresh_template()
        doubled = template.scale(2)
        for mono in template.monomials():
            assert doubled.coefficient(mono) == template.coefficient(mono).scale(2)

    def test_multiply_polynomial(self):
        template = TemplatePolynomial.from_symbol("c")
        result = template.multiply_polynomial(X * X + 1)
        assert set(result.monomials()) == {Monomial.one(), Monomial.of("x", 2)}


class TestTemplateSubstitution:
    def test_substitute_shifts_linearly(self):
        template = fresh_template()
        shifted = template.substitute({"x": X + 1})
        # Coefficient of x stays u[x]; the constant becomes u[1] + u[x].
        assert shifted.coefficient(Monomial.of("x")) == AffineExpr.variable("u[x]")
        assert shifted.coefficient(Monomial.one()) == (
            AffineExpr.variable("u[1]") + AffineExpr.variable("u[x]")
        )

    def test_substitution_commutes_with_instantiation(self):
        template = fresh_template(degree=2)
        assignment = {"u[1]": Fraction(1), "u[x]": Fraction(-2),
                      "u[x^2]": Fraction(3)}
        update = {"x": 2 * X - 1}
        via_template = template.substitute(update).instantiate(assignment)
        via_polynomial = template.instantiate(assignment).substitute(update)
        assert via_template == via_polynomial

    def test_instantiate_drops_zero_coefficients(self):
        template = fresh_template()
        poly = template.instantiate({"u[1]": Fraction(0), "u[x]": Fraction(1)})
        assert poly == X

    def test_evaluate_program_vars(self):
        template = fresh_template(degree=2)
        expr = template.evaluate_program_vars({"x": 3})
        assert expr == (AffineExpr.variable("u[1]")
                        + AffineExpr.variable("u[x]").scale(3)
                        + AffineExpr.variable("u[x^2]").scale(9))
