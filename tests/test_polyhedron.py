"""Unit and property tests for the polyhedra-lite domain."""

from fractions import Fraction

from hypothesis import given, settings, strategies as st

from repro.invariants.polyhedron import Polyhedron
from repro.poly.polynomial import Polynomial
from repro.ts.guards import LinIneq, box
from repro.ts.system import Transition, Location, NondetUpdate

X = Polynomial.variable("x")
Y = Polynomial.variable("y")
N = Polynomial.variable("n")


def poly_box(**bounds):
    return Polyhedron(box({k: v for k, v in bounds.items()}))


class TestBasics:
    def test_top_and_bottom(self):
        assert not Polyhedron.top().is_empty()
        assert Polyhedron.bottom().is_empty()
        assert Polyhedron.bottom().entails(LinIneq.geq(X, 10**6))

    def test_syntactic_contradiction_detected(self):
        polyhedron = Polyhedron([LinIneq.geq(Polynomial.constant(-1), 0)])
        assert polyhedron.is_bottom()

    def test_semantic_emptiness(self):
        polyhedron = Polyhedron([LinIneq.geq(X, 1), LinIneq.leq(X, 0)])
        assert not polyhedron.is_bottom()  # not syntactic
        assert polyhedron.is_empty()

    def test_contains_point(self):
        assert poly_box(x=(0, 5)).contains_point({"x": 3})
        assert not poly_box(x=(0, 5)).contains_point({"x": 6})

    def test_duplicates_normalized_away(self):
        polyhedron = Polyhedron([
            LinIneq.geq(X, 1),
            LinIneq.geq(2 * X, 2),
        ])
        assert len(polyhedron.ineqs) == 1


class TestQueries:
    def test_entailment(self):
        polyhedron = poly_box(x=(1, 10))
        assert polyhedron.entails(LinIneq.geq(X, 0))
        assert polyhedron.entails(LinIneq.leq(X, 10))
        assert not polyhedron.entails(LinIneq.geq(X, 2))

    def test_relational_entailment(self):
        polyhedron = Polyhedron([LinIneq.leq(X, Y), LinIneq.leq(Y, N)])
        assert polyhedron.entails(LinIneq.leq(X, N))
        assert not polyhedron.entails(LinIneq.leq(N, X))

    def test_entails_all_inclusion(self):
        small = poly_box(x=(2, 3))
        big = poly_box(x=(0, 5))
        assert small.entails_all(big)
        assert not big.entails_all(small)

    def test_var_bounds(self):
        interval = poly_box(x=(3, 8)).var_bounds("x")
        assert interval.lower == 3 and interval.upper == 8

    def test_var_bounds_unbounded(self):
        polyhedron = Polyhedron([LinIneq.geq(X, 0)])
        interval = polyhedron.var_bounds("x")
        assert interval.lower == 0 and interval.upper is None

    def test_minimize(self):
        assert poly_box(x=(2, 9)).minimize(
            LinIneq.geq(X, 0).expr
        ) == Fraction(2)


class TestLattice:
    def test_meet(self):
        met = poly_box(x=(0, 10)).meet(poly_box(x=(5, 20)).ineqs)
        assert met.var_bounds("x").lower == 5
        assert met.var_bounds("x").upper == 10

    def test_join_keeps_mutually_entailed(self):
        a = Polyhedron(LinIneq.equals(X, Polynomial.constant(0)) +
                       box({"n": (1, 10)}))
        b = Polyhedron(LinIneq.equals(X, N) + box({"n": (1, 10)}))
        joined = a.join(b)
        assert joined.entails(LinIneq.geq(X, 0))
        assert joined.entails(LinIneq.leq(X, N))
        assert not joined.entails(LinIneq.leq(X, 0))

    def test_join_with_bottom(self):
        polyhedron = poly_box(x=(1, 2))
        assert polyhedron.join(Polyhedron.bottom()) == polyhedron
        assert Polyhedron.bottom().join(polyhedron) == polyhedron

    def test_join_keeps_redundant_stable_bounds(self):
        # The nested_single regression: i <= n+1 must survive the join
        # even though the transient i <= 1 makes it redundant.
        a = Polyhedron([LinIneq.geq(X, 0), LinIneq.leq(X, 0)]
                       + list(box({"n": (1, 100)})))
        b = Polyhedron([LinIneq.geq(X, 1), LinIneq.leq(X, 1),
                        LinIneq.leq(X, N + 1)] + list(box({"n": (1, 100)})))
        joined = a.join(b)
        assert any("n" in str(i) and "x" in str(i) for i in joined.ineqs)

    def test_widen_drops_unstable(self):
        old = poly_box(x=(0, 1))
        new = poly_box(x=(0, 2))
        widened = old.widen(new)
        assert widened.entails(LinIneq.geq(X, 0))
        assert not widened.entails(LinIneq.leq(X, 2))

    def test_reduce_removes_redundant(self):
        polyhedron = Polyhedron([
            LinIneq.geq(X, 0), LinIneq.geq(X, -5), LinIneq.leq(X, 3),
        ])
        assert len(polyhedron.reduce().ineqs) == 2

    def test_reduce_detects_empty(self):
        polyhedron = Polyhedron([LinIneq.geq(X, 1), LinIneq.leq(X, 0)])
        assert polyhedron.reduce().is_bottom()


class TestProjection:
    def test_project_out_transfers_bounds(self):
        polyhedron = Polyhedron([
            LinIneq.leq(X, Y), LinIneq.leq(Y, 5), LinIneq.geq(Y, 0),
        ])
        projected = polyhedron.project_out(["y"])
        assert projected.entails(LinIneq.leq(X, 5))
        assert "y" not in projected.variables

    def test_projection_is_sound_overapproximation(self):
        polyhedron = Polyhedron([
            LinIneq.geq(X + Y, 2), LinIneq.leq(X - Y, 0),
            LinIneq.leq(X, 4), LinIneq.geq(Y, -1), LinIneq.leq(Y, 6),
        ])
        projected = polyhedron.project_out(["y"])
        for x in range(-10, 11):
            for y in range(-10, 11):
                if polyhedron.contains_point({"x": x, "y": y}):
                    assert projected.contains_point({"x": x})


class TestTransfer:
    def _transition(self, guard=(), updates=None):
        return Transition(Location("a"), Location("b"),
                          tuple(guard), updates or {})

    def test_affine_assignment(self):
        polyhedron = poly_box(x=(0, 5))
        post = polyhedron.transfer(
            self._transition(updates={"x": X + 1}), ["x"]
        )
        interval = post.var_bounds("x")
        assert (interval.lower, interval.upper) == (1, 6)

    def test_guard_restricts(self):
        polyhedron = poly_box(x=(0, 5))
        post = polyhedron.transfer(
            self._transition(guard=[LinIneq.geq(X, 3)]), ["x"]
        )
        assert post.var_bounds("x").lower == 3

    def test_blocked_guard_gives_bottom(self):
        polyhedron = poly_box(x=(0, 5))
        post = polyhedron.transfer(
            self._transition(guard=[LinIneq.geq(X, 7)]), ["x"]
        )
        assert post.is_bottom()

    def test_nondet_update_bounded_by_expressions(self):
        polyhedron = poly_box(n=(1, 10))
        post = polyhedron.transfer(
            self._transition(
                updates={"x": NondetUpdate(Polynomial.constant(0), N)}
            ),
            ["x", "n"],
        )
        assert post.entails(LinIneq.geq(X, 0))
        assert post.entails(LinIneq.leq(X, N))

    def test_nonaffine_update_falls_back_to_intervals(self):
        polyhedron = poly_box(n=(2, 4))
        post = polyhedron.transfer(
            self._transition(updates={"x": N * N}), ["x", "n"]
        )
        interval = post.var_bounds("x")
        assert interval.lower <= 4 and interval.upper >= 16

    def test_relational_fact_preserved(self):
        polyhedron = Polyhedron([LinIneq.leq(X, N)] + list(box({"n": (1, 9)})))
        post = polyhedron.transfer(
            self._transition(updates={"x": X - 1}), ["x", "n"]
        )
        assert post.entails(LinIneq.leq(X, N - 1))


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(st.integers(-3, 3), st.integers(-3, 3),
                          st.integers(-6, 6)), min_size=1, max_size=5))
def test_join_contains_both_operands(rows):
    ineqs = [
        LinIneq(Fraction(a) * LinIneq.geq(X, 0).expr
                + Fraction(b) * LinIneq.geq(Y, 0).expr
                + Fraction(c))
        for a, b, c in rows
    ]
    base = list(box({"x": (-5, 5), "y": (-5, 5)}))
    a_side = Polyhedron(base + ineqs[: len(ineqs) // 2 + 1])
    b_side = Polyhedron(base + ineqs[len(ineqs) // 2:])
    joined = a_side.join(b_side)
    for x in range(-5, 6):
        for y in range(-5, 6):
            point = {"x": x, "y": y}
            if a_side.contains_point(point) or b_side.contains_point(point):
                assert joined.contains_point(point)
