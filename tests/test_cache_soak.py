"""Concurrency soak test for the result cache's multi-writer paths.

Shard runs and the serving front-end point many *processes* at one
cache directory, so the invariant under test is: concurrent ``put`` and
``merge_from`` traffic over overlapping key sets never corrupts an
entry (every file always parses and round-trips) and never drops one
(every key written by anyone is present at the end).  On the legacy
directory backend both paths publish through a temp file + atomic
``os.replace``; on the warm backend every append runs under the log's
advisory lock and compaction publishes a fresh log atomically — and a
compactor and an evictor hammering the log *while* writers append must
never lose a verified entry either.
"""

import json
import multiprocessing
import random

from repro.config import AnalysisConfig
from repro.engine.cache import ResultCache
from repro.engine.jobs import AnalysisJob, JobResult

#: Distinct jobs in the shared key population.  Writers overlap fully:
#: every process writes every key, repeatedly, in its own order.
KEYS = 60
ROUNDS = 4
WRITERS = 2


def _job(index: int) -> AnalysisJob:
    source = (
        "proc p(n) {\n"
        f"  assume(1 <= n && n <= {index + 2});\n"
        "  var i = 0;\n"
        "  while (i < n) { tick(1); i = i + 1; }\n"
        "}\n"
    )
    return AnalysisJob(kind="single", old_source=source,
                       config=AnalysisConfig(), name=f"soak{index}")


def _result(job: AnalysisJob, index: int) -> JobResult:
    return JobResult(
        job_key=job.key,
        name=job.name,
        kind=job.kind,
        status="ok",
        outcome="bounded",
        threshold=float(index),
        threshold_str=str(index),
        message=f"soak entry {index}",
        seconds=0.001 * index,
    )


def _writer(directory: str, seed: int) -> None:
    cache = ResultCache(directory)
    rng = random.Random(seed)
    for _round in range(ROUNDS):
        order = list(range(KEYS))
        rng.shuffle(order)
        for index in order:
            job = _job(index)
            assert cache.put(job, _result(job, index))


def _merger(destination: str, source: str) -> None:
    cache = ResultCache(destination)
    for _round in range(ROUNDS * 2):
        cache.merge_from(source)


def _run_processes(targets):
    context = multiprocessing.get_context()
    processes = [context.Process(target=target, args=args)
                 for target, args in targets]
    for process in processes:
        process.start()
    for process in processes:
        process.join(timeout=120)
        assert process.exitcode == 0, process
    return processes


def _assert_cache_intact(directory) -> None:
    """Every expected key present, every file parses, every entry
    round-trips into the result that some writer legitimately wrote."""
    cache = ResultCache(directory)
    expected = {_job(index).key: index for index in range(KEYS)}
    on_disk = sorted(directory.glob("*.json"))
    assert len(on_disk) == KEYS
    for path in on_disk:
        entry = json.loads(path.read_text())  # corrupt JSON would raise
        key = path.name[:-len(".json")]
        index = expected[key]
        result = cache.get(key)
        assert result is not None, "a stored entry must read back"
        assert result.threshold == float(index)
        assert result.threshold_str == str(index)
        assert entry["result"]["message"] == f"soak entry {index}"
    assert cache.hits == KEYS and cache.misses == 0


class TestMultiWriterSoak:
    def test_concurrent_overlapping_writers(self, tmp_path):
        directory = tmp_path / "cache"
        _run_processes([
            (_writer, (str(directory), seed)) for seed in range(WRITERS)
        ])
        _assert_cache_intact(directory)

    def test_concurrent_writer_and_merger(self, tmp_path):
        """A merge folding a populated shard cache into a destination
        that a live writer is simultaneously filling."""
        source = tmp_path / "shard-cache"
        _writer(str(source), seed=7)  # pre-populate the shard
        destination = tmp_path / "merged"
        _run_processes([
            (_writer, (str(destination), 11)),
            (_merger, (str(destination), str(source))),
        ])
        _assert_cache_intact(destination)
        # The merge source is untouched.
        _assert_cache_intact(source)

    def test_concurrent_mergers(self, tmp_path):
        """Two processes merging overlapping sources into one
        destination: union survives, nothing tears."""
        source_a = tmp_path / "a"
        source_b = tmp_path / "b"
        _writer(str(source_a), seed=1)
        _writer(str(source_b), seed=2)
        destination = tmp_path / "merged"
        _run_processes([
            (_merger, (str(destination), str(source_a))),
            (_merger, (str(destination), str(source_b))),
        ])
        _assert_cache_intact(destination)

    def test_no_stray_temp_files_left(self, tmp_path):
        directory = tmp_path / "cache"
        _run_processes([
            (_writer, (str(directory), seed)) for seed in range(WRITERS)
        ])
        strays = [p.name for p in directory.iterdir()
                  if p.name.startswith(".tmp-")]
        assert strays == []


# -- the warm tier under the same fire ---------------------------------------


def _warm_writer(directory: str, seed: int) -> None:
    # hot_capacity=0: this process must re-verify from the log every
    # time, so it observes every compaction/eviction republish.
    cache = ResultCache(directory, backend="warm", hot_capacity=0)
    rng = random.Random(seed)
    for _round in range(ROUNDS):
        order = list(range(KEYS))
        rng.shuffle(order)
        for index in order:
            job = _job(index)
            assert cache.put(job, _result(job, index))


def _warm_compactor(directory: str, rounds: int) -> None:
    cache = ResultCache(directory, backend="warm", hot_capacity=0)
    for _round in range(rounds):
        summary = cache.compact()
        assert summary["aborted"] == 0, summary


def _warm_merger(destination: str, source: str) -> None:
    cache = ResultCache(destination, backend="warm", hot_capacity=0)
    for _round in range(ROUNDS * 2):
        cache.merge_from(source)


def _warm_evictor(directory: str, rounds: int) -> None:
    cache = ResultCache(directory, backend="warm", hot_capacity=0)
    for _round in range(rounds):
        # A one-hour bound can never fire inside a test run: the
        # eviction machinery (a compaction pass) runs, nothing may drop.
        assert cache.evict(max_age_s=3600.0) == 0


def _assert_warm_cache_intact(directory) -> None:
    cache = ResultCache(directory, backend="warm")
    assert len(cache) == KEYS
    for index in range(KEYS):
        result = cache.get(_job(index).key)
        assert result is not None, f"entry {index} lost"
        assert result.threshold == float(index)
        assert result.threshold_str == str(index)
    assert cache.hits == KEYS and cache.misses == 0
    assert cache.corrupted == 0
    assert list(directory.glob("*.corrupt")) == []


class TestWarmTierSoak:
    def test_concurrent_writers_compactor_and_evictor(self, tmp_path):
        """The tentpole invariant: appends, compactions and eviction
        passes interleaving freely over one log never tear or drop a
        verified entry."""
        directory = tmp_path / "warm-cache"
        _run_processes(
            [(_warm_writer, (str(directory), seed))
             for seed in range(WRITERS)]
            + [(_warm_compactor, (str(directory), ROUNDS * 2)),
               (_warm_evictor, (str(directory), ROUNDS * 2))]
        )
        _assert_warm_cache_intact(directory)
        # A final compaction squeezes out every superseded record and
        # the full population still reads back.
        final = ResultCache(directory, backend="warm")
        summary = final.compact()
        assert summary["aborted"] == 0
        assert summary["kept"] == KEYS
        _assert_warm_cache_intact(directory)

    def test_concurrent_warm_writer_and_merger(self, tmp_path):
        source = tmp_path / "shard-cache"
        _warm_writer(str(source), seed=7)
        destination = tmp_path / "merged"
        _run_processes([
            (_warm_writer, (str(destination), 11)),
            (_warm_merger, (str(destination), str(source))),
        ])
        _assert_warm_cache_intact(destination)
        _assert_warm_cache_intact(source)  # merge sources are read-only
