"""Unit and property tests for concrete execution and cost search."""

import random

import pytest

from repro.errors import InterpreterError, NonTerminationError
from repro.lang import load_program
from repro.poly.polynomial import Polynomial
from repro.ts import (
    CostSearch,
    Interpreter,
    LinIneq,
    TransitionSystemBuilder,
)
from repro.ts.interpreter import first_choice, random_choice

X = Polynomial.variable("x")
N = Polynomial.variable("n")


def countdown_system():
    """while (x > 0) { tick(1); x-- }"""
    builder = TransitionSystemBuilder("countdown", ["x"])
    builder.assume_init_box({"x": (0, 50)})
    builder.transition("l0", "l0", guard=[LinIneq.geq(X, 1)],
                       updates={"x": X - 1}, cost=1)
    builder.transition("l0", "l_out", guard=[LinIneq.leq(X, 0)])
    return builder.build("l0", "l_out")


class TestInterpreter:
    def test_run_cost_equals_initial_value(self):
        interpreter = Interpreter(countdown_system())
        run = interpreter.run({"x": 7})
        assert run.cost == 7
        assert run.length == 8
        assert run.locations()[-1] == "l_out"

    def test_initial_state_requires_theta0(self):
        interpreter = Interpreter(countdown_system())
        with pytest.raises(InterpreterError, match="Theta0"):
            interpreter.initial_state({"x": -3})

    def test_initial_state_requires_all_variables(self):
        interpreter = Interpreter(countdown_system())
        with pytest.raises(InterpreterError, match="missing"):
            interpreter.initial_state({})

    def test_nontermination_detected(self):
        builder = TransitionSystemBuilder("loop", ["x"])
        builder.transition("l0", "l0")
        builder.transition("l1", "l_out")  # unreachable exit
        system = builder.build("l0", "l_out")
        with pytest.raises(NonTerminationError):
            Interpreter(system, max_steps=100).run({"x": 0})

    def test_random_chooser_still_terminates(self):
        source = """
        proc p(n) {
          assume(1 <= n && n <= 10);
          var i = 0;
          while (i < n) {
            if (*) { tick(2); } else { tick(1); }
            i = i + 1;
          }
        }
        """
        system = load_program(source).system
        interpreter = Interpreter(system)
        rng = random.Random(3)
        run = interpreter.run({"n": 5, "i": 0}, random_choice(rng))
        assert 5 <= run.cost <= 10

    def test_first_choice_deterministic(self):
        system = countdown_system()
        interpreter = Interpreter(system)
        costs = {interpreter.run({"x": 4}, first_choice).cost for _ in range(3)}
        assert costs == {4}


class TestCostSearch:
    def test_deterministic_bounds_coincide(self):
        search = CostSearch(countdown_system())
        assert search.cost_bounds({"x": 9}) == (9, 9)

    def test_nondet_branching_bounds(self):
        source = """
        proc p(n) {
          assume(1 <= n && n <= 10);
          var i = 0;
          while (i < n) {
            if (*) { tick(3); } else { tick(1); }
            i = i + 1;
          }
        }
        """
        search = CostSearch(load_program(source).system)
        assert search.cost_bounds({"n": 4, "i": 0}) == (4, 12)

    def test_bounded_nondet_assignment(self):
        source = """
        proc p(n) {
          assume(1 <= n && n <= 5);
          var k = 0;
          k = nondet(0, n);
          tick(k);
        }
        """
        search = CostSearch(load_program(source).system)
        assert search.cost_bounds({"n": 3, "k": 0}) == (0, 3)

    def test_blocked_assume_prunes_runs(self):
        source = """
        proc p(n) {
          assume(1 <= n && n <= 5);
          var k = 0;
          k = nondet(0, 10);
          assume(k >= 5);
          tick(k);
        }
        """
        search = CostSearch(load_program(source).system)
        assert search.cost_bounds({"n": 1, "k": 0}) == (5, 10)

    def test_all_runs_blocked_raises(self):
        source = """
        proc p(n) {
          assume(1 <= n && n <= 5);
          var k = 0;
          k = nondet(0, 3);
          assume(k >= 7);
          tick(1);
        }
        """
        search = CostSearch(load_program(source).system)
        with pytest.raises(InterpreterError, match="no terminating run"):
            search.cost_bounds({"n": 1, "k": 0})

    def test_unbounded_nondet_rejected(self):
        builder = TransitionSystemBuilder("havoc", ["x"])
        builder.transition("l0", "l_out",
                           updates={"x": builder.havoc("x")}, cost=1)
        system = builder.build("l0", "l_out")
        with pytest.raises(InterpreterError, match="bounded"):
            CostSearch(system).cost_bounds({"x": 0})

    def test_negative_costs(self):
        source = """
        proc p(n) {
          assume(1 <= n && n <= 10);
          var i = 0;
          while (i < n) {
            tick(2);
            if (*) { tick(-1); }
            i = i + 1;
          }
        }
        """
        search = CostSearch(load_program(source).system)
        assert search.cost_bounds({"n": 3, "i": 0}) == (3, 6)

    def test_memoization_handles_large_counts(self):
        # 2^20 paths without memoization; instant with it.
        source = """
        proc p(n) {
          assume(20 <= n && n <= 20);
          var i = 0;
          while (i < n) {
            if (*) { tick(1); } else { tick(2); }
            i = i + 1;
          }
        }
        """
        search = CostSearch(load_program(source).system)
        assert search.cost_bounds({"n": 20, "i": 0}) == (20, 40)


class TestSearchMatchesInterpreter:
    def test_random_runs_within_search_bounds(self):
        source = """
        proc p(n, m) {
          assume(1 <= n && n <= 6);
          assume(1 <= m && m <= 6);
          var i = 0;
          var k = 0;
          while (i < n) {
            k = nondet(0, 2);
            tick(k);
            if (*) { tick(1); }
            i = i + 1;
          }
        }
        """
        system = load_program(source).system
        search = CostSearch(system)
        interpreter = Interpreter(system)
        rng = random.Random(11)
        for trial in range(20):
            inputs = {"n": rng.randint(1, 6), "m": rng.randint(1, 6),
                      "i": 0, "k": 0}
            low, high = search.cost_bounds(inputs)
            state = interpreter.initial_state(inputs)
            while not interpreter.is_terminal(state):
                options = interpreter.enabled(state)
                transition = rng.choice(options)
                nondet = {}
                from repro.ts.system import NondetUpdate
                for var, update in transition.updates.items():
                    if isinstance(update, NondetUpdate):
                        nondet[var] = rng.randint(
                            int(update.lower.evaluate(state.values())),
                            int(update.upper.evaluate(state.values())),
                        )
                state = interpreter.apply(state, transition, nondet)
            cost = state["cost"]
            assert low <= cost <= high
