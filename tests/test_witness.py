"""Tests for concrete difference-witness search."""

from repro import load_program
from repro.core.witness import bracket_threshold, find_difference_witness

OLD = """
proc p(n, m) {
  assume(1 <= n && n <= 6);
  assume(1 <= m && m <= 6);
  var i = 0;
  while (i < n) { tick(1); i = i + 1; }
}
"""

NEW = """
proc p(n, m) {
  assume(1 <= n && n <= 6);
  assume(1 <= m && m <= 6);
  var i = 0;
  while (i < n) { tick(m); i = i + 1; }
}
"""


class TestFindWitness:
    def test_best_witness_at_corner(self):
        old = load_program(OLD, name="old")
        new = load_program(NEW, name="new")
        witness = find_difference_witness(old, new)
        assert witness is not None
        # diff = n*m - n, maximal at n = m = 6: 36 - 6 = 30.
        assert witness.difference == 30
        assert witness.inputs["n"] == 6 and witness.inputs["m"] == 6

    def test_early_exit_on_exceed(self):
        old = load_program(OLD, name="old")
        new = load_program(NEW, name="new")
        witness = find_difference_witness(old, new, exceed=0)
        assert witness is not None
        assert witness.difference > 0

    def test_nondeterminism_uses_inf_and_sup(self):
        source = """
        proc p(n) {
          assume(1 <= n && n <= 5);
          var i = 0;
          while (i < n) {
            if (*) { tick(2); } else { tick(1); }
            i = i + 1;
          }
        }
        """
        program_old = load_program(source, name="old")
        program_new = load_program(source, name="new")
        witness = find_difference_witness(program_old, program_new)
        # Same program: CostSup - CostInf = 2n - n = n, max 5.
        assert witness.difference == 5

    def test_str_is_informative(self):
        old = load_program(OLD, name="old")
        new = load_program(NEW, name="new")
        witness = find_difference_witness(old, new)
        text = str(witness)
        assert "new version" in text and "old version" in text


class TestBracket:
    def test_bracket_encloses_truth(self):
        from repro import analyze_diffcost

        old = load_program(OLD, name="old")
        new = load_program(NEW, name="new")
        result = analyze_diffcost(old, new)
        lower, upper = bracket_threshold(old, new, float(result.threshold))
        assert lower == 30
        assert upper >= lower - 1e-6
        # For this pair the analysis is tight (integer costs).
        assert upper < lower + 1
