"""Unit tests for the transition-system data model, builder, validation
and slicing."""

import pytest

from repro.errors import TransitionSystemError
from repro.poly.polynomial import Polynomial
from repro.ts import (
    COST_VAR,
    LinIneq,
    NondetUpdate,
    TransitionSystemBuilder,
    slice_cost_relevant,
    validate_system,
)
from repro.ts.pretty import render_dot, render_text

X = Polynomial.variable("x")


def tiny_system():
    builder = TransitionSystemBuilder("tiny", ["x"])
    builder.assume_init_box({"x": (1, 10)})
    builder.transition("l0", "l1", guard=[LinIneq.geq(X, 1)], cost=X)
    builder.transition("l1", "l_out")
    return builder.build("l0", "l_out")


class TestBuilder:
    def test_cost_variable_added(self):
        system = tiny_system()
        assert COST_VAR in system.variables
        assert COST_VAR not in system.state_variables

    def test_cost_shorthand_builds_update(self):
        system = tiny_system()
        transition = system.transitions[0]
        assert transition.cost_delta() == X

    def test_cost_shorthand_conflicts_with_explicit(self):
        builder = TransitionSystemBuilder("bad", ["x"])
        with pytest.raises(TransitionSystemError):
            builder.transition(
                "l0", "l_out", cost=1,
                updates={COST_VAR: Polynomial.variable(COST_VAR)},
            )

    def test_outgoing_index(self):
        system = tiny_system()
        l0 = system.location_by_name("l0")
        assert len(system.outgoing(l0)) == 1
        assert system.outgoing(system.terminal_location) == ()

    def test_location_lookup_fails_for_unknown(self):
        with pytest.raises(TransitionSystemError):
            tiny_system().location_by_name("nowhere")

    def test_havoc_rejects_cost(self):
        builder = TransitionSystemBuilder("bad", ["x"])
        with pytest.raises(TransitionSystemError):
            builder.havoc(COST_VAR, 0, 1)


class TestValidation:
    def test_valid_system_passes(self):
        validate_system(tiny_system())

    def test_undeclared_update_variable(self):
        builder = TransitionSystemBuilder("bad", ["x"])
        builder.transition("l0", "l_out", updates={"y": X})
        with pytest.raises(TransitionSystemError, match="undeclared"):
            builder.build("l0", "l_out")

    def test_cost_in_guard_rejected(self):
        builder = TransitionSystemBuilder("bad", ["x"])
        builder.transition(
            "l0", "l_out",
            guard=[LinIneq.geq(Polynomial.variable(COST_VAR), 0)],
        )
        with pytest.raises(TransitionSystemError, match="cost"):
            builder.build("l0", "l_out")

    def test_malformed_cost_update_rejected(self):
        builder = TransitionSystemBuilder("bad", ["x"])
        builder.transition(
            "l0", "l_out",
            updates={COST_VAR: 2 * Polynomial.variable(COST_VAR)},
        )
        with pytest.raises(TransitionSystemError, match="cost \\+ delta"):
            builder.build("l0", "l_out")

    def test_nondet_cost_rejected(self):
        builder = TransitionSystemBuilder("bad", ["x"])
        builder.transition(
            "l0", "l_out", updates={COST_VAR: NondetUpdate(None, None)}
        )
        with pytest.raises(TransitionSystemError, match="nondeterministically"):
            builder.build("l0", "l_out")

    def test_theta0_cost_constraint_rejected(self):
        builder = TransitionSystemBuilder("bad", ["x"])
        builder.assume_init(LinIneq.geq(Polynomial.variable(COST_VAR), 0))
        builder.transition("l0", "l_out")
        with pytest.raises(TransitionSystemError, match="Theta0"):
            builder.build("l0", "l_out")

    def test_nonaffine_nondet_bound_rejected(self):
        with pytest.raises(TransitionSystemError, match="affine"):
            NondetUpdate(lower=X * X)


class TestRenameVariables:
    def test_rename(self):
        system = tiny_system().rename_variables({"x": "z"})
        assert "z" in system.variables
        assert "x" not in system.variables
        assert system.transitions[0].cost_delta() == Polynomial.variable("z")

    def test_cost_rename_rejected(self):
        with pytest.raises(TransitionSystemError):
            tiny_system().rename_variables({COST_VAR: "c"})


class TestSlicing:
    def test_irrelevant_variable_removed(self):
        builder = TransitionSystemBuilder("sliced", ["x", "junk"])
        builder.assume_init_box({"x": (1, 5)})
        builder.transition(
            "l0", "l_out", guard=[LinIneq.geq(X, 1)],
            updates={"junk": X + 7}, cost=X,
        )
        system = builder.build("l0", "l_out")
        sliced = slice_cost_relevant(system)
        assert "junk" not in sliced.variables
        assert "x" in sliced.variables

    def test_guard_dependencies_kept(self):
        builder = TransitionSystemBuilder("keep", ["x", "limit"])
        builder.transition(
            "l0", "l_out",
            guard=[LinIneq.less_than(X, Polynomial.variable("limit"))],
            cost=1,
        )
        system = builder.build("l0", "l_out")
        assert set(slice_cost_relevant(system).variables) == \
            set(system.variables)

    def test_transitive_dependencies_kept(self):
        # junk -> feeds y -> feeds cost.
        builder = TransitionSystemBuilder("chain", ["y", "feeder"])
        builder.transition(
            "l0", "l1", updates={"y": Polynomial.variable("feeder")}
        )
        builder.transition("l1", "l_out", cost=Polynomial.variable("y"))
        system = builder.build("l0", "l_out")
        assert "feeder" in slice_cost_relevant(system).variables


class TestPretty:
    def test_render_text_mentions_transitions(self):
        text = render_text(tiny_system())
        assert "l0" in text and "l_out" in text

    def test_render_dot_shape(self):
        dot = render_dot(tiny_system())
        assert dot.startswith("digraph")
        assert "doublecircle" in dot  # terminal location styling
        assert "Theta0" in dot
