"""Chaos tests: the fault-injection layer and the self-healing stack.

The suite holds the engine to ISSUE 8's hard invariant — a seeded
:class:`~repro.faults.FaultPlan` may kill workers mid-run, corrupt
cache entries, delay and transiently fail jobs, and the canonical
report must still come back byte-identical to a fault-free ``--jobs 1``
run.  Retries, supervision and quarantine are all volatile machine
conditions; only wall-clock numbers and retry counters may differ.

The unit layers underneath (plan validation, rule matching, retry
classification, cache corruption handling) are tested directly so a
soak failure localizes quickly.
"""

import json
import os
import time

import pytest

from repro.config import AnalysisConfig, EngineConfig
from repro.engine import AnalysisJob, ParallelExecutor, ResultCache, run_batch
from repro.engine.batch import batch_to_json
from repro.engine.executor import (
    RETRY_BACKOFF_CAP,
    is_retryable,
    retry_backoff,
)
from repro.engine.jobs import JobResult
from repro.faults import (
    FaultPlan,
    FaultPlanError,
    FaultRule,
    activate,
    active_plan,
    load_plan,
    set_plan,
)
from repro.serve import canonical_json

OLD = """
proc count(n) {
  assume(1 <= n && n <= 10);
  var i = 0;
  while (i < n) { tick(1); i = i + 1; }
}
"""
NEW = OLD.replace("tick(1)", "tick(2)")

FAST = AnalysisConfig(degree=1, max_products=1)


def make_job(**overrides):
    payload = dict(kind="diff", old_source=OLD, new_source=NEW,
                   config=FAST, name="count")
    payload.update(overrides)
    return AnalysisJob(**payload)


def bounded_job(name: str, bound: int) -> AnalysisJob:
    """A distinct (own cache key) quick job per ``bound``."""
    old = OLD.replace("n <= 10", f"n <= {bound}")
    return AnalysisJob(kind="diff", old_source=old,
                       new_source=old.replace("tick(1)", "tick(2)"),
                       config=FAST, name=name)


@pytest.fixture(autouse=True)
def no_ambient_plan(monkeypatch):
    """Every test starts (and leaves) with fault injection off."""
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    set_plan(None)
    yield
    set_plan(None)


def env_plan(monkeypatch, tmp_path, plan: dict) -> str:
    """Write ``plan`` to disk and activate it via ``REPRO_FAULTS`` so
    pool *workers* (fresh processes) inherit it too."""
    path = tmp_path / "plan.json"
    path.write_text(json.dumps(plan))
    monkeypatch.setenv("REPRO_FAULTS", str(path))
    return str(path)


class TestFaultPlanValidation:
    def test_unknown_site_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultRule(site="disk.melt")

    def test_bad_bounds_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultRule(site="job.delay", seconds=-1)
        with pytest.raises(FaultPlanError):
            FaultRule(site="worker.crash", times=0)
        with pytest.raises(FaultPlanError):
            FaultRule(site="worker.crash", max_attempts=-1)
        with pytest.raises(FaultPlanError):
            FaultRule(site="cache.corrupt", mode="sparkle")

    def test_unknown_fields_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultRule.from_dict({"site": "worker.crash", "когда": "сейчас"})
        with pytest.raises(FaultPlanError):
            FaultPlan.from_dict({"seed": 1, "rules": [], "extra": True})
        with pytest.raises(FaultPlanError):
            FaultPlan.from_dict({"seed": "not-an-int"})

    def test_load_plan_round_trip_and_errors(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(json.dumps({
            "seed": 7,
            "rules": [{"site": "worker.crash", "name": "ex2*",
                       "max_attempts": 1}],
        }))
        plan = load_plan(str(path))
        assert plan.seed == 7
        assert plan.rules[0].site == "worker.crash"

        (tmp_path / "broken.json").write_text("{not json")
        with pytest.raises(FaultPlanError):
            load_plan(str(tmp_path / "broken.json"))
        with pytest.raises(FaultPlanError):
            load_plan(str(tmp_path / "missing.json"))

    def test_activate_exports_environment(self, tmp_path, monkeypatch):
        path = tmp_path / "plan.json"
        path.write_text(json.dumps({"rules": []}))
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        plan = activate(str(path))
        assert plan.rules == ()
        assert os.environ["REPRO_FAULTS"] == str(path)
        assert active_plan() is not None


class TestRuleMatching:
    def test_name_glob_key_prefix_and_kind(self):
        rule = FaultRule(site="worker.crash", name="ex2[d2*",
                         key_prefix="3f", kind="diff")
        assert rule.matches("worker.crash", "ex2[d2K1]", "3fab", "diff", 0)
        assert not rule.matches("worker.hang", "ex2[d2K1]", "3fab", "diff", 0)
        assert not rule.matches("worker.crash", "ex2[d1K1]", "3fab", "diff", 0)
        assert not rule.matches("worker.crash", "ex2[d2K1]", "9f00", "diff", 0)
        assert not rule.matches("worker.crash", "ex2[d2K1]", "3fab", "bound", 0)

    def test_max_attempts_gates_retries_through(self):
        once = FaultRule(site="job.error", max_attempts=1)
        assert once.matches("job.error", "x", "k", "diff", 0)
        assert not once.matches("job.error", "x", "k", "diff", 1)
        always = FaultRule(site="job.error", max_attempts=0)
        assert always.matches("job.error", "x", "k", "diff", 5)

    def test_times_budget_is_per_plan(self):
        plan = FaultPlan(rules=(FaultRule(site="job.delay", times=2,
                                          max_attempts=0),))
        assert plan.match("job.delay") is not None
        assert plan.match("job.delay") is not None
        assert plan.match("job.delay") is None
        assert plan.fired() == 2

    def test_first_matching_rule_wins(self):
        plan = FaultPlan(rules=(
            FaultRule(site="job.delay", name="a*", seconds=1.0),
            FaultRule(site="job.delay", seconds=2.0),
        ))
        assert plan.match("job.delay", name="alpha").seconds == 1.0
        assert plan.match("job.delay", name="beta").seconds == 2.0

    def test_corruption_bytes_are_seeded_and_keyed(self):
        plan = FaultPlan(seed=2022)
        assert plan.corruption_bytes("k1") == plan.corruption_bytes("k1")
        assert plan.corruption_bytes("k1") != plan.corruption_bytes("k2")
        assert FaultPlan(seed=1).corruption_bytes("k1") \
            != plan.corruption_bytes("k1")


class TestRetryClassification:
    def test_backoff_is_bounded_exponential(self):
        assert [retry_backoff(n) for n in range(5)] \
            == [0.0, 0.05, 0.1, 0.2, 0.4]
        assert retry_backoff(50) == RETRY_BACKOFF_CAP

    def test_transient_failures_are_retryable(self):
        for error_type in ("BrokenWorker", "WorkerHung", "OSError",
                           "InjectedFaultError"):
            result = JobResult(job_key="k", name="j", kind="diff",
                               status="error", error_type=error_type)
            assert is_retryable(result), error_type
        timeout = JobResult(job_key="k", name="j", kind="diff",
                            status="timeout", error_type="JobTimeoutError")
        assert is_retryable(timeout)

    def test_deterministic_failures_are_not(self):
        for error_type in ("AnalysisError", "ParseError", "ValueError"):
            result = JobResult(job_key="k", name="j", kind="diff",
                               status="error", error_type=error_type)
            assert not is_retryable(result), error_type
        assert not is_retryable(JobResult(job_key="k", name="j", kind="diff", status="ok"))


class TestInlineRetry:
    def test_transient_fault_is_retried_to_success(self):
        set_plan(FaultPlan(rules=(
            FaultRule(site="job.error", max_attempts=1),
        )))
        executor = ParallelExecutor(jobs=1, max_retries=2)
        result = executor.run([make_job()])[0]
        assert result.status == "ok"
        assert result.threshold == 10.0
        assert result.attempts == 1
        assert executor.stats.retries == 1
        # The swallowed attempt never reached the error counters.
        assert executor.stats.errors == 0
        assert executor.stats.completed == 1

    def test_retry_budget_exhausts_into_the_original_failure(self):
        set_plan(FaultPlan(rules=(
            FaultRule(site="job.error", max_attempts=0),  # every attempt
        )))
        executor = ParallelExecutor(jobs=1, max_retries=2)
        result = executor.run([make_job()])[0]
        assert result.status == "error"
        assert result.error_type == "InjectedFaultError"
        assert result.attempts == 2
        assert executor.stats.retries == 2
        assert executor.stats.errors == 1

    def test_max_retries_zero_disables_the_layer(self):
        set_plan(FaultPlan(rules=(
            FaultRule(site="job.error", max_attempts=1),
        )))
        executor = ParallelExecutor(jobs=1, max_retries=0)
        result = executor.run([make_job()])[0]
        assert result.status == "error"
        assert result.error_type == "InjectedFaultError"
        assert executor.stats.retries == 0

    def test_deterministic_error_fails_fast_with_original_failure(self):
        # ISSUE 8 acceptance: a non-retryable analysis error must not
        # burn retries — the structured failure surfaces unchanged even
        # with a fault plan active.
        set_plan(FaultPlan(rules=(
            FaultRule(site="job.delay", name="no-such-job", seconds=0.0),
        )))
        executor = ParallelExecutor(jobs=1, max_retries=3)
        result = executor.run([make_job(old_source="proc broken( {")])[0]
        assert result.status == "error"
        assert result.error_type not in (None, "InjectedFaultError")
        assert not is_retryable(result)
        assert result.attempts == 0
        assert executor.stats.retries == 0
        assert executor.stats.errors == 1

    def test_job_delay_only_slows_the_job(self):
        set_plan(FaultPlan(rules=(
            FaultRule(site="job.delay", seconds=0.2, max_attempts=1),
        )))
        executor = ParallelExecutor(jobs=1)
        start = time.perf_counter()
        result = executor.run([make_job()])[0]
        assert time.perf_counter() - start >= 0.2
        assert result.status == "ok"
        assert result.attempts == 0
        assert executor.stats.retries == 0


class TestPoolSupervision:
    def test_worker_crash_is_respawned_and_retried(self, tmp_path,
                                                   monkeypatch):
        env_plan(monkeypatch, tmp_path, {"rules": [
            {"site": "worker.crash", "name": "crashy", "max_attempts": 1},
        ]})
        with ParallelExecutor(jobs=2, max_retries=2) as executor:
            results = executor.run([bounded_job("crashy", 4),
                                    bounded_job("steady", 6)])
            assert [r.status for r in results] == ["ok", "ok"]
            assert results[0].attempts == 1
            assert results[1].attempts == 0
            assert executor.stats.retries == 1
            assert executor.stats.errors == 0
            health = executor.pool_health()
        assert health["crashed"] >= 1
        assert health["respawned"] >= 1
        assert health["quarantined"] == 0

    def test_hung_worker_is_killed_and_job_retried(self, tmp_path,
                                                   monkeypatch):
        # The delay keeps "fine"'s worker busy past the hang kill, so
        # the retry of "wedged" can only run on a *respawned* worker —
        # deterministic whatever the machine speed or cache warmth.
        env_plan(monkeypatch, tmp_path, {"rules": [
            {"site": "worker.hang", "name": "wedged", "seconds": 30.0,
             "max_attempts": 1},
            {"site": "job.delay", "name": "fine", "seconds": 2.0,
             "max_attempts": 0},
        ]})
        with ParallelExecutor(jobs=2, max_retries=2,
                              hang_timeout=0.5) as executor:
            results = executor.run([bounded_job("wedged", 4),
                                    bounded_job("fine", 6)])
            assert [r.status for r in results] == ["ok", "ok"]
            assert results[0].attempts == 1
            assert executor.stats.retries == 1
            health = executor.pool_health()
        assert health["hung"] >= 1
        assert health["respawned"] >= 1

    def test_crash_loop_quarantines_a_slot(self, tmp_path, monkeypatch):
        env_plan(monkeypatch, tmp_path, {"rules": [
            {"site": "worker.crash", "max_attempts": 0},  # every attempt
        ]})
        with ParallelExecutor(jobs=2, max_retries=1,
                              quarantine_after=2) as executor:
            results = executor.run([bounded_job("a", 4),
                                    bounded_job("b", 6),
                                    bounded_job("c", 8)])
            assert all(r.status == "error" for r in results)
            assert all(r.error_type == "BrokenWorker" for r in results)
            assert all(r.attempts == 1 for r in results)
            health = executor.pool_health()
        # Capacity degraded but never to zero: one slot parked, one kept.
        assert health["quarantined"] == 1
        assert health["crashed"] >= 2


class TestCacheCorruptionTolerance:
    def test_torn_write_quarantined_and_reexecuted(self, tmp_path):
        plan = FaultPlan(rules=(
            FaultRule(site="cache.torn_write", times=1, max_attempts=0),
        ))
        set_plan(plan)
        cache = ResultCache(tmp_path / "cache")
        executor = ParallelExecutor(jobs=1, cache=cache)
        first = executor.run([make_job()])[0]
        assert first.status == "ok"
        assert plan.fired() == 1  # the stored entry really was torn

        second = executor.run([make_job()])[0]
        assert second.status == "ok"
        assert not second.cached  # corruption costs one re-execution
        assert second.threshold == first.threshold
        assert cache.corrupted == 1
        corpses = list((tmp_path / "cache").glob("*.corrupt"))
        assert len(corpses) == 1

        third = executor.run([make_job()])[0]
        assert third.cached  # the rewrite (fault budget spent) is clean

    def test_seeded_garbage_is_a_miss_not_a_crash(self, tmp_path):
        plan = FaultPlan(seed=2022, rules=(
            FaultRule(site="cache.corrupt", mode="garbage", times=1,
                      max_attempts=0),
        ))
        set_plan(plan)
        cache = ResultCache(tmp_path / "cache")
        executor = ParallelExecutor(jobs=1, cache=cache)
        executor.run([make_job()])
        result = executor.run([make_job()])[0]
        assert result.status == "ok" and not result.cached
        assert cache.corrupted == 1

    def test_checksum_mismatch_is_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        executor = ParallelExecutor(jobs=1, cache=cache)
        executor.run([make_job()])
        path = cache.path_for(make_job().key)
        entry = json.loads(path.read_text())
        entry["result"]["threshold"] = 999.0  # bit rot, checksum stale
        path.write_text(json.dumps(entry))
        assert cache.get(make_job().key) is None
        assert cache.corrupted == 1
        assert path.with_suffix(".corrupt").exists()

    def test_legacy_entry_without_checksum_is_plain_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        executor = ParallelExecutor(jobs=1, cache=cache)
        executor.run([make_job()])
        path = cache.path_for(make_job().key)
        entry = json.loads(path.read_text())
        del entry["checksum"]
        path.write_text(json.dumps(entry))
        assert cache.get(make_job().key) is None
        assert cache.corrupted == 0  # unverifiable, not corrupt
        assert path.exists()  # left in place for the rewriting store
        # The next run re-executes and rewrites a verifiable entry.
        result = executor.run([make_job()])[0]
        assert not result.cached
        assert "checksum" in json.loads(path.read_text())
        assert executor.run([make_job()])[0].cached

    def test_stale_temps_swept_on_open_fresh_ones_kept(self, tmp_path):
        directory = tmp_path / "cache"
        directory.mkdir()
        for name in (".tmp-dead1.json", ".tmp-dead2.json"):
            stale = directory / name
            stale.write_text("{")
            hour_ago = time.time() - 3600
            os.utime(stale, (hour_ago, hour_ago))
        (directory / ".tmp-live.json").write_text("{}")
        cache = ResultCache(directory)
        assert cache.temp_swept == 2
        remaining = {p.name for p in directory.glob(".tmp-*")}
        assert remaining == {".tmp-live.json"}  # live writer not raced
        assert cache.stats()["temp_swept"] == 2

    def test_merge_skips_corrupt_source_entries(self, tmp_path):
        source = ResultCache(tmp_path / "source")
        ParallelExecutor(jobs=1, cache=source).run([make_job()])
        path = source.path_for(make_job().key)
        entry = json.loads(path.read_text())
        entry["result"]["threshold"] = 999.0
        path.write_text(json.dumps(entry))
        (tmp_path / "source" / "nonsense.json").write_text("}{")
        destination = ResultCache(tmp_path / "destination")
        assert destination.merge_from(tmp_path / "source") == 0
        assert len(destination) == 0
        assert destination.merge_skipped == 2


class TestWarmTierFaults:
    """The warm append-log under the same chaos sites: a torn or
    scribbled record costs one re-execution, and a compaction crash
    (``cache.torn_write`` with ``name="compact"``) never loses a
    verified entry — the pre-compaction log stays published."""

    def test_compaction_crash_never_loses_a_verified_entry(self, tmp_path):
        cache = ResultCache(tmp_path / "cache", backend="warm")
        executor = ParallelExecutor(jobs=1, cache=cache)
        first = executor.run([make_job()])[0]
        assert first.status == "ok"
        assert executor.run([make_job()])[0].cached  # disk-verified

        plan = FaultPlan(rules=(
            FaultRule(site="cache.torn_write", name="compact",
                      times=1, max_attempts=0),
        ))
        set_plan(plan)
        generation = cache.warm.generation
        summary = cache.compact()
        assert plan.fired() == 1
        assert summary["aborted"] == 1  # crashed before publish

        # Nothing was published, nothing was lost: a fresh handle
        # (cold hot tier) still replays the verified entry.
        fresh = ResultCache(tmp_path / "cache", backend="warm")
        assert fresh.warm.generation == generation
        replay = fresh.get(make_job().key)
        assert replay is not None
        assert replay.threshold == first.threshold

        # Fault budget spent: the retried compaction publishes, and the
        # entry survives that too.
        summary = cache.compact()
        assert summary["aborted"] == 0 and summary["kept"] == 1
        assert ResultCache(tmp_path / "cache",
                           backend="warm").get(make_job().key) is not None

    def test_warm_torn_write_costs_one_reexecution(self, tmp_path):
        plan = FaultPlan(rules=(
            FaultRule(site="cache.torn_write", times=1, max_attempts=0),
        ))
        set_plan(plan)
        cache = ResultCache(tmp_path / "cache", backend="warm")
        executor = ParallelExecutor(jobs=1, cache=cache)
        first = executor.run([make_job()])[0]
        assert first.status == "ok"
        assert plan.fired() == 1  # the appended record really was torn

        second = executor.run([make_job()])[0]
        assert second.status == "ok"
        assert not second.cached  # the torn record never replays
        assert second.threshold == first.threshold

        third = executor.run([make_job()])[0]
        assert third.cached  # the rewrite (fault budget spent) is clean

    def test_warm_seeded_garbage_is_quarantined_with_a_corpse(
            self, tmp_path):
        plan = FaultPlan(seed=2022, rules=(
            FaultRule(site="cache.corrupt", mode="garbage", times=1,
                      max_attempts=0),
        ))
        set_plan(plan)
        cache = ResultCache(tmp_path / "cache", backend="warm")
        executor = ParallelExecutor(jobs=1, cache=cache)
        executor.run([make_job()])
        result = executor.run([make_job()])[0]
        assert result.status == "ok" and not result.cached
        assert cache.corrupted == 1
        corpses = list((tmp_path / "cache").glob("*.corrupt"))
        assert len(corpses) == 1  # bit-rot evidence kept for post-mortems
        assert executor.run([make_job()])[0].cached


class TestChaosSoak:
    """The end-to-end invariant: a seeded plan injecting four fault
    kinds (worker crash, transient job error, job delay, torn cache
    write) must not change one canonical report byte."""

    PAIRS = (("alpha", 4), ("beta", 5), ("gamma", 6), ("delta", 7))

    def _write_batch(self, directory):
        directory.mkdir()
        for name, bound in self.PAIRS:
            old = OLD.replace("n <= 10", f"n <= {bound}")
            (directory / f"{name}_old.imp").write_text(old)
            (directory / f"{name}_new.imp").write_text(
                old.replace("tick(1)", "tick(2)"))

    def test_chaos_run_is_byte_identical_to_fault_free(self, tmp_path,
                                                       monkeypatch):
        batch_dir = tmp_path / "batch"
        self._write_batch(batch_dir)

        baseline = run_batch(batch_dir, config=FAST,
                             engine=EngineConfig(jobs=1, cache_dir=None))
        assert baseline.ok
        baseline_bytes = canonical_json(
            json.loads(batch_to_json(baseline)))

        env_plan(monkeypatch, tmp_path, {"seed": 2022, "rules": [
            {"site": "worker.crash", "name": "alpha", "max_attempts": 1,
             "note": "kill alpha's first attempt"},
            {"site": "job.error", "name": "beta", "max_attempts": 1},
            {"site": "job.delay", "name": "gamma", "seconds": 0.05,
             "max_attempts": 1},
            {"site": "cache.torn_write", "name": "delta", "times": 1},
        ]})
        cache_dir = tmp_path / "chaos-cache"
        chaos = run_batch(batch_dir, config=FAST,
                          engine=EngineConfig(jobs=2,
                                              cache_dir=str(cache_dir)))
        assert chaos.ok and not chaos.partial
        # The crash and the injected error were both swallowed by the
        # retry layer in the parent.
        assert chaos.stats.retries >= 2
        assert chaos.stats.errors == 0
        assert canonical_json(json.loads(batch_to_json(chaos))) \
            == baseline_bytes

        # Healing pass over the chewed cache: delta's torn entry is
        # quarantined and re-executed, everything else replays — and
        # the bytes still match.
        healed = run_batch(batch_dir, config=FAST,
                           engine=EngineConfig(jobs=1,
                                               cache_dir=str(cache_dir)))
        assert healed.ok
        assert healed.stats.cache_hits == 3
        assert canonical_json(json.loads(batch_to_json(healed))) \
            == baseline_bytes
        assert len(list(cache_dir.glob("*.corrupt"))) == 1


class TestClusterFaultSites:
    """The PR-9 network/partition sites and the named-rule plan errors."""

    def test_network_sites_are_valid_rules(self):
        for site in ("net.refused", "net.reset", "net.slow",
                     "net.truncated_body", "node.partition"):
            rule = FaultRule(site=site, name="*/analyze")
            assert rule.matches(site, "http://h:1/analyze", "", "", 0)

    def test_unknown_site_error_names_the_rule_and_lists_the_sites(self):
        with pytest.raises(FaultPlanError) as error:
            FaultPlan.from_dict({"seed": 1, "rules": [
                {"site": "net.refused", "name": "*/analyze"},
                {"site": "net.fried", "note": "cut the uplink"},
            ]})
        message = str(error.value)
        # The offender is named by position and note, so a dozen-rule
        # chaos plan fails with a pointer instead of a shrug...
        assert "rule #1 ('cut the uplink')" in message
        assert "'net.fried'" in message
        # ...and the full site menu (old and new) rides along.
        for site in ("worker.crash", "server.drop", "net.refused",
                     "net.truncated_body", "node.partition"):
            assert site in message

    def test_rule_without_note_falls_back_to_name_then_site(self):
        with pytest.raises(FaultPlanError, match=r"rule #0 \('\*/analyze'\)"):
            FaultPlan.from_dict({"rules": [
                {"site": "net.slow", "name": "*/analyze", "seconds": -1},
            ]})
        with pytest.raises(FaultPlanError, match=r"rule #0 \('net.slow'\)"):
            FaultPlan.from_dict({"rules": [
                {"site": "net.slow", "times": 0},
            ]})

    def test_committed_cluster_chaos_plan_loads(self):
        # The plan the cluster-chaos-smoke CI job injects must stay
        # loadable, seeded, and bounded to self-healing transients.
        plan_path = os.path.join(os.path.dirname(__file__), os.pardir,
                                 "examples", "cluster_chaos_plan.json")
        plan = load_plan(plan_path)
        assert plan.seed == 2022
        assert all(rule.site.startswith("net.") for rule in plan.rules)
        assert all(rule.max_attempts == 1 for rule in plan.rules)
