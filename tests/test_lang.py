"""Tests for the `imp` frontend: lexer, parser, typechecker, lowering."""

import pytest

from repro.errors import (
    LexerError,
    LoweringError,
    ParseError,
    TypecheckError,
)
from repro.lang import load_program, parse_program
from repro.lang.lexer import tokenize
from repro.lang.typecheck import check_program
from repro.ts import CostSearch
from repro.ts.system import NondetUpdate


class TestLexer:
    def test_tokens_and_positions(self):
        tokens = tokenize("proc p() {\n  x = 1;\n}")
        assert [t.text for t in tokens[:4]] == ["proc", "p", "(", ")"]
        assert tokens[5].line == 2  # 'x'

    def test_comments_ignored(self):
        tokens = tokenize("x # comment\n// other\ny")
        assert [t.text for t in tokens if t.kind != "eof"] == ["x", "y"]

    def test_multichar_operators(self):
        tokens = tokenize("<= >= == != && || **")
        assert [t.text for t in tokens if t.kind != "eof"] == \
            ["<=", ">=", "==", "!=", "&&", "||", "**"]

    def test_invalid_character(self):
        with pytest.raises(LexerError):
            tokenize("x @ y")


class TestParser:
    def test_full_program_shape(self):
        program = parse_program("""
            proc demo(n, m) {
              assume(1 <= n && n <= 10);
              var i = 0;
              while (i < n) { tick(1); i = i + 1; }
            }
        """)
        assert program.name == "demo"
        assert program.params == ["n", "m"]
        assert len(program.body) == 3

    def test_else_if_chains(self):
        program = parse_program("""
            proc p(x) {
              if (x < 0) { skip; } else if (x < 10) { skip; } else { skip; }
            }
        """)
        outer = program.body[0]
        assert len(outer.else_body) == 1

    def test_boolean_parentheses(self):
        program = parse_program("""
            proc p(x, y) {
              if ((x < 1 || y < 1) && x < y) { skip; }
            }
        """)
        assert program.body

    def test_negation_pushes_inward(self):
        program = parse_program("proc p(x) { if (!(x < 1)) { skip; } }")
        cond = program.body[0].cond
        assert str(cond) == "x >= 1"

    def test_nondet_assignment_forms(self):
        program = parse_program("""
            proc p(x) {
              var k;
              k = nondet();
              k = nondet(0, x);
            }
        """)
        assert program.body[1].lower is None
        assert program.body[2].upper is not None

    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse_program("proc p() { skip }")

    def test_unterminated_block(self):
        with pytest.raises(ParseError):
            parse_program("proc p() { skip;")

    def test_error_carries_position(self):
        with pytest.raises(ParseError) as excinfo:
            parse_program("proc p() {\n  x = ;\n}")
        assert excinfo.value.line == 2

    def test_lexer_error_carries_position(self):
        with pytest.raises(LexerError) as excinfo:
            parse_program("proc p() {\n  ?\n}")
        assert excinfo.value.line == 2


class TestTypecheck:
    def check(self, body: str):
        check_program(parse_program(f"proc p(n) {{ {body} }}"))

    def test_undeclared_variable(self):
        with pytest.raises(TypecheckError, match="undeclared"):
            self.check("x = 1;")

    def test_duplicate_declaration(self):
        with pytest.raises(TypecheckError, match="already declared"):
            self.check("var a = 1; var a = 2;")

    def test_cost_reserved(self):
        with pytest.raises(TypecheckError, match="reserved"):
            self.check("var cost = 0;")
        with pytest.raises(TypecheckError, match="may not be read"):
            self.check("tick(cost);")

    def test_nonaffine_guard_rejected(self):
        with pytest.raises(TypecheckError, match="affine"):
            self.check("if (n * n < 4) { skip; }")

    def test_nonaffine_tick_allowed(self):
        self.check("tick(n * n);")

    def test_star_only_in_branch_conditions(self):
        with pytest.raises(TypecheckError):
            self.check("assume(*);")
        with pytest.raises(TypecheckError, match="'\\*'"):
            self.check("if (* && n < 1) { skip; }")

    def test_invariant_position_enforced(self):
        with pytest.raises(TypecheckError, match="start of a loop body"):
            self.check("invariant(n >= 0);")
        self.check("while (n > 0) { invariant(n >= 1); n = n - 1; }")

    def test_invariant_must_be_conjunction(self):
        with pytest.raises(TypecheckError, match="conjunction"):
            self.check(
                "while (n > 0) { invariant(n >= 1 || n <= 5); n = n - 1; }"
            )


class TestLowering:
    def test_join_structure_matches_paper_fig2(self):
        # Same shape as Appendix A: entry, outer head, inner head, exit.
        lowered = load_program("""
            proc join(lenA, lenB) {
              assume(1 <= lenA && lenA <= 100);
              assume(1 <= lenB && lenB <= 100);
              var i = 0;
              var j = 0;
              while (i < lenA) {
                j = 0;
                while (j < lenB) { tick(1); j = j + 1; }
                i = i + 1;
              }
            }
        """)
        system = lowered.system
        assert len(system.locations) == 4  # l0, outer, inner, l_out
        assert set(system.variables) == {"lenA", "lenB", "i", "j", "cost"}

    def test_leading_assumes_become_theta0(self):
        system = load_program("""
            proc p(n) { assume(1 <= n && n <= 9); tick(n); }
        """).system
        assert any("n" in str(c) for c in system.init_constraint)

    def test_declared_vars_zero_initialized_in_theta0(self):
        system = load_program("proc p(n) { var i = 0; tick(1); }").system
        from repro.ts.guards import all_hold

        assert all_hold(system.init_constraint, {"n": 0, "i": 0})
        assert not all_hold(system.init_constraint, {"n": 0, "i": 1})

    def test_straightline_fuses_to_one_transition(self):
        system = load_program("""
            proc p(n) { var a = n + 1; var b = a * a; tick(b); }
        """).system
        assert len(system.transitions) == 1
        # b's update reads through a's pending update: (n+1)^2.
        transition = system.transitions[0]
        update = transition.updates["b"]
        assert update.evaluate({"n": 3, "a": 0, "b": 0}) == 16

    def test_nondet_read_forces_materialization(self):
        system = load_program("""
            proc p(n) {
              var k = 0;
              k = nondet(0, n);
              tick(k);
            }
        """).system
        assert len(system.transitions) == 2  # havoc, then read

    def test_if_star_duplicates_frontier(self):
        system = load_program("""
            proc p(n) { if (*) { tick(1); } else { tick(2); } }
        """).system
        costs = sorted(
            int(t.cost_delta().constant_term) for t in system.transitions
        )
        assert costs == [1, 2]

    def test_disjunctive_guard_splits_transitions(self):
        system = load_program("""
            proc p(n) {
              var i = 0;
              while (i < n || i < 5) { tick(1); i = i + 1; }
            }
        """).system
        loop_entries = [
            t for t in system.transitions if t.cost_delta() != 0
        ]
        assert len(loop_entries) == 2

    def test_invariant_hints_attached_to_loop_head(self):
        lowered = load_program("""
            proc p(n) {
              assume(1 <= n && n <= 5);
              var i = 0;
              while (i < n) {
                invariant(i >= 0 && i <= n);
                tick(1);
                i = i + 1;
              }
            }
        """)
        assert len(lowered.invariant_hints) == 1
        (hints,) = lowered.invariant_hints.values()
        assert len(hints) == 2

    def test_while_star(self):
        system = load_program("""
            proc p(n) {
              var i = 0;
              while (*) {
                assume(i < n);
                tick(1);
                i = i + 1;
              }
            }
        """).system
        search = CostSearch(system)
        low, high = search.cost_bounds({"n": 3, "i": 0})
        assert (low, high) == (0, 3)

    def test_equality_guard(self):
        system = load_program("""
            proc p(n) { if (n == 3) { tick(1); } }
        """).system
        search = CostSearch(system)
        assert search.cost_bounds({"n": 3}) == (1, 1)
        assert search.cost_bounds({"n": 2}) == (0, 0)

    def test_not_equal_guard(self):
        system = load_program("""
            proc p(n) { if (n != 3) { tick(1); } }
        """).system
        search = CostSearch(system)
        assert search.cost_bounds({"n": 3}) == (0, 0)
        assert search.cost_bounds({"n": 5}) == (1, 1)

    def test_semantics_join_cost(self):
        old = load_program("""
            proc join(lenA, lenB) {
              assume(1 <= lenA && lenA <= 100);
              assume(1 <= lenB && lenB <= 100);
              var i = 0;
              var j = 0;
              while (i < lenA) {
                j = 0;
                while (j < lenB) { tick(1); j = j + 1; }
                i = i + 1;
              }
            }
        """)
        search = CostSearch(old.system)
        for lena, lenb in [(1, 1), (2, 5), (4, 3)]:
            inputs = {"lenA": lena, "lenB": lenb, "i": 0, "j": 0}
            assert search.cost_bounds(inputs) == (lena * lenb, lena * lenb)

    def test_load_program_from_file(self, tmp_path):
        path = tmp_path / "prog.imp"
        path.write_text("proc p(n) { tick(n); }")
        lowered = load_program(str(path))
        assert lowered.system.name == "p"


class TestForLoops:
    def test_for_desugars_to_while(self):
        system = load_program("""
            proc p(n) {
              assume(1 <= n && n <= 8);
              for (i = 0; i < n; i = i + 1) { tick(2); }
            }
        """).system
        assert CostSearch(system).cost_bounds({"n": 5, "i": 0}) == (10, 10)

    def test_for_variable_is_declared_by_init(self):
        from repro.errors import TypecheckError

        with pytest.raises(TypecheckError, match="already declared"):
            load_program("""
                proc p(n) {
                  var i = 0;
                  for (i = 0; i < n; i = i + 1) { skip; }
                }
            """)

    def test_nested_for(self):
        system = load_program("""
            proc p(n, m) {
              assume(1 <= n && n <= 5);
              assume(1 <= m && m <= 5);
              for (i = 0; i < n; i = i + 1) {
                for (j = 0; j < m; j = j + 1) { tick(1); }
              }
            }
        """).system
        bounds = CostSearch(system).cost_bounds({"n": 3, "m": 4, "i": 0, "j": 0})
        assert bounds == (12, 12)

    def test_nested_for_reuses_inner_name(self):
        # The inner for re-declares j on every textual occurrence; two
        # sibling fors must therefore use distinct names.
        from repro.errors import TypecheckError

        with pytest.raises(TypecheckError, match="already declared"):
            load_program("""
                proc p(n) {
                  for (i = 0; i < n; i = i + 1) { skip; }
                  for (i = 0; i < n; i = i + 1) { skip; }
                }
            """)

    def test_for_step_may_update_other_variable(self):
        system = load_program("""
            proc p(n) {
              assume(1 <= n && n <= 6);
              var total = 0;
              for (i = 0; i < n; total = total + 1) {
                i = i + 1;
                tick(1);
              }
            }
        """).system
        assert CostSearch(system).cost_bounds(
            {"n": 4, "i": 0, "total": 0}
        ) == (4, 4)
