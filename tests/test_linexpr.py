"""Unit and property tests for affine expressions."""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import PolynomialError
from repro.poly.linexpr import AffineExpr
from repro.poly.polynomial import Polynomial

A = AffineExpr.variable("a")
B = AffineExpr.variable("b")


class TestAffineExprBasics:
    def test_zero(self):
        assert AffineExpr.zero().is_zero()
        assert AffineExpr.zero().is_constant()

    def test_constant(self):
        expr = AffineExpr.constant(Fraction(3, 2))
        assert expr.constant_term == Fraction(3, 2)
        assert expr.is_constant()

    def test_coefficients_normalized(self):
        expr = AffineExpr({"a": 0, "b": 2})
        assert expr.symbols == frozenset({"b"})

    def test_coefficient_lookup(self):
        expr = 2 * A - B
        assert expr.coefficient("a") == 2
        assert expr.coefficient("b") == -1
        assert expr.coefficient("missing") == 0


class TestAffineExprArithmetic:
    def test_add_sub(self):
        assert (A + B) - B == A

    def test_scalar_multiplication(self):
        assert 2 * A == A + A
        assert A * Fraction(1, 2) == A.scale(Fraction(1, 2))

    def test_right_subtraction(self):
        assert (3 - A).constant_term == 3
        assert (3 - A).coefficient("a") == -1

    def test_negation(self):
        assert -(A - B) == B - A


class TestAffineExprEvaluation:
    def test_evaluate(self):
        assert (A - 2 * B + 3).evaluate({"a": 1, "b": 2}) == 0

    def test_evaluate_partial(self):
        partial = (A + B + 1).evaluate_partial({"a": 2})
        assert partial == B + 3

    def test_rename_merges(self):
        assert (A + B).rename({"a": "b"}) == 2 * B


class TestAffineExprConversions:
    def test_to_polynomial_roundtrip(self):
        expr = 2 * A - B + 5
        assert AffineExpr.from_polynomial(expr.to_polynomial()) == expr

    def test_from_polynomial_rejects_nonaffine(self):
        x = Polynomial.variable("x")
        with pytest.raises(PolynomialError):
            AffineExpr.from_polynomial(x * x)


symbols = st.sampled_from(["a", "b", "c"])


@st.composite
def affine_exprs(draw):
    coeffs = draw(st.dictionaries(symbols, st.integers(-5, 5), max_size=3))
    return AffineExpr(coeffs, draw(st.integers(-5, 5)))


@settings(max_examples=60, deadline=None)
@given(affine_exprs(), affine_exprs())
def test_vector_space_laws(x, y):
    assert x + y == y + x
    assert x - x == AffineExpr.zero()
    assert (x + y).scale(2) == x.scale(2) + y.scale(2)


@settings(max_examples=60, deadline=None)
@given(affine_exprs(),
       st.dictionaries(symbols, st.integers(-5, 5), min_size=3, max_size=3))
def test_evaluation_linear(x, point):
    assert x.scale(3).evaluate(point) == 3 * x.evaluate(point)
    assert x.to_polynomial().evaluate(point) == x.evaluate(point)
