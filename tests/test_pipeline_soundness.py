"""End-to-end soundness on a family of structurally diverse pairs.

For every pair: run the full analysis; when a threshold is produced,
verify against the exhaustive interpreter that (a) the threshold
dominates the true maximal difference on a small input box, and (b) the
certificates bound the true costs pointwise.  This is the strongest
property the library promises (Theorem 4.2 instantiated), checked on
programs exercising branching, nondeterminism, nested and sequential
loops, down-counting, non-affine assignments and negative costs.
"""

import itertools

import pytest

from repro import analyze_diffcost, load_program
from repro.ts import CostSearch
from repro.ts.guards import all_hold

BOX = "assume(1 <= n && n <= 4); assume(1 <= m && m <= 4);"

FAMILY = {
    "branching": (
        f"proc p(n, m) {{ {BOX} var i = 0;"
        "  while (i < n) { if (i < m) { tick(1); } else { tick(2); }"
        "  i = i + 1; } }",
        f"proc p(n, m) {{ {BOX} var i = 0;"
        "  while (i < n) { tick(2); i = i + 1; } }",
    ),
    "nondet_branch": (
        f"proc p(n, m) {{ {BOX} var i = 0;"
        "  while (i < n) { if (*) { tick(1); } i = i + 1; } }",
        f"proc p(n, m) {{ {BOX} var i = 0;"
        "  while (i < n) { tick(1); if (*) { tick(1); } i = i + 1; } }",
    ),
    "nondet_assign": (
        f"proc p(n, m) {{ {BOX} var k = 0; k = nondet(0, m); tick(k); }}",
        f"proc p(n, m) {{ {BOX} var k = 0; k = nondet(1, m + 1); tick(k); }}",
    ),
    "nested_vs_flat": (
        f"proc p(n, m) {{ {BOX} var i = 0; var j = 0;"
        "  while (i < n) { j = 0; while (j < m) { tick(1); j = j + 1; }"
        "  i = i + 1; } }",
        f"proc p(n, m) {{ {BOX} var q = 0; var k = 0; q = n * m;"
        "  while (k < q) { tick(1); k = k + 1; } tick(1); }",
    ),
    "direction_flip": (
        f"proc p(n, m) {{ {BOX} var i = 0;"
        "  while (i < n) { tick(1); i = i + 1; } }",
        f"proc p(n, m) {{ {BOX} var i = n;"
        "  while (i > 0) { tick(2); i = i - 1; } }",
    ),
    "negative_costs": (
        f"proc p(n, m) {{ {BOX} var i = 0;"
        "  while (i < n) { tick(2); tick(-1); i = i + 1; } }",
        f"proc p(n, m) {{ {BOX} var i = 0;"
        "  while (i < n) { tick(3); if (*) { tick(-1); } i = i + 1; } }",
    ),
    "sequential": (
        f"proc p(n, m) {{ {BOX} var i = 0; var j = 0;"
        "  while (i < n) { tick(1); i = i + 1; }"
        "  while (j < m) { j = j + 1; } }",
        f"proc p(n, m) {{ {BOX} var i = 0; var j = 0;"
        "  while (i < n) { tick(1); i = i + 1; }"
        "  while (j < m) { tick(1); j = j + 1; } }",
    ),
}


def true_max_difference(old_system, new_system) -> int:
    old_search = CostSearch(old_system)
    new_search = CostSearch(new_system)
    best = None
    for n, m in itertools.product(range(1, 5), repeat=2):
        probe = {"n": n, "m": m, "cost": 0}
        probe.update({v: 0 for v in old_system.state_variables
                      if v not in probe})
        probe.update({v: 0 for v in new_system.state_variables
                      if v not in probe})
        if not all_hold(old_system.init_constraint, probe):
            continue
        old_inputs = {v: probe[v] for v in old_system.state_variables}
        new_inputs = {v: probe[v] for v in new_system.state_variables}
        old_inf, _ = old_search.cost_bounds(old_inputs)
        _, new_sup = new_search.cost_bounds(new_inputs)
        diff = new_sup - old_inf
        best = diff if best is None else max(best, diff)
    return best


@pytest.mark.parametrize("name", sorted(FAMILY))
def test_threshold_sound_and_certificates_valid(name):
    old_source, new_source = FAMILY[name]
    old = load_program(old_source, name=f"{name}_old")
    new = load_program(new_source, name=f"{name}_new")
    result = analyze_diffcost(old, new)
    assert result.is_threshold, f"{name}: {result.message}"

    truth = true_max_difference(old.system, new.system)
    assert float(result.threshold) >= truth - 1e-6, (
        f"{name}: threshold {result.threshold} below true max diff {truth}"
    )

    # Pointwise certificate validity on every box input.
    old_search = CostSearch(old.system)
    new_search = CostSearch(new.system)
    for n, m in itertools.product(range(1, 5), repeat=2):
        old_inputs = {v: {"n": n, "m": m}.get(v, 0)
                      for v in old.system.state_variables}
        new_inputs = {v: {"n": n, "m": m}.get(v, 0)
                      for v in new.system.state_variables}
        probe = dict(old_inputs)
        probe["cost"] = 0
        if not all_hold(old.system.init_constraint, probe):
            continue
        old_inf, _ = old_search.cost_bounds(old_inputs)
        _, new_sup = new_search.cost_bounds(new_inputs)
        phi = float(result.potential_new.initial_value(new_inputs))
        chi = float(result.anti_potential_old.initial_value(old_inputs))
        assert phi >= new_sup - 1e-6
        assert chi <= old_inf + 1e-6


@pytest.mark.parametrize("name", ["branching", "direction_flip", "sequential"])
def test_reverse_direction_also_sound(name):
    """Swapping old and new must still give a sound (negative-or-zero
    capable) threshold."""
    old_source, new_source = FAMILY[name]
    old = load_program(new_source, name="swapped_old")
    new = load_program(old_source, name="swapped_new")
    result = analyze_diffcost(old, new)
    assert result.is_threshold
    truth = true_max_difference(old.system, new.system)
    assert float(result.threshold) >= truth - 1e-6
