"""Tests for the three companion analyses: symbolic polynomial bounds
(Section 5), threshold refutation (Theorem 4.3 / Example 4.4) and
single-program precision guarantees (Section 7)."""

import pytest

from repro import (
    AnalysisConfig,
    analyze_single_program,
    load_program,
    parse_polynomial,
    prove_symbolic_bound,
    refute_threshold,
)
from repro.bench.suite import JOIN_NEW_SOURCE, JOIN_OLD_SOURCE
from repro.core.results import AnalysisStatus
from repro.errors import AnalysisError
from repro.ts import CostSearch


@pytest.fixture(scope="module")
def join_pair():
    old = load_program(JOIN_OLD_SOURCE, name="join_old")
    new = load_program(JOIN_NEW_SOURCE, name="join_new")
    return old, new


class TestSymbolicBounds:
    def test_join_bounded_by_lenA_lenB(self, join_pair):
        # Example 2.3: the difference is exactly lenA * lenB.
        old, new = join_pair
        bound = parse_polynomial("lenA * lenB")
        result = prove_symbolic_bound(old, new, bound)
        assert result.is_proved
        assert result.potential_new is not None

    def test_join_not_bounded_by_smaller_polynomial(self, join_pair):
        old, new = join_pair
        result = prove_symbolic_bound(
            old, new, parse_polynomial("lenA * lenB - 1")
        )
        assert result.status is AnalysisStatus.UNKNOWN

    def test_join_loose_bound_also_proved(self, join_pair):
        old, new = join_pair
        result = prove_symbolic_bound(
            old, new, parse_polynomial("2 * lenA * lenB")
        )
        assert result.is_proved

    def test_symbolic_bound_on_unbounded_inputs(self):
        # This is where symbolic bounds shine: no bound on n, yet the
        # relational bound 2n holds.
        old = load_program("""
        proc p(n) {
          assume(1 <= n);
          var i = 0;
          while (i < n) { tick(1); i = i + 1; }
        }
        """, name="old")
        new = load_program("""
        proc p(n) {
          assume(1 <= n);
          var i = 0;
          while (i < n) { tick(3); i = i + 1; }
        }
        """, name="new")
        result = prove_symbolic_bound(old, new, parse_polynomial("2 * n"))
        assert result.is_proved

    def test_degree_check(self, join_pair):
        old, new = join_pair
        config = AnalysisConfig(degree=1)
        with pytest.raises(AnalysisError, match="degree"):
            prove_symbolic_bound(
                old, new, parse_polynomial("lenA * lenB"), config
            )

    def test_unknown_variable_rejected(self, join_pair):
        old, new = join_pair
        with pytest.raises(AnalysisError, match="unknown"):
            prove_symbolic_bound(old, new, parse_polynomial("zz + 1"))


class TestRefutation:
    def test_example_4_4_refutes_9999(self, join_pair):
        old, new = join_pair
        result = refute_threshold(old, new, 9999)
        assert result.is_refuted
        assert float(result.guaranteed_difference) >= 10000 - 1e-4
        assert result.witness_input["lenA"] == 100
        assert result.witness_input["lenB"] == 100

    def test_valid_threshold_not_refuted(self, join_pair):
        old, new = join_pair
        result = refute_threshold(old, new, 10000)
        assert not result.is_refuted

    def test_refutes_much_smaller_thresholds(self, join_pair):
        old, new = join_pair
        result = refute_threshold(old, new, 0)
        assert result.is_refuted

    def test_explicit_witness(self, join_pair):
        old, new = join_pair
        witness = {"lenA": 10, "lenB": 10, "i": 0, "j": 0}
        result = refute_threshold(old, new, 99, witnesses=[witness])
        assert result.is_refuted
        assert float(result.guaranteed_difference) >= 100 - 1e-4

    def test_certificates_returned(self, join_pair):
        old, new = join_pair
        result = refute_threshold(old, new, 9999)
        assert result.anti_potential_new is not None
        assert result.potential_old is not None
        # chi_new is an anti-PF of the NEW system (Theorem 4.3).
        assert result.anti_potential_new.system.name == "join_new"


class TestSingleProgramPrecision:
    def test_deterministic_program_zero_gap(self):
        program = load_program("""
        proc p(n) {
          assume(1 <= n && n <= 10);
          var i = 0;
          while (i < n) { tick(1); i = i + 1; }
        }
        """)
        result = analyze_single_program(program)
        assert result.is_bounded
        assert float(result.precision) == pytest.approx(0, abs=1e-5)
        low, high = result.bounds_at({"n": 7, "i": 0})
        assert float(low) == pytest.approx(7, abs=1e-5)
        assert float(high) == pytest.approx(7, abs=1e-5)

    def test_nondeterministic_gap_matches_true_spread(self):
        program = load_program("""
        proc p(n) {
          assume(1 <= n && n <= 10);
          var i = 0;
          while (i < n) {
            if (*) { tick(2); } else { tick(1); }
            i = i + 1;
          }
        }
        """)
        result = analyze_single_program(program)
        assert result.is_bounded
        # CostSup - CostInf = n <= 10; Theorem 7.1's p bounds it.
        assert float(result.precision) >= 10 - 1e-5
        search = CostSearch(program.system)
        for n in (1, 4, 7):
            low, high = result.bounds_at({"n": n, "i": 0})
            true_low, true_high = search.cost_bounds({"n": n, "i": 0})
            assert float(low) <= true_low + 1e-6
            assert float(high) >= true_high - 1e-6
            assert float(high) - float(low) <= float(result.precision) + 1e-6

    def test_quadratic_program(self):
        program = load_program("""
        proc p(n, m) {
          assume(1 <= n && n <= 10);
          assume(1 <= m && m <= 10);
          var i = 0;
          var j = 0;
          while (i < n) {
            j = 0;
            while (j < m) { tick(1); j = j + 1; }
            i = i + 1;
          }
        }
        """)
        result = analyze_single_program(program)
        assert result.is_bounded
        assert float(result.precision) == pytest.approx(0, abs=1e-4)
        low, high = result.bounds_at({"n": 6, "m": 7, "i": 0, "j": 0})
        assert float(low) == pytest.approx(42, abs=1e-4)

    def test_failure_reported_as_unknown(self):
        program = load_program("""
        proc p(n) {
          assume(1 <= n);
          var i = 0;
          while (i < n) {
            if (i < 2) { tick(2); } else { tick(1); }
            i = i + 1;
          }
        }
        """)
        result = analyze_single_program(program)
        assert result.status is AnalysisStatus.UNKNOWN
