"""Tests for the LP perf harness and the ``perf`` CLI subcommand."""

import json

import pytest

from repro.bench.perf import (
    DEFAULT_PERF_BACKENDS,
    DEFAULT_PERF_PAIRS,
    build_lp_model,
    format_perf_table,
    run_lp_perf,
    write_bench_json,
)
from repro.cli import main
from repro.errors import AnalysisError

BACKENDS = ("exact", "exact-warm", "scipy")


class TestRunLpPerf:
    def test_report_shape_and_agreement(self, tmp_path):
        report = run_lp_perf(names=["simple_single"], backends=BACKENDS)
        assert report["schema"] == 1
        assert report["backends"] == list(BACKENDS)
        assert report["lp_solver_revision"] >= 2
        (row,) = report["rows"]
        assert row["pair"] == "simple_single"
        assert row["agree"] is True
        assert row["lp_variables"] > 0 and row["lp_constraints"] > 0
        for name in BACKENDS:
            entry = row["backends"][name]
            assert entry["seconds"] >= 0
            assert entry["status"] == "optimal"
            assert "_solution" not in entry
        # Exact backends serialize Fractions as strings; identical here.
        assert (row["backends"]["exact"]["objective"]
                == row["backends"]["exact-warm"]["objective"])
        # The warm backend must report which path it took.
        assert (row["backends"]["exact-warm"]["stats"]["path"]
                in ("certified", "resumed", "fallback"))
        summary = report["summary"]
        assert summary["disagreements"] == 0
        assert set(summary["seconds_total"]) == set(BACKENDS)

        path = tmp_path / "BENCH_lp.json"
        write_bench_json(report, str(path))
        on_disk = json.loads(path.read_text())
        assert on_disk["summary"]["disagreements"] == 0

        table = format_perf_table(report)
        assert "simple_single" in table and "yes" in table

    def test_speedup_vs_dense_reported(self):
        report = run_lp_perf(names=["dis2"],
                             backends=("exact-dense", "exact-warm"))
        assert "speedup_vs_dense" in report["summary"]
        assert report["summary"]["speedup_vs_dense"]["exact-warm"] > 1

    def test_unknown_pair_rejected(self):
        with pytest.raises(AnalysisError):
            run_lp_perf(names=["no_such_pair"], backends=("exact",))

    def test_defaults_are_valid(self):
        from repro.bench.suite import SUITE
        from repro.lp import available_backends

        suite_names = {pair.name for pair in SUITE}
        assert set(DEFAULT_PERF_PAIRS) <= suite_names
        assert set(DEFAULT_PERF_BACKENDS) <= set(available_backends())

    def test_build_lp_model_minimizes_threshold(self):
        model = build_lp_model("simple_single")
        assert model.objective is not None
        assert "t" in model.variable_names


class TestPerfCli:
    def test_perf_subcommand_writes_report(self, tmp_path, capsys):
        out = tmp_path / "BENCH_lp.json"
        code = main([
            "perf", "--names", "simple_single",
            "--backends", "exact,exact-warm", "--output", str(out),
        ])
        assert code == 0
        report = json.loads(out.read_text())
        assert report["summary"]["disagreements"] == 0
        assert {r["pair"] for r in report["rows"]} == {"simple_single"}
        captured = capsys.readouterr().out
        assert "wrote" in captured
