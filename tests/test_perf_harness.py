"""Tests for the LP perf harness and the ``perf`` CLI subcommand."""

import json

import pytest

from repro.bench.perf import (
    DEFAULT_PERF_BACKENDS,
    DEFAULT_PERF_PAIRS,
    build_lp_model,
    compare_reports,
    format_perf_table,
    run_lp_perf,
    run_refutation_batch,
    write_bench_json,
)
from repro.cli import main
from repro.errors import AnalysisError

BACKENDS = ("exact", "exact-warm", "scipy")


class TestRunLpPerf:
    def test_report_shape_and_agreement(self, tmp_path):
        report = run_lp_perf(names=["simple_single"], backends=BACKENDS)
        assert report["schema"] == 3
        assert report["backends"] == list(BACKENDS)
        assert report["lp_solver_revision"] >= 2
        (row,) = report["rows"]
        assert row["pair"] == "simple_single"
        assert row["agree"] is True
        assert row["lp_variables"] > 0 and row["lp_constraints"] > 0
        for name in BACKENDS:
            entry = row["backends"][name]
            assert entry["seconds"] >= 0
            assert entry["status"] == "optimal"
            assert "_solution" not in entry
        # Exact backends serialize Fractions as strings; identical here.
        assert (row["backends"]["exact"]["objective"]
                == row["backends"]["exact-warm"]["objective"])
        # The warm backend must report which path it took.
        assert (row["backends"]["exact-warm"]["stats"]["path"]
                in ("certified", "resumed", "fallback"))
        summary = report["summary"]
        assert summary["disagreements"] == 0
        assert set(summary["seconds_total"]) == set(BACKENDS)

        # Phase profile: exact solvers attribute wall time to named
        # phases; scipy has no phase timers and must not appear.
        profile = report["profile"]
        assert "exact" in profile["phases"]
        assert "exact-warm" in profile["phases"]
        assert "scipy" not in profile["phases"]
        assert "pricing" in profile["phases"]["exact"]
        assert "refactor" in profile["phases"]["exact"]
        for unit in profile["phases"]:
            assert profile["tracked_seconds"][unit] >= 0
            assert profile["accounted_fraction"][unit] > 0

        path = tmp_path / "BENCH_lp.json"
        write_bench_json(report, str(path))
        on_disk = json.loads(path.read_text())
        assert on_disk["summary"]["disagreements"] == 0

        table = format_perf_table(report)
        assert "simple_single" in table and "yes" in table

    def test_speedup_vs_dense_reported(self):
        report = run_lp_perf(names=["dis2"],
                             backends=("exact-dense", "exact-warm"),
                             refutation=False)
        assert "speedup_vs_dense" in report["summary"]
        assert report["summary"]["speedup_vs_dense"]["exact-warm"] > 1
        assert "refutation" not in report

    def test_unknown_pair_rejected(self):
        with pytest.raises(AnalysisError):
            run_lp_perf(names=["no_such_pair"], backends=("exact",))

    def test_defaults_are_valid(self):
        from repro.bench.suite import SUITE
        from repro.lp import available_backends

        suite_names = {pair.name for pair in SUITE}
        assert set(DEFAULT_PERF_PAIRS) <= suite_names
        assert set(DEFAULT_PERF_BACKENDS) <= set(available_backends())

    def test_build_lp_model_minimizes_threshold(self):
        model = build_lp_model("simple_single")
        assert model.objective is not None
        assert "t" in model.variable_names


class TestRefutationBatch:
    def test_incremental_vs_cold_section(self):
        section = run_refutation_batch(names=["dis2"])
        (row,) = section["rows"]
        assert row["pair"] == "dis2"
        assert row["agree"] is True
        assert row["witnesses"] >= 3
        assert row["gap"] is not None
        for variant in ("incremental", "cold"):
            assert row[variant]["seconds"] >= 0
            assert "_result" not in row[variant]
        # The headline counters the acceptance gate reads.
        assert (row["cold"]["factorizations"]
                >= 3 * row["incremental"]["factorizations"])
        summary = section["summary"]
        assert summary["disagreements"] == 0
        assert summary["factorization_ratio"] >= 3
        assert set(summary["factorizations_total"]) == {
            "incremental", "cold"
        }

    def test_unknown_pair_rejected(self):
        with pytest.raises(AnalysisError):
            run_refutation_batch(names=["no_such_pair"])


class TestCompareReports:
    @staticmethod
    def _report(backend_seconds, refute_inc=0.5, refute_cold=1.0,
                disagreements=0):
        return {
            "summary": {
                "seconds_total": dict(backend_seconds),
                "disagreements": disagreements,
            },
            "refutation": {
                "rows": [
                    {
                        "pair": "dis2",
                        "incremental": {"seconds": refute_inc},
                        "cold": {"seconds": refute_cold},
                    }
                ],
                "summary": {
                    "seconds_total": {
                        "incremental": refute_inc, "cold": refute_cold,
                    },
                    "disagreements": 0,
                },
            },
        }

    def test_clean_pass(self):
        baseline = self._report({"exact": 1.0})
        current = self._report({"exact": 1.4})
        assert compare_reports(baseline, current) == []

    def test_timing_regression_detected(self):
        baseline = self._report({"exact": 1.0})
        current = self._report({"exact": 2.5})
        failures = compare_reports(baseline, current)
        assert len(failures) == 1
        assert "backend:exact" in failures[0]

    def test_refutation_regression_detected(self):
        baseline = self._report({"exact": 1.0}, refute_inc=0.2)
        current = self._report({"exact": 1.0}, refute_inc=0.9)
        failures = compare_reports(baseline, current)
        assert any("refutation:dis2:incremental" in f for f in failures)

    def test_noise_floor_and_new_entries_skipped(self):
        baseline = self._report({"exact": 0.001})
        current = self._report({"exact": 0.004, "exact-warm": 9.0})
        # 4x on a sub-noise timing and a backend absent from the
        # baseline must both pass.
        assert compare_reports(baseline, current) == []

    def test_disagreements_always_fail(self):
        baseline = self._report({"exact": 1.0})
        current = self._report({"exact": 1.0}, disagreements=1)
        failures = compare_reports(baseline, current)
        assert failures and "disagreement" in failures[0]


class TestPerfCli:
    def test_perf_subcommand_writes_report(self, tmp_path, capsys):
        out = tmp_path / "BENCH_lp.json"
        code = main([
            "perf", "--names", "simple_single",
            "--backends", "exact,exact-warm", "--output", str(out),
        ])
        assert code == 0
        report = json.loads(out.read_text())
        assert report["summary"]["disagreements"] == 0
        assert {r["pair"] for r in report["rows"]} == {"simple_single"}
        assert report["refutation"]["rows"][0]["agree"] is True
        captured = capsys.readouterr().out
        assert "wrote" in captured
        assert "refutation batch" in captured

    def test_perf_baseline_gate(self, tmp_path, capsys):
        out = tmp_path / "BENCH_lp.json"
        code = main([
            "perf", "--names", "simple_single",
            "--backends", "exact,exact-warm", "--output", str(out),
        ])
        assert code == 0
        # The report it just wrote is a passing baseline for itself.
        rerun = tmp_path / "BENCH_lp2.json"
        code = main([
            "perf", "--names", "simple_single",
            "--backends", "exact,exact-warm", "--output", str(rerun),
            "--baseline", str(out),
        ])
        assert code == 0
        assert "baseline ok" in capsys.readouterr().out

    def test_perf_baseline_gate_fails_on_regression(self, tmp_path,
                                                    capsys):
        out = tmp_path / "BENCH_lp.json"
        assert main([
            "perf", "--names", "dis2",
            "--backends", "exact-dense", "--no-refutation",
            "--output", str(out),
        ]) == 0
        baseline = json.loads(out.read_text())
        # Shrink the baseline timing to (sub-floor) nothing, so the
        # rerun regresses iff its own timing clears the noise floor —
        # which dis2's dense tableau solve (~0.4s) reliably does.
        baseline["summary"]["seconds_total"] = {
            name: 0.001
            for name in baseline["summary"]["seconds_total"]
        }
        doctored = tmp_path / "doctored.json"
        doctored.write_text(json.dumps(baseline))
        rerun = tmp_path / "BENCH_lp2.json"
        code = main([
            "perf", "--names", "dis2",
            "--backends", "exact-dense", "--no-refutation",
            "--output", str(rerun), "--baseline", str(doctored),
        ])
        captured = capsys.readouterr()
        assert code == 1
        assert "timing regression" in captured.err
