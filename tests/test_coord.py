"""Cluster coordinator tests: fault-tolerant multi-node batch fan-out.

The suite holds the coordinator to this PR's hard invariant — a batch
fanned across live worker nodes, with nodes dying, partitioned or
shedding mid-run, must merge to canonical report bytes identical to a
fault-free local ``--jobs 1`` run.  The layers underneath (resilient
client retry classification, registry health state machine, shard
report synthesis, work stealing and reassignment, graceful degradation
below the capacity floor) are tested directly so an end-to-end failure
localizes quickly.

Worker nodes run as real :class:`~repro.serve.AnalysisServer` instances
on ephemeral ports (each on its own event-loop thread); node death is
injected with ``node.partition`` fault rules, which blind both the
dispatch client and the heartbeat monitor to a node exactly like a
yanked cable.  The CI job ``cluster-chaos-smoke`` covers the
separate-process ``kill -9`` variant.
"""

import asyncio
import http.server
import json
import random
import threading
import time

import pytest

from repro.config import AnalysisConfig, CoordConfig, EngineConfig, ServeConfig
from repro.coord import (
    BACKOFF_CAP,
    ClientError,
    ClusterDispatch,
    CoordinatorServer,
    HeartbeatMonitor,
    NodeRegistry,
    NodeUnreachable,
    RegistryError,
    ResilientClient,
    backoff_schedule,
    normalize_url,
    run_cluster_batch,
    shard_report,
)
from repro.engine import run_batch
from repro.engine.batch import batch_to_json
from repro.faults import FaultPlan, set_plan
from repro.serve import AnalysisServer, canonical_json

#: Outer safety net per async test body.
TEST_DEADLINE = 180

QUICK_OLD = """
proc count(n) {
  assume(1 <= n && n <= 10);
  var i = 0;
  while (i < n) { tick(1); i = i + 1; }
}
"""

#: Degree-1 analysis keeps every pair sub-second; the cluster behavior
#: under test is scheduling and failure handling, not LP depth.
FAST = AnalysisConfig(degree=1, max_products=1)

PAIRS = [("alpha", 4), ("beta", 6), ("gamma", 8), ("delta", 10), ("eps", 7)]


def _write_pairs(directory, pairs):
    directory.mkdir(parents=True, exist_ok=True)
    for name, bound in pairs:
        old = QUICK_OLD.replace("n <= 10", f"n <= {bound}")
        (directory / f"{name}_old.imp").write_text(old)
        (directory / f"{name}_new.imp").write_text(
            old.replace("tick(1)", "tick(2)"))


def run_async(coroutine):
    return asyncio.run(asyncio.wait_for(coroutine, timeout=TEST_DEADLINE))


class LiveNode:
    """A real AnalysisServer on its own event-loop thread, so the
    blocking cluster dispatcher can call it over actual sockets."""

    def __init__(self, cache_dir=None, workers=1):
        self.port = None
        self.server = None
        self._settings = {"port": 0, "workers": workers,
                          "cache_dir": cache_dir}
        self._loop = None
        self._stopping = None
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        assert self._ready.wait(30), "node failed to start"

    def _run(self):
        asyncio.run(self._main())

    async def _main(self):
        self._loop = asyncio.get_running_loop()
        self._stopping = asyncio.Event()
        self.server = AnalysisServer(ServeConfig(**self._settings))
        await self.server.start()
        self.port = self.server.port
        self._ready.set()
        await self._stopping.wait()
        await self.server.stop()

    @property
    def url(self):
        return f"http://127.0.0.1:{self.port}"

    @property
    def address(self):
        return f"127.0.0.1:{self.port}"

    def stop(self):
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self._stopping.set)
        self._thread.join(timeout=30)


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    yield
    set_plan(None)


def partition_plan(*addresses, max_attempts=0):
    """A plan that takes whole nodes off the network (every attempt)."""
    return FaultPlan.from_dict({
        "seed": 7,
        "rules": [{"site": "node.partition", "name": address,
                   "max_attempts": max_attempts}
                  for address in addresses],
    })


def local_canonical(directory, config=FAST):
    report = run_batch(directory, config=config,
                       engine=EngineConfig(jobs=1, cache_dir=None))
    return canonical_json(json.loads(batch_to_json(report)))


# -- the resilient client ---------------------------------------------------


class _StubHandler(http.server.BaseHTTPRequestHandler):
    """Scriptable endpoints for retry-classification tests."""

    calls: dict[str, int] = {}

    def _count(self) -> int:
        calls = type(self).calls
        calls[self.path] = calls.get(self.path, 0) + 1
        return calls[self.path]

    def _reply(self, status, body, headers=()):
        data = json.dumps(body).encode()
        self.send_response(status)
        for name, value in headers:
            self.send_header(name, value)
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def do_GET(self):
        nth = self._count()
        if self.path == "/ok":
            self._reply(200, {"ok": True})
        elif self.path == "/shed-once":
            if nth == 1:
                self._reply(429, {"error": "overloaded"},
                            [("Retry-After", "0")])
            else:
                self._reply(200, {"ok": True, "attempt": nth})
        elif self.path == "/flaky-500":
            if nth == 1:
                self._reply(500, {"error": "boom"})
            else:
                self._reply(200, {"ok": True, "attempt": nth})
        elif self.path == "/bad":
            self._reply(400, {"error": "no such thing"})
        else:
            self._reply(404, {"error": "nope"})

    do_POST = do_GET

    def log_message(self, *args):
        pass


@pytest.fixture()
def stub_server():
    _StubHandler.calls = {}
    server = http.server.ThreadingHTTPServer(("127.0.0.1", 0), _StubHandler)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield f"http://127.0.0.1:{server.server_address[1]}"
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)


class TestResilientClient:
    def fast_client(self, retries=3):
        return ResilientClient(deadline=5.0, retries=retries,
                               backoff_base=0.001, seed=2022)

    def test_plain_round_trip(self, stub_server):
        status, body = self.fast_client().get(f"{stub_server}/ok")
        assert (status, body) == (200, {"ok": True})

    def test_shedding_is_retried_honoring_retry_after(self, stub_server):
        status, body = self.fast_client().get(f"{stub_server}/shed-once")
        assert status == 200
        assert body["attempt"] == 2
        assert _StubHandler.calls["/shed-once"] == 2

    def test_5xx_is_retried(self, stub_server):
        status, body = self.fast_client().get(f"{stub_server}/flaky-500")
        assert status == 200
        assert body["attempt"] == 2

    def test_4xx_fails_fast_without_retries(self, stub_server):
        with pytest.raises(ClientError) as error:
            self.fast_client().get(f"{stub_server}/bad")
        assert error.value.retryable is False
        assert error.value.status == 400
        assert "no such thing" in str(error.value)
        assert _StubHandler.calls["/bad"] == 1

    def test_connection_refused_exhausts_into_node_unreachable(self):
        client = self.fast_client(retries=2)
        with pytest.raises(NodeUnreachable, match="3 attempt"):
            client.get("http://127.0.0.1:9/ok", deadline=0.5)

    def test_truncated_body_is_retried_to_a_full_answer(self, stub_server):
        set_plan(FaultPlan.from_dict({"seed": 1, "rules": [
            {"site": "net.truncated_body", "name": "*/ok", "times": 1},
        ]}))
        status, body = self.fast_client().get(f"{stub_server}/ok")
        assert (status, body) == (200, {"ok": True})
        assert _StubHandler.calls["/ok"] == 2

    def test_transient_refusal_self_heals_on_retry(self, stub_server):
        # max_attempts=1 fires on attempt 0 only: the backoff retry of
        # the same request runs clean — the self-healing contract.
        set_plan(FaultPlan.from_dict({"seed": 1, "rules": [
            {"site": "net.refused", "name": "*/ok", "max_attempts": 1},
        ]}))
        status, _body = self.fast_client().get(f"{stub_server}/ok")
        assert status == 200
        assert _StubHandler.calls["/ok"] == 1  # refusal never connected

    def test_partition_rule_blinds_a_whole_node(self, stub_server):
        address = stub_server.split("://", 1)[1]
        set_plan(partition_plan(address))
        with pytest.raises(NodeUnreachable):
            self.fast_client(retries=1).get(f"{stub_server}/ok")
        assert _StubHandler.calls.get("/ok", 0) == 0

    def test_backoff_is_bounded_exponential_with_seeded_jitter(self):
        first = [backoff_schedule(a, random.Random(5)) for a in range(12)]
        again = [backoff_schedule(a, random.Random(5)) for a in range(12)]
        assert first == again  # seeded: two runs sleep the same schedule
        assert all(0 < sleep <= BACKOFF_CAP for sleep in first)
        widths = [0.05 * 2 ** attempt for attempt in range(12)]
        assert all(sleep <= min(BACKOFF_CAP, width)
                   for sleep, width in zip(first, widths))


# -- the node registry ------------------------------------------------------


class TestNodeRegistry:
    def test_url_normalization(self):
        assert normalize_url("127.0.0.1:8765") == "http://127.0.0.1:8765"
        assert normalize_url("http://h:1/") == "http://h:1"
        with pytest.raises(RegistryError):
            normalize_url("")
        with pytest.raises(RegistryError):
            normalize_url("https://h:1")

    def test_register_is_idempotent_and_revives_the_dead(self):
        registry = NodeRegistry(dead_after=1)
        node = registry.register("127.0.0.1:1")
        assert registry.register("http://127.0.0.1:1") is node
        registry.heartbeat_missed(node.url)
        assert registry.counts()["dead"] == 1
        fresh = registry.register("127.0.0.1:1")
        assert fresh is not node
        assert fresh.state == "live"

    def test_missed_heartbeats_debounce_into_death(self):
        registry = NodeRegistry(dead_after=3)
        url = registry.register("127.0.0.1:1").url
        assert registry.heartbeat_missed(url) == "suspect"
        assert registry.heartbeat_missed(url) == "suspect"
        assert [n.url for n in registry.eligible()] == [url]  # still used
        assert registry.heartbeat_missed(url) == "dead"
        assert registry.eligible() == []
        # One clean heartbeat rejoins the (respawned) node.
        registry.heartbeat_ok(url)
        assert registry.counts()["live"] == 1

    def test_request_failures_quarantine_and_heartbeats_recover(self):
        registry = NodeRegistry(quarantine_after=2, recover_after=2)
        url = registry.register("127.0.0.1:1").url
        assert registry.mark_request_failed(url) == "live"
        assert registry.mark_request_failed(url) == "quarantined"
        assert registry.eligible() == []  # no new work while poisoned
        registry.heartbeat_ok(url)
        assert registry.counts()["quarantined"] == 1
        registry.heartbeat_ok(url)
        assert registry.counts()["live"] == 1
        # A success resets the failure streak.
        registry.mark_request_ok(url)
        assert registry.mark_request_failed(url) == "live"

    def test_dead_nodes_are_evicted_after_the_grace(self):
        registry = NodeRegistry(dead_after=1, evict_after=0.0)
        url = registry.register("127.0.0.1:1").url
        registry.heartbeat_missed(url)
        assert registry.evict_expired() == [url]
        assert registry.nodes() == []

    def test_heartbeat_monitor_drives_the_state_machine(self):
        registry = NodeRegistry(dead_after=2)
        registry.register("127.0.0.1:9")  # nothing listens there
        monitor = HeartbeatMonitor(
            registry, ResilientClient(deadline=0.3, retries=0),
            interval=60.0)
        monitor.beat()
        assert registry.counts()["suspect"] == 1
        monitor.beat()
        assert registry.counts()["dead"] == 1


# -- shard report synthesis -------------------------------------------------


class TestShardReportSynthesis:
    def test_stats_count_the_logical_batch_not_the_retries(self):
        from repro.coord.dispatch import PairTask

        tasks = [
            PairTask(name="b", shard=0, payload={}, state="done",
                     executions=3,
                     result={"name": "b", "job_key": "2" * 64,
                             "status": "ok"}),
            PairTask(name="a", shard=0, payload={}, state="done",
                     executions=1,
                     result={"name": "a", "job_key": "1" * 64,
                             "status": "error"}),
        ]
        report = shard_report("d", 0, 2, tasks, pairs_total=2, seconds=1.0)
        assert report["shard"] == "0/2"
        assert report["partial"] is False
        assert report["pair_names"] == ["a", "b"]  # name-sorted
        assert [r["name"] for r in report["results"]] == ["a", "b"]
        stats = report["stats"]
        assert stats["submitted"] == 2  # not 4: duplicates are volatile
        assert stats["completed"] == 1
        assert stats["errors"] == 1

    def test_unresolved_pairs_leave_the_shard_partial(self):
        from repro.coord.dispatch import PairTask

        tasks = [PairTask(name="a", shard=0, payload={}, state="pending")]
        report = shard_report("d", 0, 1, tasks, pairs_total=1, seconds=0.1)
        assert report["partial"] is True
        assert report["results"] == []
        assert report["pair_names"] == ["a"]


# -- the cluster end to end -------------------------------------------------


class TestClusterBatch:
    def coord_config(self, nodes, **overrides):
        settings = dict(nodes=tuple(node.url for node in nodes),
                        min_nodes=1, node_concurrency=2,
                        heartbeat_interval=0.05, dead_after=2,
                        request_deadline=60.0, client_retries=2,
                        backoff_base=0.01, steal_after=0.05)
        settings.update(overrides)
        return CoordConfig(**settings)

    def cluster(self, coord):
        registry = NodeRegistry(
            dead_after=coord.dead_after,
            quarantine_after=coord.quarantine_after,
            recover_after=coord.recover_after,
            evict_after=coord.evict_after,
        )
        for url in coord.nodes:
            registry.register(url)
        client = ResilientClient(
            deadline=coord.request_deadline, retries=coord.client_retries,
            backoff_base=coord.backoff_base, seed=coord.client_seed,
        )
        return registry, client

    def test_fan_out_matches_local_jobs1_byte_for_byte(self, tmp_path):
        _write_pairs(tmp_path / "batch", PAIRS)
        nodes = [LiveNode(), LiveNode()]
        try:
            coord = self.coord_config(nodes)
            registry, client = self.cluster(coord)
            merged, cluster = run_cluster_batch(
                str(tmp_path / "batch"), FAST, registry, client, coord)
        finally:
            for node in nodes:
                node.stop()
        assert cluster["pairs"] == len(PAIRS)
        assert cluster["shards"] == 2
        assert not cluster["aborted"]
        assert cluster["failed_pairs"] == []
        assert merged["partial"] is False
        assert canonical_json(merged) == local_canonical(tmp_path / "batch")

    def test_dead_node_mid_run_is_reassigned_and_bytes_survive(
            self, tmp_path):
        _write_pairs(tmp_path / "batch", PAIRS)
        nodes = [LiveNode(), LiveNode()]
        monitor = None
        try:
            coord = self.coord_config(nodes)
            registry, client = self.cluster(coord)
            # Partition the second node before dispatch: every analyze
            # call and every heartbeat to it fails, so its shard's
            # pairs requeue onto the survivor while the monitor walks
            # it live -> suspect -> dead.
            set_plan(partition_plan(nodes[1].address))
            monitor = HeartbeatMonitor(
                registry, ResilientClient(deadline=0.5, retries=0),
                interval=coord.heartbeat_interval)
            monitor.start()
            merged, cluster = run_cluster_batch(
                str(tmp_path / "batch"), FAST, registry, client, coord)
        finally:
            if monitor is not None:
                monitor.stop()
            set_plan(None)
            for node in nodes:
                node.stop()
        assert not cluster["aborted"]
        assert cluster["failed_pairs"] == []
        assert cluster["requeues"] + cluster["reassigned"] >= 1
        assert registry.counts()["dead"] == 1
        assert merged["partial"] is False
        # The hard invariant: a node death is a volatile machine
        # condition — never a canonical report byte.
        assert canonical_json(merged) == local_canonical(tmp_path / "batch")

    def test_below_capacity_floor_degrades_to_partial(self, tmp_path):
        _write_pairs(tmp_path / "batch", PAIRS[:3])
        nodes = [LiveNode()]
        monitor = None
        try:
            coord = self.coord_config(nodes, min_nodes=1,
                                      client_retries=1)
            registry, client = self.cluster(coord)
            set_plan(partition_plan(nodes[0].address))
            monitor = HeartbeatMonitor(
                registry, ResilientClient(deadline=0.5, retries=0),
                interval=coord.heartbeat_interval)
            monitor.start()
            merged, cluster = run_cluster_batch(
                str(tmp_path / "batch"), FAST, registry, client, coord)
        finally:
            if monitor is not None:
                monitor.stop()
            set_plan(None)
            for node in nodes:
                node.stop()
        assert cluster["aborted"] is True
        assert merged["partial"] is True
        assert len(cluster["unresolved_pairs"]) == 3
        # The partial report is still a mergeable, well-formed batch
        # report — graceful degradation, not a crash.
        assert merged["pair_names"] == sorted(n for n, _b in PAIRS[:3])

    def test_whole_cluster_down_refuses_the_batch(self, tmp_path):
        from repro.errors import AnalysisError

        _write_pairs(tmp_path / "batch", PAIRS[:1])
        registry = NodeRegistry(dead_after=1)
        url = registry.register("127.0.0.1:9").url
        registry.heartbeat_missed(url)  # dead before dispatch
        coord = CoordConfig(min_nodes=1)
        with pytest.raises(AnalysisError, match="capacity floor"):
            ClusterDispatch([], FAST, registry,
                            ResilientClient(), coord)

    def test_steal_counters_reach_the_metrics_registry(self, tmp_path):
        from repro.obs import get_registry

        _write_pairs(tmp_path / "batch", PAIRS)
        nodes = [LiveNode(), LiveNode()]
        try:
            coord = self.coord_config(nodes, steal_after=0.01)
            registry, client = self.cluster(coord)
            before = get_registry().counter(
                "repro_coord_pairs_dispatched_total").value()
            _merged, cluster = run_cluster_batch(
                str(tmp_path / "batch"), FAST, registry, client, coord)
        finally:
            for node in nodes:
                node.stop()
        after = get_registry().counter(
            "repro_coord_pairs_dispatched_total").value()
        assert after - before == len(PAIRS)
        if cluster["steals"]:
            assert get_registry().counter(
                "repro_coord_steals_total").value() >= cluster["steals"]


# -- the coordinator HTTP surface -------------------------------------------


async def http_json(port, method, path, payload=None):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    body = b"" if payload is None else json.dumps(payload).encode()
    writer.write(
        (
            f"{method} {path} HTTP/1.1\r\nHost: localhost\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Content-Type: application/json\r\nConnection: close\r\n\r\n"
        ).encode() + body
    )
    await writer.drain()
    data = await reader.read()
    writer.close()
    try:
        await writer.wait_closed()
    except ConnectionError:
        pass
    head, _, rest = data.partition(b"\r\n\r\n")
    return int(head.split()[1]), head.decode(), json.loads(rest)


class TestCoordinatorServer:
    async def started(self, **overrides):
        settings = dict(port=0, heartbeat_interval=30.0)
        settings.update(overrides)
        server = CoordinatorServer(CoordConfig(**settings), FAST)
        await server.start()
        return server

    def test_node_registration_and_healthz(self):
        async def scenario():
            server = await self.started()
            try:
                status, _head, body = await http_json(
                    server.port, "POST", "/nodes",
                    {"url": "127.0.0.1:18999"})
                assert status == 200
                assert body["registered"] == "http://127.0.0.1:18999"
                status, _head, nodes = await http_json(
                    server.port, "GET", "/nodes")
                assert status == 200
                assert nodes["counts"]["live"] == 1
                status, _head, health = await http_json(
                    server.port, "GET", "/healthz")
                assert status == 200
                assert health["status"] == "ok"
                assert health["registry"]["counts"]["live"] == 1

                status, _head, body = await http_json(
                    server.port, "POST", "/nodes", {"nope": 1})
                assert status == 400
            finally:
                await server.stop()

        run_async(scenario())

    def test_metrics_exposition_carries_cluster_series(self):
        async def scenario():
            server = await self.started()
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port)
                writer.write(b"GET /metrics HTTP/1.1\r\nHost: x\r\n"
                             b"Content-Length: 0\r\n"
                             b"Connection: close\r\n\r\n")
                await writer.drain()
                text = (await reader.read()).decode()
                writer.close()
                for series in (
                    'repro_coord_nodes{state="live"}',
                    'repro_coord_nodes{state="dead"}',
                    "repro_coord_batches_active",
                    "repro_coord_draining",
                    "repro_coord_steals_total",
                    "repro_coord_reassigned_total",
                    "repro_coord_duplicates_total",
                    "repro_coord_client_retries_total",
                ):
                    assert series in text, series
            finally:
                await server.stop()

        run_async(scenario())

    def test_batch_request_validation(self, tmp_path):
        async def scenario():
            server = await self.started()
            try:
                for payload, fragment in (
                    ({"config": {}}, "directory"),
                    ({"directory": ""}, "directory"),
                    ({"directory": "d", "shards": 0}, "shards"),
                    ({"directory": "d", "portfolio": True}, "portfolio"),
                    ({"directory": "d", "config": {"typo": 1}}, "typo"),
                ):
                    status, _head, body = await http_json(
                        server.port, "POST", "/batch", payload)
                    assert status == 400, payload
                    assert fragment in body["error"]
                # No nodes registered: the floor rejection is a 503
                # with a Retry-After, not a hang or a crash.
                _write_pairs(tmp_path / "batch", PAIRS[:1])
                status, head, body = await http_json(
                    server.port, "POST", "/batch",
                    {"directory": str(tmp_path / "batch")})
                assert status == 503
                assert "retry-after:" in head.lower()
                assert "capacity floor" in body["error"]
            finally:
                await server.stop()

        run_async(scenario())

    def test_batch_over_http_matches_local(self, tmp_path):
        _write_pairs(tmp_path / "batch", PAIRS[:3])
        nodes = [LiveNode(), LiveNode()]

        async def scenario():
            server = await self.started(
                nodes=tuple(node.url for node in nodes),
                node_concurrency=2, steal_after=0.05)
            try:
                status, _head, body = await http_json(
                    server.port, "POST", "/batch",
                    {"directory": str(tmp_path / "batch"),
                     "config": {"degree": 1, "max_products": 1}})
                assert status == 200
                assert body["cluster"]["pairs"] == 3
                return body["report"]
            finally:
                await server.stop()

        try:
            report = run_async(scenario())
        finally:
            for node in nodes:
                node.stop()
        assert canonical_json(report) == local_canonical(tmp_path / "batch")

    def test_draining_coordinator_sheds_batches(self):
        async def scenario():
            server = await self.started()
            try:
                server._draining = True
                status, head, _body = await http_json(
                    server.port, "POST", "/batch", {"directory": "d"})
                assert status == 503
                assert "retry-after:" in head.lower()
            finally:
                await server.stop()

        run_async(scenario())


# -- CLI ---------------------------------------------------------------------


class TestCoordCli:
    def test_one_shot_batch_exits_zero_and_prints_canonical(
            self, tmp_path, capsys):
        from repro.cli import main

        _write_pairs(tmp_path / "batch", PAIRS[:2])
        node = LiveNode()
        try:
            exit_code = main([
                "coord", "--node", node.address,
                "--batch", str(tmp_path / "batch"), "--canonical",
                "-d", "1", "-K", "1", "--client-retries", "2",
            ])
        finally:
            node.stop()
        cluster_out = capsys.readouterr().out
        assert exit_code == 0
        # The local baseline through the same CLI config plumbing.
        assert main(["batch", str(tmp_path / "batch"), "--jobs", "1",
                     "--format", "json", "--no-cache",
                     "-d", "1", "-K", "1"]) == 0
        local = json.loads(capsys.readouterr().out)
        assert cluster_out.rstrip("\n") == canonical_json(local)

    def test_one_shot_batch_with_no_nodes_is_a_structured_error(
            self, tmp_path, capsys):
        from repro.cli import main

        _write_pairs(tmp_path / "batch", PAIRS[:1])
        exit_code = main(["coord", "--batch", str(tmp_path / "batch"),
                          "--min-nodes", "1"])
        assert exit_code == 2
        assert "capacity floor" in capsys.readouterr().err
