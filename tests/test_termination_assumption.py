"""Appendix C: the termination assumption is necessary for Theorem 4.1.

The paper's counterexample program ``nonterm`` never terminates; the map
χ defined there satisfies both anti-PF conditions, yet χ(ℓ0, 0) = 7
exceeds the (limit) total cost 6.  We reproduce the program, check χ's
local conditions mechanically on a concrete prefix, and show the claimed
lower-bound property fails — demonstrating why the library's analyses
require terminating programs.
"""

from fractions import Fraction

from repro.poly.polynomial import Polynomial
from repro.ts import Interpreter, LinIneq, TransitionSystemBuilder

X = Polynomial.variable("x")


def nonterm_system():
    """while (x >= 0) { if (x <= 5) { cost++ } x++ }  — never exits."""
    builder = TransitionSystemBuilder("nonterm", ["x"])
    builder.assume_init_box({"x": (0, 0)})
    builder.transition("l0", "l3", guard=[LinIneq.geq(X, 0), LinIneq.leq(X, 5)],
                       cost=1)
    builder.transition("l0", "l3", guard=[LinIneq.geq(X, 0), LinIneq.geq(X, 6)])
    builder.transition("l3", "l0", updates={"x": X + 1})
    builder.transition("l0", "l_out", guard=[LinIneq.less_than(X, 0)])
    return builder.build("l0", "l_out")


def chi(location_name: str, x: int) -> Fraction:
    """The paper's anti-potential candidate (Appendix C)."""
    if location_name in ("l0",) and 0 <= x <= 5:
        return Fraction(7 - x)
    if location_name == "l3" and 0 <= x <= 5:
        return Fraction(6 - x)
    return Fraction(1)


def test_chi_satisfies_insufficiency_preservation_on_prefix():
    system = nonterm_system()
    interpreter = Interpreter(system)
    state = interpreter.initial_state({"x": 0})
    for _ in range(50):
        options = interpreter.enabled(state)
        successor = interpreter.apply(state, options[0])
        delta = successor["cost"] - state["cost"]
        assert chi(state.location.name, state["x"]) <= \
            chi(successor.location.name, successor["x"]) + delta
        state = successor


def test_chi_exceeds_total_cost_without_termination():
    # Total (limit) cost of the single run is 6: cost increments for
    # x = 0..5 and never afterwards.  χ(ℓ0, x=0) = 7 > 6, so the anti-PF
    # lower-bound claim of Theorem 4.1 fails for this non-terminating
    # program, exactly as Appendix C argues.
    system = nonterm_system()
    interpreter = Interpreter(system)
    state = interpreter.initial_state({"x": 0})
    for _ in range(200):
        options = interpreter.enabled(state)
        state = interpreter.apply(state, options[0])
    limit_cost = state["cost"]
    assert limit_cost == 6
    assert chi("l0", 0) == 7 > limit_cost


def test_interpreter_flags_nontermination():
    from repro.errors import NonTerminationError

    import pytest

    system = nonterm_system()
    with pytest.raises(NonTerminationError):
        Interpreter(system, max_steps=500).run({"x": 0})
