"""Unit and property tests for affine guard inequalities."""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.poly.linexpr import AffineExpr
from repro.poly.polynomial import Polynomial
from repro.ts.guards import LinIneq, all_hold, box

X = Polynomial.variable("x")
Y = Polynomial.variable("y")


class TestConstruction:
    def test_geq_leq(self):
        assert LinIneq.geq(X, 3).holds({"x": 3})
        assert not LinIneq.geq(X, 3).holds({"x": 2})
        assert LinIneq.leq(X, 3).holds({"x": 3})
        assert not LinIneq.leq(X, 3).holds({"x": 4})

    def test_strict_integer_semantics(self):
        less = LinIneq.less_than(X, 3)
        assert less.holds({"x": 2})
        assert not less.holds({"x": 3})
        greater = LinIneq.greater_than(X, 3)
        assert greater.holds({"x": 4})
        assert not greater.holds({"x": 3})

    def test_equals_pair(self):
        pair = LinIneq.equals(X, Y)
        assert all_hold(pair, {"x": 2, "y": 2})
        assert not all_hold(pair, {"x": 2, "y": 3})

    def test_nonaffine_rejected(self):
        from repro.errors import PolynomialError

        with pytest.raises(PolynomialError):
            LinIneq.geq(X * X, 0)

    def test_constants(self):
        assert LinIneq.geq(1, 0).is_trivial()
        assert LinIneq.geq(-1, 0).is_contradiction()
        assert LinIneq.always_true().is_trivial()


class TestLogic:
    def test_negation_partitions_integers(self):
        ineq = LinIneq.leq(X, 5)
        for value in range(-10, 10):
            assert ineq.holds({"x": value}) != ineq.negate().holds({"x": value})

    def test_double_negation_equivalent(self):
        ineq = LinIneq.geq(2 * X - Y, 3)
        double = ineq.negate().negate()
        for x in range(-5, 6):
            for y in range(-5, 6):
                point = {"x": x, "y": y}
                assert ineq.holds(point) == double.holds(point)

    def test_substitute(self):
        ineq = LinIneq.geq(X, 1).substitute({"x": Y + 1})
        assert ineq.holds({"y": 0})
        assert not ineq.holds({"y": -1})

    def test_normalize_scales_to_coprime_integers(self):
        a = LinIneq(AffineExpr({"x": 2}, -4))
        b = LinIneq(AffineExpr({"x": 1}, -2))
        assert a.normalize() == b.normalize()

    def test_normalize_fractions(self):
        a = LinIneq(AffineExpr({"x": Fraction(1, 2)}, Fraction(1, 3)))
        normalized = a.normalize()
        coeffs = [c for _, c in normalized.expr.coefficients()]
        assert all(c.denominator == 1 for c in coeffs)
        assert normalized.expr.constant_term.denominator == 1


class TestBox:
    def test_box_inequalities(self):
        constraints = box({"n": (1, 100)})
        assert all_hold(constraints, {"n": 1})
        assert all_hold(constraints, {"n": 100})
        assert not all_hold(constraints, {"n": 0})
        assert not all_hold(constraints, {"n": 101})


@settings(max_examples=50, deadline=None)
@given(st.integers(-10, 10), st.integers(-10, 10), st.integers(-10, 10))
def test_comparison_constructors_match_python(a, b, x):
    point = {"x": x}
    lhs = a * X + b
    assert LinIneq.geq(lhs, 0).holds(point) == (a * x + b >= 0)
    assert LinIneq.leq(lhs, 0).holds(point) == (a * x + b <= 0)
    assert LinIneq.less_than(lhs, 0).holds(point) == (a * x + b < 0)
    assert LinIneq.greater_than(lhs, 0).holds(point) == (a * x + b > 0)
