"""End-to-end tests of the serving front-end and the shard workflow.

Everything here runs against a *live* server on an ephemeral port (no
internal shortcuts for the request path) and asserts the layer's three
contracts: dedupe (cache replay + in-flight coalescing), structured
deadline timeouts riding the pool's cancellation path, and shard/merge
determinism (``--shard 0/2`` + ``--shard 1/2`` + merge byte-identical
to one unsharded ``--jobs 1`` run).

Every async entry point is wrapped in an outer ``asyncio.wait_for`` so
a regression hangs a test for at most ``TEST_DEADLINE`` seconds, not
forever (CI adds pytest-timeout on top).
"""

import asyncio
import json

import pytest

from repro.config import AnalysisConfig, EngineConfig, ServeConfig
from repro.engine import ResultCache, run_batch, shard_pairs, discover_pairs
from repro.engine.batch import batch_to_json
from repro.serve import (
    AnalysisServer,
    ServeError,
    canonical_json,
    job_from_payload,
    merge_caches,
    merge_reports,
    parse_shard_spec,
    report_ok,
)

#: Outer safety net per async test body.
TEST_DEADLINE = 180

QUICK_OLD = """
proc count(n) {
  assume(1 <= n && n <= 10);
  var i = 0;
  while (i < n) { tick(1); i = i + 1; }
}
"""
QUICK_NEW = QUICK_OLD.replace("tick(1)", "tick(2)")

#: Takes ~1.5s to analyze at degree 2 — slow enough that a 0.25s
#: deadline reliably expires and that two back-to-back requests
#: reliably overlap once the first is confirmed in flight.
SLOW_OLD = """
proc nested(n, m) {
  assume(1 <= n && n <= 100 && 1 <= m && m <= 100);
  var i = 0;
  while (i < n) {
    var j = 0;
    while (j < m) { tick(1); j = j + 1; }
    i = i + 1;
  }
}
"""
SLOW_NEW = SLOW_OLD.replace("tick(1)", "tick(3)")


def run_async(coroutine):
    return asyncio.run(asyncio.wait_for(coroutine, timeout=TEST_DEADLINE))


async def http_json(port, method, path, payload=None):
    """Minimal HTTP/1.1 client: one request, read to EOF, parse JSON."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    body = b"" if payload is None else json.dumps(payload).encode()
    writer.write(
        (
            f"{method} {path} HTTP/1.1\r\nHost: localhost\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Content-Type: application/json\r\nConnection: close\r\n\r\n"
        ).encode() + body
    )
    await writer.drain()
    data = await reader.read()
    writer.close()
    try:
        await writer.wait_closed()
    except ConnectionError:
        pass
    head, _, rest = data.partition(b"\r\n\r\n")
    return int(head.split()[1]), json.loads(rest)


async def http_text(port, method, path):
    """Like :func:`http_json` but returns the raw body and headers —
    for the Prometheus text exposition of ``/metrics``."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(
        (
            f"{method} {path} HTTP/1.1\r\nHost: localhost\r\n"
            f"Content-Length: 0\r\nConnection: close\r\n\r\n"
        ).encode()
    )
    await writer.drain()
    data = await reader.read()
    writer.close()
    try:
        await writer.wait_closed()
    except ConnectionError:
        pass
    head, _, rest = data.partition(b"\r\n\r\n")
    return int(head.split()[1]), head.decode(), rest.decode()


def _metric_value(text: str, sample: str) -> float:
    """The value of an exact sample line (name incl. labels)."""
    for line in text.splitlines():
        if line.startswith(sample + " "):
            return float(line.split()[-1])
    raise AssertionError(f"sample {sample!r} not in exposition:\n{text}")


async def started_server(tmp_path, **overrides) -> AnalysisServer:
    settings = {"port": 0, "workers": 1,
                "cache_dir": str(tmp_path / "serve-cache")}
    settings.update(overrides)
    server = AnalysisServer(ServeConfig(**settings))
    await server.start()
    return server


class TestRoundTrip:
    def test_analyze_round_trip_and_cache_replay(self, tmp_path):
        async def scenario():
            server = await started_server(tmp_path)
            try:
                payload = {"kind": "diff", "old_source": QUICK_OLD,
                           "new_source": QUICK_NEW, "name": "count"}
                status, first = await http_json(
                    server.port, "POST", "/analyze", payload)
                assert status == 200
                assert first["deduped"] is False
                assert first["result"]["status"] == "ok"
                assert first["result"]["outcome"] == "threshold"
                assert first["result"]["threshold"] == pytest.approx(10.0)
                assert not first["result"]["cached"]

                # The same request again replays from the persistent
                # cache: no new analysis, flagged as cached.
                status, second = await http_json(
                    server.port, "POST", "/analyze", payload)
                assert status == 200
                assert second["result"]["cached"] is True
                assert second["job_key"] == first["job_key"]

                status, health = await http_json(
                    server.port, "GET", "/healthz")
                assert status == 200
                assert health["status"] == "ok"
                assert health["engine"]["cache_hits"] == 1
                assert health["engine"]["completed"] >= 1
            finally:
                await server.stop()

        run_async(scenario())

    def test_config_overrides_change_the_job(self, tmp_path):
        async def scenario():
            server = await started_server(tmp_path)
            try:
                base = {"kind": "diff", "old_source": QUICK_OLD,
                        "new_source": QUICK_NEW, "name": "count"}
                _status, default = await http_json(
                    server.port, "POST", "/analyze", base)
                _status, exact = await http_json(
                    server.port, "POST", "/analyze",
                    dict(base, config={"lp_backend": "exact"}))
                # Different config → different content hash → its own
                # cache entry, but the same exact threshold.
                assert exact["job_key"] != default["job_key"]
                assert exact["result"]["threshold_str"] == "10"
            finally:
                await server.stop()

        run_async(scenario())

    def test_malformed_requests_are_structured_400s(self, tmp_path):
        async def scenario():
            server = await started_server(tmp_path)
            try:
                for payload in (
                    {"kind": "nope", "old_source": QUICK_OLD},
                    {"kind": "diff", "old_source": ""},
                    {"kind": "diff", "old_source": QUICK_OLD,
                     "new_source": QUICK_NEW, "config": {"typo_field": 1}},
                    {"kind": "diff", "old_source": QUICK_OLD,
                     "new_source": QUICK_NEW, "deadline": -1},
                ):
                    status, body = await http_json(
                        server.port, "POST", "/analyze", payload)
                    assert status == 400, payload
                    assert "error" in body
                status, body = await http_json(server.port, "GET", "/nope")
                assert status == 404
                # The server survives all of it.
                status, _health = await http_json(
                    server.port, "GET", "/healthz")
                assert status == 200
            finally:
                await server.stop()

        run_async(scenario())


class TestCoalescing:
    def test_duplicate_request_runs_one_job_two_responses(self, tmp_path):
        async def scenario():
            server = await started_server(tmp_path)
            try:
                payload = {"kind": "diff", "old_source": SLOW_OLD,
                           "new_source": SLOW_NEW, "name": "nested"}
                first = asyncio.create_task(
                    http_json(server.port, "POST", "/analyze", payload))
                # Deterministic overlap: wait until the server reports
                # the job in flight before firing the duplicate.
                for _ in range(600):
                    _status, health = await http_json(
                        server.port, "GET", "/healthz")
                    if health["inflight"] >= 1:
                        break
                    await asyncio.sleep(0.05)
                else:
                    pytest.fail("job never showed up as in-flight")
                second = asyncio.create_task(
                    http_json(server.port, "POST", "/analyze", payload))
                (status1, body1), (status2, body2) = await asyncio.gather(
                    first, second)
                assert status1 == status2 == 200
                assert body1["result"]["threshold"] == pytest.approx(20000.0)
                assert body2["result"]["threshold"] == pytest.approx(20000.0)
                # One of the two was coalesced onto the other's run.
                assert body2["deduped"] or body1["deduped"]

                _status, health = await http_json(
                    server.port, "GET", "/healthz")
                assert health["coalesced"] == 1
                # One job submitted to the engine, zero cache hits: the
                # second response came from the same single run.
                assert health["engine"]["submitted"] == 1
                assert health["engine"]["cache_hits"] == 0
            finally:
                await server.stop()

        run_async(scenario())


class TestMetricsEndpoint:
    def test_metrics_exposition_tracks_requests_and_cache(self, tmp_path):
        async def scenario():
            server = await started_server(tmp_path)
            try:
                payload = {"kind": "diff", "old_source": QUICK_OLD,
                           "new_source": QUICK_NEW, "name": "count"}
                for _ in range(2):  # second replays from the cache
                    status, _body = await http_json(
                        server.port, "POST", "/analyze", payload)
                    assert status == 200

                status, head, text = await http_text(
                    server.port, "GET", "/metrics")
                assert status == 200
                assert "text/plain; version=0.0.4" in head
                assert "# TYPE repro_http_requests_total counter" in text
                # The registry is process-global (tests share it), so
                # assert the floor this scenario guarantees, not ==.
                requests = _metric_value(
                    text, 'repro_http_requests_total{path="/analyze"}')
                assert requests >= 2
                assert _metric_value(text, "repro_cache_hits_total") >= 1
                assert _metric_value(text, "repro_cache_stores_total") >= 1
                # Scrape-time gauges mirror engine and disk state.
                assert _metric_value(text, "repro_engine_submitted") >= 2
                assert _metric_value(text, "repro_engine_cache_hits") >= 1
                assert _metric_value(text, "repro_cache_entries") >= 1
                assert _metric_value(text, "repro_cache_total_bytes") > 0
                assert _metric_value(text, "repro_server_inflight") == 0
                # Admission-control series are present from the first
                # scrape — gauges and zeroed shed counters, not absent
                # until the first incident.
                assert _metric_value(text, "repro_server_draining") == 0
                assert _metric_value(text, "repro_server_queued") == 0
                assert _metric_value(
                    text, 'repro_server_shed_total{reason="overloaded"}') >= 0
                assert _metric_value(
                    text, 'repro_server_shed_total{reason="draining"}') >= 0
                # The scrape itself is counted on its own label.
                status, _head, text = await http_text(
                    server.port, "GET", "/metrics")
                assert _metric_value(
                    text, 'repro_http_requests_total{path="/metrics"}') >= 2

                # /healthz carries the full cache stats schema.
                _status, health = await http_json(
                    server.port, "GET", "/healthz")
                from repro.engine.cache import ResultCache

                assert set(health["cache"]) == set(ResultCache.empty_stats())
                assert health["cache"]["entries"] >= 1
            finally:
                await server.stop()

        run_async(scenario())

    def test_metrics_rejects_post(self, tmp_path):
        async def scenario():
            server = await started_server(tmp_path)
            try:
                status, _body = await http_json(
                    server.port, "POST", "/metrics")
                assert status == 405
            finally:
                await server.stop()

        run_async(scenario())


class TestDeadline:
    def test_deadline_returns_structured_timeout_and_cancels(self, tmp_path):
        async def scenario():
            server = await started_server(tmp_path)
            try:
                status, body = await http_json(
                    server.port, "POST", "/analyze",
                    {"kind": "diff", "old_source": SLOW_OLD,
                     "new_source": SLOW_NEW, "name": "nested",
                     "deadline": 0.25})
                assert status == 200
                result = body["result"]
                assert result["status"] == "timeout"
                assert result["error_type"] == "DeadlineExceeded"
                assert "0.25" in result["message"]

                # The abandoned job went through the pool's cancel path
                # and the server still serves fresh work afterwards.
                _status, health = await http_json(
                    server.port, "GET", "/healthz")
                assert health["deadline_timeouts"] == 1
                assert health["inflight"] == 0
                status, quick = await http_json(
                    server.port, "POST", "/analyze",
                    {"kind": "diff", "old_source": QUICK_OLD,
                     "new_source": QUICK_NEW, "name": "count"})
                assert status == 200
                assert quick["result"]["status"] == "ok"
            finally:
                await server.stop()

        run_async(scenario())

    def test_waiter_deadline_does_not_kill_shared_job(self, tmp_path):
        """A timed-out waiter only withdraws *itself*: the job keeps
        running for the patient waiter, which still gets the answer."""
        async def scenario():
            server = await started_server(tmp_path)
            try:
                payload = {"kind": "diff", "old_source": SLOW_OLD,
                           "new_source": SLOW_NEW, "name": "nested"}
                patient = asyncio.create_task(
                    http_json(server.port, "POST", "/analyze", payload))
                for _ in range(600):
                    _status, health = await http_json(
                        server.port, "GET", "/healthz")
                    if health["inflight"] >= 1:
                        break
                    await asyncio.sleep(0.05)
                status, hasty = await http_json(
                    server.port, "POST", "/analyze",
                    dict(payload, deadline=0.1))
                assert hasty["result"]["status"] == "timeout"
                status, body = await patient
                assert status == 200
                assert body["result"]["status"] == "ok"
                assert body["result"]["threshold"] == pytest.approx(20000.0)
            finally:
                await server.stop()

        run_async(scenario())


class TestPortfolioRequests:
    def test_best_mode_deadline_harvests_finished_rungs(self, tmp_path):
        """A best-mode deadline only abandons the *stragglers*: rungs
        that resolved before the deadline (here: cache-hit scipy rungs)
        still yield a chosen threshold instead of a blanket timeout."""
        async def scenario():
            server = await started_server(tmp_path)
            try:
                # Prime the ladder's scipy rungs into the persistent
                # cache (identical configs to the portfolio's rungs).
                for degree, products in ((1, 1), (2, 2), (3, 2)):
                    status, _body = await http_json(
                        server.port, "POST", "/analyze",
                        {"old_source": SLOW_OLD, "new_source": SLOW_NEW,
                         "name": "nested",
                         "config": {"degree": degree,
                                    "max_products": products,
                                    "lp_backend": "scipy"}})
                    assert status == 200
                # The uncached exact-warm rung takes ~3s; the cached
                # rungs resolve in milliseconds.
                status, body = await http_json(
                    server.port, "POST", "/analyze",
                    {"old_source": SLOW_OLD, "new_source": SLOW_NEW,
                     "name": "nested", "portfolio": "best",
                     "deadline": 1.2})
                assert status == 200
                assert body["status"] == "ok"
                assert body["chosen_rung"] is not None
                assert body["threshold"] == pytest.approx(20000.0)
                resolved = [r for r in body["rungs"]
                            if r["status"] == "ok"]
                assert len(resolved) >= 2
                assert body["rungs"][3]["status"] == "cancelled"
            finally:
                await server.stop()

        run_async(scenario())

    def test_portfolio_first_mode_selection(self, tmp_path):
        async def scenario():
            server = await started_server(tmp_path)
            try:
                status, body = await http_json(
                    server.port, "POST", "/analyze",
                    {"old_source": QUICK_OLD, "new_source": QUICK_NEW,
                     "name": "count", "portfolio": True})
                assert status == 200
                assert body["status"] == "ok"
                assert body["chosen_rung"] == 0  # d1K1 suffices here
                assert body["threshold"] == pytest.approx(10.0)
                assert len(body["rungs"]) == 4
                # Selection is ladder-order: rungs past the winner are
                # never reported as winners.
                for rung in body["rungs"][1:]:
                    assert rung["status"] in ("cancelled", "ok")
            finally:
                await server.stop()

        run_async(scenario())


def _write_pairs(directory, pairs):
    directory.mkdir(parents=True, exist_ok=True)
    for name, bound in pairs:
        old = QUICK_OLD.replace("n <= 10", f"n <= {bound}")
        new = old.replace("tick(1)", "tick(2)")
        (directory / f"{name}_old.imp").write_text(old)
        (directory / f"{name}_new.imp").write_text(new)


PAIRS = [("alpha", 4), ("beta", 6), ("gamma", 8), ("delta", 10)]


class TestShardMerge:
    def test_shard_partition_is_deterministic_and_disjoint(self, tmp_path):
        _write_pairs(tmp_path / "batch", PAIRS)
        pairs = discover_pairs(tmp_path / "batch")
        config = AnalysisConfig()
        shard0 = shard_pairs(pairs, config, (0, 2))
        shard1 = shard_pairs(pairs, config, (1, 2))
        names0 = {pair.name for pair in shard0}
        names1 = {pair.name for pair in shard1}
        assert names0 | names1 == {name for name, _bound in PAIRS}
        assert not names0 & names1
        # Stable across calls (and, by construction, across machines).
        assert [p.name for p in shard_pairs(pairs, config, (0, 2))] \
            == [p.name for p in shard0]

    def test_sharded_merge_matches_unsharded_byte_for_byte(self, tmp_path):
        _write_pairs(tmp_path / "batch", PAIRS)
        config = AnalysisConfig()

        whole_cache = tmp_path / "cache-whole"
        whole = run_batch(
            tmp_path / "batch", config=config,
            engine=EngineConfig(jobs=1, cache_dir=str(whole_cache)),
        )
        assert whole.ok and not whole.partial

        shard_reports, shard_caches = [], []
        for index in (0, 1):
            cache_dir = tmp_path / f"cache-{index}"
            shard_caches.append(cache_dir)
            report = run_batch(
                tmp_path / "batch", config=config,
                engine=EngineConfig(jobs=1, cache_dir=str(cache_dir)),
                shard=(index, 2),
            )
            assert report.shard == f"{index}/2"
            shard_reports.append(json.loads(batch_to_json(report)))

        merged = merge_reports(shard_reports)
        assert report_ok(merged)
        assert not merged["partial"]
        # The determinism guarantee, byte for byte.
        assert canonical_json(merged) \
            == canonical_json(json.loads(batch_to_json(whole)))

        # Cache contents match too: same entry set, same payloads up to
        # the volatile recorded seconds.
        merged_cache = tmp_path / "cache-merged"
        copied = merge_caches(str(merged_cache),
                              [str(path) for path in shard_caches])
        assert copied == len(ResultCache(whole_cache))
        names = {p.name for p in merged_cache.glob("*.json")}
        assert names == {p.name for p in whole_cache.glob("*.json")}
        for path in sorted(merged_cache.glob("*.json")):
            ours = json.loads(path.read_text())
            theirs = json.loads((whole_cache / path.name).read_text())
            for entry in (ours, theirs):
                entry["result"].pop("seconds")
                entry["result"].pop("timings")
                # Derived from the full (volatile-bearing) result.
                entry.pop("checksum")
            assert ours == theirs, path.name

    def test_sharded_portfolio_merge_matches_unsharded(self, tmp_path):
        _write_pairs(tmp_path / "batch", PAIRS[:3])
        config = AnalysisConfig()
        engine = dict(jobs=1, cache_dir=None, portfolio=True)
        whole = run_batch(tmp_path / "batch", config=config,
                          engine=EngineConfig(**engine))
        shard_reports = [
            json.loads(batch_to_json(run_batch(
                tmp_path / "batch", config=config,
                engine=EngineConfig(**engine), shard=(index, 2),
            )))
            for index in (0, 1)
        ]
        merged = merge_reports(shard_reports)
        assert canonical_json(merged) \
            == canonical_json(json.loads(batch_to_json(whole)))

    def test_merge_rejects_inconsistent_shards(self, tmp_path):
        _write_pairs(tmp_path / "batch", PAIRS[:2])
        config = AnalysisConfig()
        report = json.loads(batch_to_json(run_batch(
            tmp_path / "batch", config=config,
            engine=EngineConfig(jobs=1, cache_dir=None), shard=(0, 2),
        )))
        from repro.errors import AnalysisError

        with pytest.raises(AnalysisError, match="twice"):
            merge_reports([report, report])
        unsharded = json.loads(batch_to_json(run_batch(
            tmp_path / "batch", config=config,
            engine=EngineConfig(jobs=1, cache_dir=None),
        )))
        with pytest.raises(AnalysisError, match="no shard marker"):
            merge_reports([unsharded])

    def test_merge_rejects_mixed_portfolio_and_plain_shards(self, tmp_path):
        """A shard run without --portfolio cannot silently vanish into
        a portfolio merge — the mode mismatch is a hard error."""
        from repro.errors import AnalysisError

        _write_pairs(tmp_path / "plain", PAIRS[:1])
        _write_pairs(tmp_path / "port", PAIRS[1:2])
        plain = json.loads(batch_to_json(run_batch(
            tmp_path / "plain", config=AnalysisConfig(),
            engine=EngineConfig(jobs=1, cache_dir=None),
        )))
        portfolio = json.loads(batch_to_json(run_batch(
            tmp_path / "port", config=AnalysisConfig(),
            engine=EngineConfig(jobs=1, cache_dir=None, portfolio=True),
        )))
        plain["shard"], portfolio["shard"] = "0/2", "1/2"
        with pytest.raises(AnalysisError, match="non-portfolio"):
            merge_reports([plain, portfolio])

    def test_merge_marks_missing_shards_partial(self, tmp_path):
        _write_pairs(tmp_path / "batch", PAIRS)
        config = AnalysisConfig()
        report = json.loads(batch_to_json(run_batch(
            tmp_path / "batch", config=config,
            engine=EngineConfig(jobs=1, cache_dir=None), shard=(0, 2),
        )))
        merged = merge_reports([report])
        assert merged["partial"] is True
        assert merged["missing_shards"] == [1]

    def test_parse_shard_spec(self):
        from repro.errors import AnalysisError

        assert parse_shard_spec("0/2") == (0, 2)
        assert parse_shard_spec("3/4") == (3, 4)
        for bad in ("2/2", "-1/2", "x/2", "1", "1/0"):
            with pytest.raises(AnalysisError):
                parse_shard_spec(bad)


class TestPartialFlush:
    def test_interrupted_batch_flushes_completed_pairs(self, tmp_path,
                                                       monkeypatch):
        _write_pairs(tmp_path / "batch", PAIRS[:3])
        import repro.engine.executor as executor_module

        real_execute = executor_module.execute_job
        calls = {"n": 0}

        def interrupting(job, timeout=None, attempt=0):
            calls["n"] += 1
            if calls["n"] == 3:
                raise KeyboardInterrupt()
            return real_execute(job, timeout, attempt)

        monkeypatch.setattr(executor_module, "execute_job", interrupting)
        report = run_batch(
            tmp_path / "batch", config=AnalysisConfig(),
            engine=EngineConfig(jobs=1, cache_dir=None),
        )
        assert report.partial is True
        assert len(report.results) == 2
        assert all(r.status == "ok" for r in report.results)
        # The flushed slice is mergeable: it reads back like any shard
        # report (modulo the shard marker).
        data = json.loads(batch_to_json(report))
        assert data["partial"] is True
        assert len(data["results"]) == 2

    def test_interrupted_batch_cli_exits_130(self, tmp_path, monkeypatch,
                                             capsys):
        from repro.cli import main
        _write_pairs(tmp_path / "batch", PAIRS[:2])
        import repro.engine.executor as executor_module

        monkeypatch.setattr(
            executor_module, "execute_job",
            lambda job, timeout=None, attempt=0: (_ for _ in ()).throw(
                KeyboardInterrupt()),
        )
        code = main(["batch", str(tmp_path / "batch"), "--no-cache",
                     "--format", "json"])
        assert code == 130
        data = json.loads(capsys.readouterr().out)
        assert data["partial"] is True
        assert data["results"] == []

    def test_interrupted_suite_flushes_partial_table(self, monkeypatch,
                                                     capsys):
        from repro.cli import main
        import repro.engine.executor as executor_module

        real_execute = executor_module.execute_job
        calls = {"n": 0}

        def interrupting(job, timeout=None, attempt=0):
            calls["n"] += 1
            if calls["n"] == 2:
                raise KeyboardInterrupt()
            return real_execute(job, timeout, attempt)

        monkeypatch.setattr(executor_module, "execute_job", interrupting)
        code = main(["suite", "--names", "join,ex2", "--no-cache"])
        assert code == 130
        captured = capsys.readouterr()
        assert "PARTIAL" in captured.err
        assert "1/2" in captured.err

    def test_sigterm_maps_to_keyboard_interrupt(self):
        import os
        import signal as signal_module

        from repro.cli import _sigterm_as_interrupt

        with _sigterm_as_interrupt():
            with pytest.raises(KeyboardInterrupt):
                os.kill(os.getpid(), signal_module.SIGTERM)
        # Restored afterwards: the handler is no longer ours.
        assert signal_module.getsignal(signal_module.SIGTERM) \
            is signal_module.SIG_DFL


class TestCliShardCommands:
    def test_batch_shard_and_merge_shards_cli(self, tmp_path, capsys):
        from repro.cli import main

        _write_pairs(tmp_path / "batch", PAIRS)
        outputs = []
        for index in (0, 1):
            code = main([
                "batch", str(tmp_path / "batch"), "--shard", f"{index}/2",
                "--cache-dir", str(tmp_path / f"cache-{index}"),
                "--format", "json",
            ])
            assert code == 0
            payload = capsys.readouterr().out
            path = tmp_path / f"shard{index}.json"
            path.write_text(payload)
            outputs.append(path)
        code = main([
            "merge-shards", str(outputs[0]), str(outputs[1]),
            "-o", str(tmp_path / "merged.json"), "--canonical",
            "--cache-dir", str(tmp_path / "cache-merged"),
            "--source-caches",
            f"{tmp_path / 'cache-0'},{tmp_path / 'cache-1'}",
        ])
        assert code == 0
        merged = json.loads((tmp_path / "merged.json").read_text())
        assert merged["pair_names"] == sorted(n for n, _b in PAIRS)
        assert len(merged["results"]) == len(PAIRS)
        assert len(ResultCache(tmp_path / "cache-merged")) == len(PAIRS)

    def test_bad_shard_spec_is_a_cli_error(self, tmp_path, capsys):
        from repro.cli import main

        _write_pairs(tmp_path / "batch", PAIRS[:1])
        code = main(["batch", str(tmp_path / "batch"), "--shard", "2/2"])
        assert code == 2
        assert "shard" in capsys.readouterr().err


class TestJobFromPayload:
    def test_unknown_fields_rejected(self):
        with pytest.raises(ServeError, match="typo"):
            job_from_payload(
                {"old_source": QUICK_OLD, "new_source": QUICK_NEW,
                 "config": {"typo": 1}},
                AnalysisConfig(),
            )

    def test_defaults_inherited_from_base(self):
        base = AnalysisConfig(degree=3)
        job = job_from_payload(
            {"old_source": QUICK_OLD, "new_source": QUICK_NEW},
            base,
        )
        assert job.config.degree == 3
        assert job.kind == "diff"

    def test_refute_payload(self):
        job = job_from_payload(
            {"kind": "refute", "old_source": QUICK_OLD,
             "new_source": QUICK_NEW, "candidate": 9},
            AnalysisConfig(),
        )
        assert job.candidate == 9.0


async def http_post_raw(port, path, payload):
    """Raw POST: returns (status, head text, parsed JSON body) so tests
    can assert response *headers* (``Retry-After``)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    body = json.dumps(payload).encode()
    writer.write(
        (
            f"POST {path} HTTP/1.1\r\nHost: localhost\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Content-Type: application/json\r\nConnection: close\r\n\r\n"
        ).encode() + body
    )
    await writer.drain()
    data = await reader.read()
    writer.close()
    try:
        await writer.wait_closed()
    except ConnectionError:
        pass
    head, _, rest = data.partition(b"\r\n\r\n")
    return int(head.split()[1]), head.decode(), json.loads(rest)


class TestAdmissionControl:
    """Load shedding (429 + Retry-After) and SIGTERM graceful drain."""

    SLOW_PAYLOAD = {"kind": "diff", "old_source": SLOW_OLD,
                    "new_source": SLOW_NEW, "name": "nested"}

    async def _wait_until(self, predicate, what):
        for _ in range(2000):
            if predicate():
                return
            await asyncio.sleep(0.01)
        raise AssertionError(f"timed out waiting for {what}")

    def test_overload_is_shed_with_429_and_retry_after(self, tmp_path):
        async def scenario():
            server = await started_server(tmp_path, max_concurrent=1,
                                          max_queue=0)
            try:
                inflight = asyncio.ensure_future(http_json(
                    server.port, "POST", "/analyze", self.SLOW_PAYLOAD))
                # Only once the slow request holds the single admission
                # slot is the next arrival deterministically sheddable.
                await self._wait_until(lambda: server._active == 1,
                                       "the slow request to be admitted")
                status, head, body = await http_post_raw(
                    server.port, "/analyze",
                    {"kind": "diff", "old_source": QUICK_OLD,
                     "new_source": QUICK_NEW, "name": "count"})
                assert status == 429
                assert "retry-after:" in head.lower()
                assert "overloaded" in body["error"]

                status, first = await inflight
                assert status == 200
                assert first["result"]["status"] == "ok"

                status, health = await http_json(
                    server.port, "GET", "/healthz")
                assert status == 200
                assert health["shed"] == 1
                # The worker-liveness block rides on /healthz.
                assert health["pool"]["alive"] >= 1
                assert health["pool"]["quarantined"] == 0
                assert health["engine"]["retries"] == 0

                # Once the slot frees up, requests are admitted again.
                status, after = await http_json(
                    server.port, "POST", "/analyze",
                    {"kind": "diff", "old_source": QUICK_OLD,
                     "new_source": QUICK_NEW, "name": "count"})
                assert status == 200
            finally:
                await server.stop()

        run_async(scenario())

    def test_sigterm_drains_in_flight_then_exits(self, tmp_path):
        import os
        import signal

        from repro.serve import serve_forever

        async def scenario():
            config = ServeConfig(port=0, workers=1,
                                 cache_dir=str(tmp_path / "serve-cache"),
                                 drain_timeout=60.0)
            started: list[AnalysisServer] = []
            serving = asyncio.ensure_future(
                serve_forever(config, ready=started.append))
            await self._wait_until(lambda: bool(started), "server start")
            server = started[0]

            inflight = asyncio.ensure_future(http_json(
                server.port, "POST", "/analyze", self.SLOW_PAYLOAD))
            await self._wait_until(lambda: server._active == 1,
                                   "the request to be in flight")
            os.kill(os.getpid(), signal.SIGTERM)
            await self._wait_until(lambda: server._draining, "drain start")

            # While draining, new analysis work is refused with 503 —
            # the probe-able "leaving the rotation" signal.
            status, head, body = await http_post_raw(
                server.port, "/analyze",
                {"kind": "diff", "old_source": QUICK_OLD,
                 "new_source": QUICK_NEW, "name": "count"})
            assert status == 503
            assert "retry-after:" in head.lower()
            status, health = await http_json(server.port, "GET", "/healthz")
            assert health["status"] == "draining"

            # The in-flight request still completes normally.
            status, result = await inflight
            assert status == 200
            assert result["result"]["status"] == "ok"

            assert await serving == 0  # drained, closed, exited cleanly

        run_async(scenario())

    def test_retry_after_is_derived_not_hardcoded(self, tmp_path):
        """Satellite of the cluster PR: the Retry-After hint reflects
        queue depth (overload) and the remaining drain budget
        (draining) instead of a constant second."""
        async def scenario():
            server = await started_server(tmp_path, max_concurrent=2)
            try:
                # Overload: a deep queue of slow requests pushes the
                # hint up; an empty queue with fast requests keeps it
                # at the 1s floor.
                server._latency_ewma = 2.0
                server._queued = 30
                deep = server._retry_after_seconds("overloaded")
                server._queued = 0
                shallow = server._retry_after_seconds("overloaded")
                assert shallow == 1
                assert deep >= 10 * shallow
                server._latency_ewma = 1000.0
                server._queued = 1000
                assert server._retry_after_seconds("overloaded") == 60

                # Draining: the hint is the remaining drain budget, so
                # a client retries after this process is gone.
                server._draining = True
                server._drain_deadline = \
                    asyncio.get_running_loop().time() + 7.0
                assert 6 <= server._retry_after_seconds("draining") <= 8
                status, head, _body = await http_post_raw(
                    server.port, "/analyze",
                    {"kind": "diff", "old_source": QUICK_OLD,
                     "new_source": QUICK_NEW, "name": "count"})
                assert status == 503
                retry_after = [
                    line.split(":", 1)[1].strip()
                    for line in head.splitlines()
                    if line.lower().startswith("retry-after:")
                ]
                assert retry_after and 6 <= int(retry_after[0]) <= 8
            finally:
                await server.stop()

        run_async(scenario())

    def test_draining_gauge_flips_in_metrics(self, tmp_path):
        async def scenario():
            server = await started_server(tmp_path)
            try:
                _status, _head, text = await http_text(
                    server.port, "GET", "/metrics")
                assert _metric_value(text, "repro_server_draining") == 0
                server._draining = True
                _status, _head, text = await http_text(
                    server.port, "GET", "/metrics")
                assert _metric_value(text, "repro_server_draining") == 1
            finally:
                server._draining = False
                await server.stop()

        run_async(scenario())


def _synthetic_shard(index, count, names, first_key=0):
    """A minimal, well-formed shard report dict for merge tests."""
    ordered = sorted(names)
    return {
        "directory": "batch",
        "seconds": 0.1,
        "shard": f"{index}/{count}",
        "partial": False,
        "pairs_total": len(ordered),
        "pair_names": ordered,
        "stats": {"submitted": len(ordered), "completed": len(ordered),
                  "errors": 0, "timeouts": 0, "cancelled": 0,
                  "cache_hits": 0, "retries": 0, "seconds": 0.1},
        "results": [
            {"job_key": f"{first_key + position:064x}", "name": name,
             "kind": "diff", "status": "ok", "outcome": "threshold",
             "threshold": 1.0, "threshold_str": "1", "message": "",
             "error_type": None, "config_summary": "d1", "seconds": 0.0,
             "cached": False, "timings": {}, "attempts": 1}
            for position, name in enumerate(ordered)
        ],
    }


class TestMergeAdversarialInputs:
    """merge_reports must fail loudly on inputs that would silently
    double-count: duplicate shard markers, overlapping pair sets, and
    re-merging an already-merged partial report."""

    def test_duplicate_shard_markers_rejected(self):
        from repro.errors import AnalysisError

        shard = _synthetic_shard(0, 2, ["alpha"])
        twin = _synthetic_shard(0, 2, ["beta"], first_key=8)
        with pytest.raises(AnalysisError, match="twice"):
            merge_reports([shard, twin])

    def test_overlapping_pair_sets_rejected(self):
        from repro.errors import AnalysisError

        shard0 = _synthetic_shard(0, 2, ["alpha", "beta"])
        shard1 = _synthetic_shard(1, 2, ["beta", "gamma"], first_key=8)
        with pytest.raises(AnalysisError, match="claimed by two shards"):
            merge_reports([shard0, shard1])

    def test_remerging_a_merged_partial_report_fails_loudly(self):
        from repro.errors import AnalysisError

        merged = merge_reports([_synthetic_shard(0, 2, ["alpha"])])
        assert merged["partial"] is True
        assert merged["missing_shards"] == [1]
        # Alone, or folded in with the shard it is missing: both are
        # stats double-counting and must be refused by name.
        with pytest.raises(AnalysisError, match="merged partial report"):
            merge_reports([merged])
        late = _synthetic_shard(1, 2, ["beta"], first_key=8)
        with pytest.raises(AnalysisError, match="merging a merge"):
            merge_reports([merged, late])

    def test_complete_merge_of_disjoint_shards_still_works(self):
        merged = merge_reports([
            _synthetic_shard(0, 2, ["alpha"]),
            _synthetic_shard(1, 2, ["beta"], first_key=8),
        ])
        assert merged["partial"] is False
        assert merged["pair_names"] == ["alpha", "beta"]
        assert merged["stats"]["submitted"] == 2
