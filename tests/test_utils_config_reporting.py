"""Tests for utilities, configuration and benchmark reporting."""

from fractions import Fraction

import pytest

from repro.config import AnalysisConfig
from repro.errors import AnalysisError
from repro.utils import FreshNameGenerator, Stopwatch
from repro.utils.rationals import (
    as_fraction,
    fraction_to_str,
    rationalize,
    snap_to_int,
)


class TestRationals:
    def test_as_fraction_exact_types(self):
        assert as_fraction(3) == Fraction(3)
        assert as_fraction(Fraction(1, 3)) == Fraction(1, 3)

    def test_as_fraction_float(self):
        assert as_fraction(0.5) == Fraction(1, 2)

    def test_as_fraction_rejects_strings(self):
        with pytest.raises(TypeError):
            as_fraction("1/2")

    def test_rationalize_limits_denominator(self):
        value = rationalize(1 / 3, max_denominator=100)
        assert value == Fraction(1, 3)

    def test_rationalize_rejects_nan(self):
        with pytest.raises(ValueError):
            rationalize(float("nan"))

    def test_snap_to_int(self):
        assert snap_to_int(99.9999999) == 100
        assert snap_to_int(99.5) == 99.5
        assert snap_to_int(-0.0000001) == 0

    def test_fraction_to_str(self):
        assert fraction_to_str(Fraction(4, 2)) == "2"
        assert fraction_to_str(Fraction(1, 3)) == "1/3"


class TestNaming:
    def test_fresh_names_unique(self):
        generator = FreshNameGenerator()
        names = {generator.fresh("x") for _ in range(10)}
        assert len(names) == 10

    def test_prefixes_independent(self):
        generator = FreshNameGenerator()
        assert generator.fresh("a") == "a!0"
        assert generator.fresh("b") == "b!0"
        assert generator.fresh("a") == "a!1"

    def test_reset(self):
        generator = FreshNameGenerator()
        generator.fresh("a")
        generator.reset()
        assert generator.fresh("a") == "a!0"


class TestStopwatch:
    def test_phases_accumulate(self):
        watch = Stopwatch()
        with watch.phase("a"):
            pass
        with watch.phase("a"):
            pass
        with watch.phase("b"):
            pass
        assert watch.elapsed("a") >= 0
        assert set(watch.as_dict()) == {"a", "b"}
        assert watch.total() == pytest.approx(
            watch.elapsed("a") + watch.elapsed("b")
        )

    def test_exception_still_recorded(self):
        watch = Stopwatch()
        with pytest.raises(RuntimeError):
            with watch.phase("x"):
                raise RuntimeError("boom")
        assert watch.elapsed("x") >= 0


class TestAnalysisConfig:
    def test_defaults_match_paper(self):
        config = AnalysisConfig()
        assert config.degree == 2
        assert config.max_products == 2

    def test_validation(self):
        with pytest.raises(AnalysisError):
            AnalysisConfig(degree=-1)
        with pytest.raises(AnalysisError):
            AnalysisConfig(max_products=0)
        with pytest.raises(AnalysisError):
            AnalysisConfig(lp_backend="gurobi")


class TestReporting:
    @pytest.fixture(scope="class")
    def outcome(self):
        from repro.bench import get_pair, run_pair

        return run_pair(get_pair("ex4"))

    def test_text_table(self, outcome):
        from repro.bench import format_table

        table = format_table([outcome])
        assert "ex4" in table and "201" in table and "ok" in table

    def test_markdown(self, outcome):
        from repro.bench import format_markdown

        markdown = format_markdown([outcome])
        assert markdown.startswith("| Benchmark")
        assert "| ex4 |" in markdown

    def test_csv(self, outcome):
        import csv
        import io

        from repro.bench import format_csv

        rows = list(csv.DictReader(io.StringIO(format_csv([outcome]))))
        assert rows[0]["benchmark"] == "ex4"
        assert rows[0]["matches_paper"] == "True"

    def test_row_dict(self, outcome):
        row = outcome.row()
        assert row["tight"] == 201
        assert row["is_tight"] is True
