"""Unit tests for template construction and constraint collection
(paper Steps 1-2)."""

from repro.core.constraints import (
    LOWER,
    UPPER,
    TemplateSet,
    collect_certificate_constraints,
    differential_constraint,
)
from repro.invariants import generate_invariants
from repro.lang import load_program
from repro.poly.monomial import Monomial
from repro.poly.template import TemplatePolynomial
from repro.utils.naming import FreshNameGenerator

SOURCE = """
proc p(n) {
  assume(1 <= n && n <= 9);
  var i = 0;
  while (i < n) { tick(1); i = i + 1; }
}
"""

NONDET_SOURCE = """
proc p(n) {
  assume(1 <= n && n <= 9);
  var k = 0;
  k = nondet(0, n);
  tick(k);
}
"""


class TestTemplateSet:
    def test_one_template_per_location(self):
        system = load_program(SOURCE).system
        templates = TemplateSet.build(system, degree=2, prefix="x")
        assert set(templates.templates) == set(system.locations)

    def test_template_size_matches_monomial_count(self):
        system = load_program(SOURCE).system
        templates = TemplateSet.build(system, degree=2, prefix="x")
        # 2 state variables (n, i; cost excluded), degree 2: C(4,2) = 6.
        for location in system.locations:
            assert len(templates.at(location).monomials()) == 6

    def test_cost_excluded_from_templates(self):
        system = load_program(SOURCE).system
        templates = TemplateSet.build(system, degree=1, prefix="x")
        for location in system.locations:
            for mono in templates.at(location).monomials():
                assert "cost" not in mono.variables

    def test_symbol_names_carry_location(self):
        system = load_program(SOURCE).system
        templates = TemplateSet.build(system, degree=1, prefix="pfx")
        symbol = sorted(templates.symbols)[0]
        assert symbol.startswith("u[pfx][")


class TestConstraintCollection:
    def _collect(self, source, kind):
        lowered = load_program(source)
        invariants = generate_invariants(lowered.system)
        templates = TemplateSet.build(lowered.system, 2, "t")
        return lowered, collect_certificate_constraints(
            lowered.system, invariants, templates, kind,
            FreshNameGenerator(),
        )

    def test_one_constraint_per_transition_plus_terminal(self):
        lowered, constraints = self._collect(SOURCE, UPPER)
        # Transitions: entry, loop body, loop exit; plus terminal cond.
        assert len(constraints) == len(lowered.system.transitions) + 1
        assert constraints[-1].name.endswith("terminal")

    def test_premises_include_invariants_and_guards(self):
        _, constraints = self._collect(SOURCE, UPPER)
        loop_constraint = next(c for c in constraints if ".t1" in c.name)
        premise_text = " ".join(str(p) for p in loop_constraint.premise)
        assert "n" in premise_text  # invariant facts about n present

    def test_upper_and_lower_are_negations(self):
        _, upper = self._collect(SOURCE, UPPER)
        _, lower = self._collect(SOURCE, LOWER)
        # For the same transition, consequent_U = -consequent_L up to
        # the different template symbol prefixes; check the cost delta
        # enters with opposite signs via the constant coefficient.
        up = next(c for c in upper if ".t1" in c.name)
        low = next(c for c in lower if ".t1" in c.name)
        up_const = up.consequent.coefficient(Monomial.one()).constant_term
        low_const = low.consequent.coefficient(Monomial.one()).constant_term
        assert up_const == -1  # phi side pays the tick
        assert low_const == 1  # chi side receives it

    def test_nondet_update_introduces_bounded_fresh_variable(self):
        _, constraints = self._collect(NONDET_SOURCE, UPPER)
        havoc = next(
            c for c in constraints
            if any("nd[" in str(p) for p in c.premise)
        )
        premise_text = " ".join(str(p) for p in havoc.premise)
        # Fresh variable bounded by 0 and n in the premise.
        assert "nd[k]" in premise_text
        consequent_vars = set()
        for mono in havoc.consequent.monomials():
            consequent_vars.update(mono.variables)
        assert any(v.startswith("nd[k]") for v in consequent_vars)


class TestDifferentialConstraint:
    def test_shape(self):
        system = load_program(SOURCE).system
        new_templates = TemplateSet.build(system, 1, "new")
        old_templates = TemplateSet.build(system, 1, "old")
        constraint = differential_constraint(
            tuple(system.init_constraint),
            new_templates.at(system.initial_location),
            old_templates.at(system.initial_location),
            TemplatePolynomial.from_symbol("t"),
        )
        assert constraint.name == "diffcost"
        coefficient = constraint.consequent.coefficient(Monomial.one())
        assert coefficient.coefficient("t") == 1
        # phi_new enters negatively, chi_old positively.
        new_symbol = sorted(new_templates.symbols)[0]
        assert any(
            constraint.consequent.coefficient(m).coefficient(new_symbol) != 0
            for m in constraint.consequent.monomials()
        )
