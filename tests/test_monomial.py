"""Unit tests for monomials."""

import pytest

from repro.poly.monomial import Monomial, monomials_up_to_degree


class TestMonomialBasics:
    def test_one_is_constant(self):
        assert Monomial.one().is_constant()
        assert Monomial.one().degree == 0
        assert str(Monomial.one()) == "1"

    def test_zero_exponents_dropped(self):
        assert Monomial({"x": 0}) == Monomial.one()

    def test_negative_exponent_rejected(self):
        with pytest.raises(ValueError):
            Monomial({"x": -1})

    def test_non_integer_exponent_rejected(self):
        with pytest.raises(TypeError):
            Monomial({"x": 1.5})

    def test_degree_sums_exponents(self):
        assert Monomial({"x": 2, "y": 3}).degree == 5

    def test_of_builds_single_variable(self):
        mono = Monomial.of("x", 3)
        assert mono.exponent("x") == 3
        assert mono.exponent("y") == 0

    def test_is_linear(self):
        assert Monomial.of("x").is_linear()
        assert not Monomial.of("x", 2).is_linear()
        assert not Monomial({"x": 1, "y": 1}).is_linear()
        assert not Monomial.one().is_linear()

    def test_str_renders_powers(self):
        assert str(Monomial({"x": 2, "y": 1})) == "x^2*y"


class TestMonomialOperations:
    def test_multiply_adds_exponents(self):
        product = Monomial.of("x") * Monomial({"x": 1, "y": 2})
        assert product == Monomial({"x": 2, "y": 2})

    def test_divides(self):
        assert Monomial.of("x").divides(Monomial({"x": 2, "y": 1}))
        assert not Monomial.of("z").divides(Monomial({"x": 2}))

    def test_evaluate(self):
        assert Monomial({"x": 2, "y": 1}).evaluate({"x": 3, "y": 4}) == 36

    def test_rename_merges(self):
        renamed = Monomial({"x": 1, "y": 2}).rename({"x": "y"})
        assert renamed == Monomial({"y": 3})

    def test_ordering_by_degree_then_lex(self):
        x, y = Monomial.of("x"), Monomial.of("y")
        assert Monomial.one() < x < y < x * x

    def test_hashable_and_equal(self):
        assert hash(Monomial({"x": 1})) == hash(Monomial({"x": 1}))
        assert len({Monomial.of("x"), Monomial.of("x")}) == 1


class TestMonomialEnumeration:
    def test_degree_zero(self):
        assert monomials_up_to_degree(["x"], 0) == [Monomial.one()]

    def test_two_variables_degree_two(self):
        # Degree-lexicographic: within degree 2, x*y sorts before x^2
        # because the exponent tuple ('x', 1) precedes ('x', 2).
        names = [str(m) for m in monomials_up_to_degree(["x", "y"], 2)]
        assert names == ["1", "x", "y", "x*y", "x^2", "y^2"]

    def test_count_matches_binomial(self):
        # C(n + d, d) monomials of degree <= d over n variables.
        result = monomials_up_to_degree(["a", "b", "c"], 3)
        assert len(result) == 20

    def test_duplicates_in_input_ignored(self):
        assert (monomials_up_to_degree(["x", "x"], 1)
                == monomials_up_to_degree(["x"], 1))

    def test_negative_degree_rejected(self):
        with pytest.raises(ValueError):
            monomials_up_to_degree(["x"], -1)
