"""Tests for automatic cost instrumentation."""

import pytest

from repro.lang import load_program, lower_program, parse_program
from repro.lang.instrument import (
    LOOP_BOUND_MODEL,
    STEP_COUNT_MODEL,
    CostModel,
    count_ticks,
    instrument,
)
from repro.lang.typecheck import check_program
from repro.ts import CostSearch

PLAIN = """
proc p(n) {
  assume(1 <= n && n <= 10);
  var i = 0;
  while (i < n) {
    if (i < 5) { i = i + 1; } else { i = i + 2; }
  }
}
"""


def lower(program):
    check_program(program)
    return lower_program(program)


class TestLoopBoundModel:
    def test_cost_equals_trip_count(self):
        program = instrument(parse_program(PLAIN), LOOP_BOUND_MODEL)
        system = lower(program).system
        search = CostSearch(system)
        # 1 per iteration: n iterations while i < 5, then ceil steps.
        low, high = search.cost_bounds({"n": 4, "i": 0})
        assert low == high == 4
        low, high = search.cost_bounds({"n": 8, "i": 0})
        assert low == high == 5 + 2  # i: 0..5 by ones, then 5->7->9

    def test_original_ast_untouched(self):
        original = parse_program(PLAIN)
        instrument(original, LOOP_BOUND_MODEL)
        assert count_ticks(original.body) == 0

    def test_existing_ticks_preserved(self):
        source = PLAIN.replace("{ i = i + 1; }", "{ tick(7); i = i + 1; }")
        program = instrument(parse_program(source), LOOP_BOUND_MODEL)
        assert count_ticks(program.body) == 2


class TestStepCountModel:
    def test_assignments_and_branches_charged(self):
        program = instrument(parse_program(PLAIN), STEP_COUNT_MODEL)
        # var i = 0 (assignment) + branch + two branch-arm assignments.
        assert count_ticks(program.body) == 4

    def test_executable_after_instrumentation(self):
        program = instrument(parse_program(PLAIN), STEP_COUNT_MODEL)
        system = lower(program).system
        search = CostSearch(system)
        low, high = search.cost_bounds({"n": 2, "i": 0})
        # decl(1) + per iteration: branch(1) + assign(1) = 2 * 2.
        assert low == high == 1 + 2 * 2


class TestCostModelValidation:
    def test_empty_model_rejected(self):
        with pytest.raises(ValueError):
            CostModel()

    def test_diffcost_on_instrumented_pair(self):
        from repro import analyze_diffcost
        from repro.lang.lower import lower_program as lower_fn

        old_ast = instrument(parse_program(PLAIN), LOOP_BOUND_MODEL)
        new_ast = instrument(
            parse_program(PLAIN), CostModel(loop_iteration=2)
        )
        check_program(old_ast)
        check_program(new_ast)
        old = lower_fn(old_ast, name="old")
        new = lower_fn(new_ast, name="new")
        result = analyze_diffcost(old, new)
        assert result.is_threshold
        # New charges double: diff = trip count <= 10.
        assert float(result.threshold) >= 10 - 1e-6
