"""Property-based differential tests of the exact LP backends.

A seeded random-LP generator (bounded *rational* coefficients, every
bound kind including degenerate fixed variables, duplicated constraints
and empty bounds) drives two differential properties:

- the exact backends (``exact``, ``exact-warm``, ``exact-dense``) are
  interchangeable: identical statuses on every instance, bit-identical
  ``Fraction`` optima, exactly-feasible reported points, and the same
  structured rejection of empty bounds;
- :class:`~repro.lp.dual.IncrementalLP` is invisible: a chain of
  objective swaps and bound tweaks over one factorized basis produces
  exactly the status and optimum a cold re-encode of each intermediate
  model produces.

Plain ``random`` with fixed seeds — deterministic, stdlib only.
"""

import random
from dataclasses import dataclass, replace
from fractions import Fraction

import pytest

from repro.errors import LPError
from repro.lp import (
    DenseSimplexBackend,
    IncrementalLP,
    LPModel,
    LPStatus,
    RevisedSimplexBackend,
    WarmStartExactBackend,
)
from repro.poly.linexpr import AffineExpr

SEED = 20260731

FREE, LOWER, UPPER, BOTH, FIXED, EMPTY = (
    "free", "lower", "upper", "both", "fixed", "empty"
)


@dataclass(frozen=True)
class LPSpec:
    """A fully materializable random LP (so cold re-encodes can build
    as many fresh, identical models as they need)."""

    bounds: tuple  # (name, kind, low, high) per variable
    constraints: tuple  # (coeffs, constant, sense) per constraint
    objective: tuple  # coeffs by name


def _rational(rng: random.Random, span: int = 9) -> Fraction:
    return Fraction(rng.randint(-span, span), rng.randint(1, 9))


def make_spec(rng: random.Random, allow_empty: bool = False) -> LPSpec:
    names = [f"v{i}" for i in range(rng.randint(2, 4))]
    kinds = [FREE, LOWER, LOWER, UPPER, BOTH, BOTH, FIXED]
    if allow_empty:
        kinds = kinds + [EMPTY]
    bounds = []
    for name in names:
        kind = rng.choice(kinds)
        low = _rational(rng, 5)
        width = abs(_rational(rng, 6))
        if kind == FIXED:
            bounds.append((name, kind, low, low))
        elif kind == EMPTY:
            bounds.append((name, kind, low + width + 1, low))
        else:
            bounds.append((name, kind, low, low + width))
        del width
    constraints = []
    for _ in range(rng.randint(1, 5)):
        if constraints and rng.random() < 0.2:
            # A duplicated (fully redundant) constraint: primal
            # degeneracy by construction.
            constraints.append(rng.choice(constraints))
            continue
        coeffs = tuple(
            (name, _rational(rng)) for name in names if rng.random() < 0.8
        )
        constraints.append(
            (coeffs, _rational(rng, 6), "==" if rng.random() < 0.4 else ">=")
        )
    objective = tuple((name, _rational(rng, 3)) for name in names)
    return LPSpec(tuple(bounds), tuple(constraints), objective)


def build_model(spec: LPSpec, objective: tuple | None = None,
                overrides: dict | None = None) -> LPModel:
    """A fresh model for ``spec`` — the cold re-encode the incremental
    solver must be indistinguishable from.  ``overrides`` replaces
    ``(low, high)`` bounds per variable (for bound-tweak chains)."""
    model = LPModel()
    for name, kind, low, high in spec.bounds:
        if overrides and name in overrides:
            low, high = overrides[name]
            model.add_variable(name, low, high)
        elif kind == FREE:
            model.add_variable(name)
        elif kind == LOWER:
            model.add_variable(name, low)
        elif kind == UPPER:
            model.add_variable(name, None, high)
        else:  # BOTH / FIXED / EMPTY
            model.add_variable(name, low, high)
    for coeffs, constant, sense in spec.constraints:
        expr = AffineExpr.constant(constant)
        for name, coeff in coeffs:
            expr = expr + coeff * AffineExpr.variable(name)
        if sense == "==":
            model.add_equality(expr)
        else:
            model.add_inequality(expr)
    expr = AffineExpr.zero()
    for name, coeff in (objective or spec.objective):
        expr = expr + coeff * AffineExpr.variable(name)
    model.minimize(expr)
    return model


def _objective_expr(objective: tuple) -> AffineExpr:
    expr = AffineExpr.zero()
    for name, coeff in objective:
        expr = expr + coeff * AffineExpr.variable(name)
    return expr


EXACT_BACKENDS = (RevisedSimplexBackend, WarmStartExactBackend,
                  DenseSimplexBackend)


class TestExactTrioProperty:
    def test_exact_backends_bit_identical(self):
        rng = random.Random(SEED)
        statuses_seen = set()
        for trial in range(80):
            spec = make_spec(rng)
            solutions = [cls().solve(build_model(spec))
                         for cls in EXACT_BACKENDS]
            reference = solutions[0]
            for solution in solutions[1:]:
                assert solution.status == reference.status, (trial, spec)
            statuses_seen.add(reference.status)
            if reference.status is LPStatus.OPTIMAL:
                for solution in solutions:
                    assert isinstance(solution.objective_value, Fraction), \
                        trial
                    # Bit-identical rational optimum.
                    assert solution.objective_value \
                        == reference.objective_value, (trial, spec)
                    # The reported point is *exactly* feasible and
                    # exactly attains the optimum.
                    model = build_model(spec)
                    assert model.check_assignment(solution.values) == [], \
                        (trial, spec)
                    attained = _objective_expr(spec.objective).evaluate(
                        {name: solution.values.get(name, Fraction(0))
                         for name in dict(spec.objective)}
                    )
                    assert attained == reference.objective_value, \
                        (trial, spec)
        # The population must exercise every outcome, or the property
        # quietly stops meaning anything.
        assert statuses_seen == {
            LPStatus.OPTIMAL, LPStatus.INFEASIBLE, LPStatus.UNBOUNDED
        }

    def test_empty_bounds_rejected_identically(self):
        rng = random.Random(SEED + 1)
        exercised = 0
        for _trial in range(40):
            spec = make_spec(rng, allow_empty=True)
            empty_names = [name for name, kind, _low, _high in spec.bounds
                           if kind == EMPTY]
            if not empty_names:
                continue
            exercised += 1
            for cls in EXACT_BACKENDS:
                with pytest.raises(LPError) as excinfo:
                    cls().solve(build_model(spec))
                # Every backend names an offending variable.
                assert any(name in str(excinfo.value)
                           for name in empty_names), (cls, spec)
        assert exercised >= 5, "generator stopped producing empty bounds"


class TestIncrementalProperty:
    def test_objective_swaps_match_cold_re_encodes(self):
        rng = random.Random(SEED + 2)
        compared = 0
        for trial in range(25):
            spec = make_spec(rng)
            incremental = IncrementalLP(build_model(spec))
            objectives = [spec.objective] + [
                tuple((name, _rational(rng, 3))
                      for name, _kind, _low, _high in spec.bounds)
                for _ in range(4)
            ]
            for step, objective in enumerate(objectives):
                warm = incremental.solve(_objective_expr(objective))
                cold = RevisedSimplexBackend().solve(
                    build_model(spec, objective=objective))
                assert warm.status == cold.status, (trial, step, spec)
                if cold.status is LPStatus.OPTIMAL:
                    compared += 1
                    assert warm.objective_value == cold.objective_value, \
                        (trial, step, spec)
                    model = build_model(spec, objective=objective)
                    assert model.check_assignment(warm.values) == [], \
                        (trial, step, spec)
        assert compared >= 25, "too few optimal swaps exercised"

    def test_bound_tweaks_match_cold_re_encodes(self):
        rng = random.Random(SEED + 3)
        compared = 0
        for trial in range(15):
            spec = make_spec(rng)
            # Give every variable two-sided bounds so any of them can be
            # tweaked (update_upper needs a finite upper to patch).
            spec = replace(spec, bounds=tuple(
                (name, BOTH, low, low + abs(high - low) + 2)
                for name, _kind, low, high in spec.bounds
            ))
            current = {name: (low, high)
                       for name, _kind, low, high in spec.bounds}
            incremental = IncrementalLP(
                build_model(spec, overrides=current))
            incremental.solve(_objective_expr(spec.objective))
            for step in range(4):
                name = rng.choice(list(current))
                low, _high = current[name]
                new_upper = low + abs(_rational(rng, 5))
                current[name] = (low, new_upper)
                warm = incremental.update_upper(name, new_upper)
                cold = RevisedSimplexBackend().solve(
                    build_model(spec, overrides=current))
                assert warm.status == cold.status, (trial, step, name)
                if cold.status is LPStatus.OPTIMAL:
                    compared += 1
                    assert warm.objective_value == cold.objective_value, \
                        (trial, step, name, spec)
                    model = build_model(spec, overrides=current)
                    assert model.check_assignment(warm.values) == [], \
                        (trial, step, name)
        assert compared >= 15, "too few optimal tweaks exercised"

    def test_mixed_swap_and_tweak_chain_matches_dense_oracle(self):
        """One long interleaved chain, checked against the seed dense
        simplex (the independent oracle) at every step."""
        rng = random.Random(SEED + 4)
        spec = make_spec(rng)
        spec = replace(spec, bounds=tuple(
            (name, BOTH, low, low + abs(high - low) + 3)
            for name, _kind, low, high in spec.bounds
        ))
        current = {name: (low, high) for name, _kind, low, high in spec.bounds}
        objective = spec.objective
        incremental = IncrementalLP(build_model(spec, overrides=current))
        incremental.solve(_objective_expr(objective))
        for step in range(12):
            if step % 3 == 2:
                name = rng.choice(list(current))
                low, _high = current[name]
                new_upper = low + abs(_rational(rng, 5))
                current[name] = (low, new_upper)
                warm = incremental.update_upper(name, new_upper)
            else:
                objective = tuple((name, _rational(rng, 3))
                                  for name in current)
                warm = incremental.solve(_objective_expr(objective))
            cold = DenseSimplexBackend().solve(
                build_model(spec, objective=objective, overrides=current))
            assert warm.status == cold.status, step
            if cold.status is LPStatus.OPTIMAL:
                assert warm.objective_value == cold.objective_value, step
