"""Tests of the parallel portfolio analysis engine (`repro.engine`)."""

import json

import pytest

from repro.config import AnalysisConfig, EngineConfig
from repro.engine import (
    AnalysisJob,
    JobResult,
    ParallelExecutor,
    ResultCache,
    discover_pairs,
    format_batch_table,
    batch_to_json,
    run_batch,
    run_portfolio,
    select_result,
)
from repro.errors import AnalysisError

OLD = """
proc count(n) {
  assume(1 <= n && n <= 10);
  var i = 0;
  while (i < n) { tick(1); i = i + 1; }
}
"""

NEW = OLD.replace("tick(1)", "tick(2)")

FAST = AnalysisConfig(degree=1, max_products=1)


def make_job(**overrides):
    payload = dict(kind="diff", old_source=OLD, new_source=NEW,
                   config=FAST, name="count")
    payload.update(overrides)
    return AnalysisJob(**payload)


class TestJobModel:
    def test_key_is_stable(self):
        assert make_job().key == make_job().key

    def test_key_ignores_display_name(self):
        assert make_job(name="a").key == make_job(name="b").key

    def test_key_changes_with_config(self):
        assert make_job().key != make_job(config=AnalysisConfig()).key
        assert (
            make_job().key
            != make_job(config=AnalysisConfig(degree=1, max_products=1,
                                              check_samples=7)).key
        )

    def test_key_changes_with_sources_and_kind(self):
        assert make_job().key != make_job(old_source=NEW).key
        assert make_job().key != make_job(kind="refute", candidate=5.0).key

    def test_kind_validation(self):
        with pytest.raises(AnalysisError):
            AnalysisJob(kind="frobnicate", old_source=OLD, new_source=NEW)
        with pytest.raises(AnalysisError):
            AnalysisJob(kind="diff", old_source=OLD)
        with pytest.raises(AnalysisError):
            AnalysisJob(kind="bound", old_source=OLD, new_source=NEW)

    def test_roundtrip(self):
        job = make_job()
        assert AnalysisJob.from_dict(job.to_dict()).key == job.key

    def test_inline_execution_keeps_analysis_object(self):
        result = ParallelExecutor(jobs=1).run([make_job()])[0]
        assert result.status == "ok"
        assert result.threshold == 10.0
        assert result.analysis is not None
        assert result.analysis.is_threshold


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        executor = ParallelExecutor(jobs=1, cache=cache)
        first = executor.run([make_job()])[0]
        second = executor.run([make_job()])[0]
        assert not first.cached
        assert second.cached
        assert executor.stats.cache_hits == 1
        assert second.threshold == first.threshold
        assert second.seconds == 0.0  # a replay costs this run nothing
        assert len(cache) == 1

    def test_orphaned_temp_files_invisible(self, tmp_path):
        cache = ResultCache(tmp_path)
        ParallelExecutor(jobs=1, cache=cache).run([make_job()])
        (tmp_path / ".tmp-orphan.json").write_text("{}")
        assert len(cache) == 1
        assert cache.clear() == 1
        assert (tmp_path / ".tmp-orphan.json").exists()

    def test_config_change_invalidates(self, tmp_path):
        executor = ParallelExecutor(jobs=1, cache=ResultCache(tmp_path))
        executor.run([make_job()])
        richer = executor.run([make_job(config=AnalysisConfig())])[0]
        assert not richer.cached
        assert executor.stats.cache_hits == 0

    def test_failures_are_not_cached(self, tmp_path):
        cache = ResultCache(tmp_path)
        executor = ParallelExecutor(jobs=1, cache=cache)
        bad = make_job(old_source="proc p( {")
        first = executor.run([bad])[0]
        second = executor.run([bad])[0]
        assert first.status == "error" and second.status == "error"
        assert not second.cached
        assert len(cache) == 0

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        executor = ParallelExecutor(jobs=1, cache=cache)
        executor.run([make_job()])
        cache.path_for(make_job().key).write_text("not json")
        again = ParallelExecutor(jobs=1, cache=ResultCache(tmp_path))
        assert not again.run([make_job()])[0].cached

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        ParallelExecutor(jobs=1, cache=cache).run([make_job()])
        assert cache.clear() == 1
        assert len(cache) == 0


class TestStructuredFailures:
    def test_parse_error_inline(self):
        result = ParallelExecutor(jobs=1).run(
            [make_job(old_source="proc p( {")]
        )[0]
        assert result.status == "error"
        assert result.error_type == "ParseError"
        assert "expected identifier" in result.message
        assert result.traceback

    def test_parse_error_in_worker(self):
        result = ParallelExecutor(jobs=2).run(
            [make_job(new_source="while (true) {}")]
        )[0]
        assert result.status == "error"
        assert result.error_type == "ParseError"

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_timeout_surfaces_structurally(self, jobs):
        slow = make_job(config=AnalysisConfig(degree=3, max_products=3))
        result = ParallelExecutor(jobs=jobs, timeout=0.02).run([slow])[0]
        assert result.status == "timeout"
        assert result.error_type == "JobTimeoutError"
        assert "budget" in result.message

    def test_failure_does_not_poison_the_batch(self):
        jobs = [make_job(old_source="proc p( {"), make_job()]
        results = ParallelExecutor(jobs=2).run(jobs)
        assert results[0].status == "error"
        assert results[1].status == "ok"
        assert results[1].threshold == 10.0


def _rung(threshold, status="ok", outcome="threshold"):
    return JobResult(job_key="k", name="r", kind="diff", status=status,
                     outcome=outcome, threshold=threshold)


class TestPortfolio:
    def test_best_picks_minimal_threshold_among_successes(self):
        rungs = [
            _rung(None, status="ok", outcome="unknown"),   # rung failed (✗)
            _rung(42.0),
            _rung(10.0),
            _rung(17.0),
        ]
        chosen = select_result(rungs, "best")
        assert chosen.threshold == 10.0

    def test_first_picks_lowest_succeeding_rung(self):
        rungs = [
            _rung(None, status="ok", outcome="unknown"),
            _rung(42.0),
            _rung(10.0),
        ]
        assert select_result(rungs, "first").threshold == 42.0

    def test_empty_ladder(self):
        assert ParallelExecutor(jobs=2).run_escalating([]) == []
        assert ParallelExecutor(jobs=1).run_escalating([]) == []

    def test_no_success_returns_none(self):
        rungs = [_rung(None, status="ok", outcome="unknown"),
                 _rung(None, status="error", outcome=None)]
        assert select_result(rungs, "first") is None
        assert select_result(rungs, "best") is None

    def test_unknown_mode_rejected(self):
        with pytest.raises(AnalysisError):
            select_result([], "fastest")

    def test_escalation_skips_higher_rungs_after_success(self):
        portfolio = run_portfolio(
            OLD, NEW, "count", ParallelExecutor(jobs=1), base=FAST,
            mode="first",
        )
        assert portfolio.succeeded
        assert portfolio.threshold == 10.0
        assert portfolio.chosen_rung_index() == 0
        assert [r.status for r in portfolio.rungs[1:]] == ["cancelled"] * 3

    def test_escalation_abandons_running_losers(self):
        # Rung 0 succeeds in ~1s while rung 1 (d=3, K=3) needs far
        # longer; "first" mode must not drain the loser.
        import time

        fast = make_job()
        slow = make_job(config=AnalysisConfig(degree=3, max_products=3))
        executor = ParallelExecutor(jobs=2)
        start = time.perf_counter()
        results = executor.run_escalating([fast, slow])
        elapsed = time.perf_counter() - start
        assert results[0].succeeded
        assert results[1].status == "cancelled"
        assert elapsed < 8.0

    def test_best_mode_runs_every_rung(self):
        portfolio = run_portfolio(
            OLD, NEW, "count", ParallelExecutor(jobs=2), base=FAST,
            mode="best",
        )
        assert portfolio.succeeded
        assert portfolio.threshold == 10.0
        assert all(r.status == "ok" for r in portfolio.rungs)

    def test_refutation_stage_certifies_tight_threshold(self):
        # count's threshold 10 is exactly tight (n = 10 exhibits the
        # full difference), so probing candidate 9 must refute.
        portfolio = run_portfolio(
            OLD, NEW, "count", ParallelExecutor(jobs=1), base=FAST,
            mode="first", refute=True,
        )
        assert portfolio.succeeded
        assert portfolio.refutation is not None
        assert portfolio.refutation.kind == "refute"
        assert portfolio.refutation.status == "ok"
        assert portfolio.refutation.outcome == "refuted"
        assert portfolio.tight is True
        # The probe rides the winning rung's template shape with the
        # exact backend, and its certified gap is exact.
        assert portfolio.refutation.config_summary["lp_backend"] == (
            "exact-warm"
        )
        assert portfolio.refutation.exact_threshold() == 10

    def test_tight_property_reflects_probe_outcome(self):
        from repro.engine.portfolio import PortfolioResult

        def probe(status, outcome):
            return JobResult(job_key="k", name="count[refute]",
                             kind="refute", status=status,
                             outcome=outcome)

        portfolio = PortfolioResult(name="count", mode="first",
                                    chosen=None, rungs=[])
        assert portfolio.tight is None                     # no probe
        portfolio.refutation = probe("ok", "refuted")
        assert portfolio.tight is True                     # certified
        portfolio.refutation = probe("ok", "unknown")
        assert portfolio.tight is False                    # slack?
        portfolio.refutation = probe("timeout", None)
        assert portfolio.tight is None                     # no answer

    def test_no_refutation_stage_by_default(self):
        portfolio = run_portfolio(
            OLD, NEW, "count", ParallelExecutor(jobs=1), base=FAST,
            mode="first",
        )
        assert portfolio.refutation is None
        assert portfolio.tight is None

    def test_escalation_statuses_match_across_jobs_with_warm_cache(
            self, tmp_path):
        # Warm every rung (best mode), then escalate with jobs=1 and
        # jobs=2: statuses and cache-hit counts must be identical —
        # pre-fetched hits past the winner must not replay as "ok".
        warm = ParallelExecutor(jobs=1, cache=ResultCache(tmp_path))
        run_portfolio(OLD, NEW, "count", warm, base=FAST, mode="best")

        runs = []
        for jobs in (1, 2):
            executor = ParallelExecutor(jobs=jobs,
                                        cache=ResultCache(tmp_path))
            portfolio = run_portfolio(OLD, NEW, "count", executor,
                                      base=FAST, mode="first")
            runs.append(([r.status for r in portfolio.rungs],
                         executor.stats.cache_hits))
        assert runs[0] == runs[1]
        assert runs[0] == (["ok", "cancelled", "cancelled", "cancelled"], 1)

    def test_escalation_finished_loser_is_not_abandoned_running(self):
        # Both rungs finish about together; the loser's future is done,
        # which must not trip the worker-termination path (cancel()
        # returns False for finished futures too).
        fast_a = make_job()
        fast_b = make_job(config=AnalysisConfig(degree=1, max_products=2))
        results = ParallelExecutor(jobs=2).run_escalating([fast_a, fast_b])
        assert results[0].succeeded
        assert results[1].status == "cancelled"

    def test_portfolio_seconds_excludes_cached_rungs(self, tmp_path):
        executor = ParallelExecutor(jobs=1, cache=ResultCache(tmp_path))
        cold = run_portfolio(OLD, NEW, "count", executor, base=FAST)
        warm = run_portfolio(OLD, NEW, "count", executor, base=FAST)
        assert cold.seconds > 0
        assert warm.seconds == 0  # answered entirely from disk

    def test_timeout_falls_back_without_sigalrm(self):
        # Inline execution from a non-main thread cannot install the
        # interval timer; the job must still run (without a budget)
        # instead of failing before the analysis starts.
        import threading

        outcome = {}

        def worker():
            executor = ParallelExecutor(jobs=1, timeout=30.0)
            outcome["result"] = executor.run([make_job()])[0]

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        assert outcome["result"].status == "ok"
        assert outcome["result"].threshold == 10.0


@pytest.fixture
def pair_dir(tmp_path):
    for name, delta in [("alpha", 2), ("beta", 3)]:
        (tmp_path / f"{name}_old.imp").write_text(OLD)
        (tmp_path / f"{name}_new.imp").write_text(
            OLD.replace("tick(1)", f"tick({delta})")
        )
    return tmp_path


class TestBatch:
    def test_discovery_sorted_and_validated(self, pair_dir):
        pairs = discover_pairs(pair_dir)
        assert [pair.name for pair in pairs] == ["alpha", "beta"]
        (pair_dir / "gamma_old.imp").write_text(OLD)
        with pytest.raises(AnalysisError, match="unpaired"):
            discover_pairs(pair_dir)

    def test_empty_directory_rejected(self, tmp_path):
        with pytest.raises(AnalysisError, match="no .*pairs"):
            discover_pairs(tmp_path)

    def test_jobs1_and_jobs4_identical(self, pair_dir):
        sequential = run_batch(
            pair_dir, config=FAST, engine=EngineConfig(jobs=1)
        )
        parallel = run_batch(
            pair_dir, config=FAST, engine=EngineConfig(jobs=4)
        )
        assert sequential.ok and parallel.ok
        assert sequential.thresholds() == parallel.thresholds() == {
            "alpha": 10.0, "beta": 20.0,
        }

    def test_second_run_hits_cache(self, pair_dir, tmp_path):
        cache_dir = str(tmp_path / "cache")
        engine = EngineConfig(jobs=1, cache_dir=cache_dir)
        first = run_batch(pair_dir, config=FAST, engine=engine)
        second = run_batch(pair_dir, config=FAST, engine=engine)
        assert first.stats.cache_hits == 0
        assert second.stats.cache_hits == 2
        assert second.thresholds() == first.thresholds()

    def test_portfolio_batch(self, pair_dir):
        report = run_batch(
            pair_dir, config=FAST,
            engine=EngineConfig(jobs=1, portfolio=True),
        )
        assert report.ok
        assert report.thresholds() == {"alpha": 10.0, "beta": 20.0}
        assert len(report.portfolios) == 2

    def test_portfolio_best_batch_selects_per_pair(self, pair_dir):
        report = run_batch(
            pair_dir, config=FAST,
            engine=EngineConfig(jobs=2, portfolio=True,
                                portfolio_mode="best"),
        )
        assert report.ok
        assert report.thresholds() == {"alpha": 10.0, "beta": 20.0}
        # Best mode runs every rung of every pair on one pool.
        assert all(r.status == "ok" for r in report.results)

    def test_portfolio_ok_absorbs_losing_rung_failures(self):
        # A losing rung timing out must not fail the batch as long as
        # the pair still produced a winner; a pair with no winner and
        # a failed rung must.
        from repro.engine import BatchReport, PortfolioResult

        timed_out = _rung(None, status="timeout", outcome=None)
        winner = _rung(10.0)
        unknown = _rung(None, status="ok", outcome="unknown")

        won = PortfolioResult(name="a", mode="first", chosen=winner,
                              rungs=[timed_out, winner])
        report = BatchReport(directory="d", results=won.rungs,
                             portfolios=[won])
        assert report.ok

        lost = PortfolioResult(name="b", mode="first", chosen=None,
                               rungs=[timed_out, unknown])
        report = BatchReport(directory="d", results=lost.rungs,
                             portfolios=[lost])
        assert not report.ok

        all_unknown = PortfolioResult(name="c", mode="first", chosen=None,
                                      rungs=[unknown, unknown])
        report = BatchReport(directory="d", results=all_unknown.rungs,
                             portfolios=[all_unknown])
        assert report.ok  # sound ✗ on every rung is a completed answer

    def test_portfolio_table_separates_failures_from_sound_x(self):
        from repro.engine import BatchReport, PortfolioResult

        timed_out = _rung(None, status="timeout", outcome=None)
        unknown = _rung(None, status="ok", outcome="unknown")
        report = BatchReport(
            directory="d",
            results=[timed_out, unknown, unknown],
            portfolios=[
                PortfolioResult(name="broke", mode="first", chosen=None,
                                rungs=[timed_out, unknown]),
                PortfolioResult(name="sound", mode="first", chosen=None,
                                rungs=[unknown]),
            ],
        )
        table = format_batch_table(report)
        broke_line = next(l for l in table.splitlines() if "broke" in l)
        sound_line = next(l for l in table.splitlines() if "sound" in l)
        assert "failed" in broke_line and "1 failed" in broke_line
        assert "✗" in sound_line and "failed" not in sound_line

    def test_report_renderings(self, pair_dir):
        report = run_batch(pair_dir, config=FAST, engine=EngineConfig(jobs=1))
        table = format_batch_table(report)
        assert "alpha" in table and "cache hits" in table
        payload = json.loads(batch_to_json(report))
        assert payload["stats"]["completed"] == 2
        assert len(payload["results"]) == 2


class TestEngineConfig:
    def test_validation(self):
        with pytest.raises(AnalysisError):
            EngineConfig(jobs=0)
        with pytest.raises(AnalysisError):
            EngineConfig(timeout=-1)
        with pytest.raises(AnalysisError):
            EngineConfig(portfolio_mode="fastest")

    def test_executor_rejects_bad_jobs_as_repro_error(self):
        # ReproError, so the CLI renders `error: ...` instead of a
        # traceback (e.g. `suite --jobs 0`).
        with pytest.raises(AnalysisError):
            ParallelExecutor(jobs=0)

    def test_suite_cli_bad_jobs_clean_error(self, capsys):
        from repro.cli import main

        assert main(["suite", "--names", "ex4", "--jobs", "0"]) == 2
        assert "error" in capsys.readouterr().err


class TestSuiteThroughEngine:
    def test_parallel_suite_matches_sequential(self):
        from repro.bench import run_suite

        sequential = run_suite(names=["ex4", "dis2"])
        parallel = run_suite(names=["ex4", "dis2"], jobs=2)
        # Registry (Table 1) order, regardless of completion order.
        assert [o.pair.name for o in parallel] == ["dis2", "ex4"]
        assert [o.computed for o in parallel] == [o.computed for o in sequential]
        assert all(o.is_tight for o in parallel)

    def test_cached_suite_rows_report_zero_seconds(self, tmp_path):
        from repro.bench import format_csv, format_table, run_suite

        cache_dir = str(tmp_path / "cache")
        run_suite(names=["ex4"], cache_dir=cache_dir)
        replay = run_suite(names=["ex4"], cache_dir=cache_dir)[0]
        assert replay.cached
        assert replay.seconds == 0.0
        assert replay.computed == pytest.approx(201.0)
        assert "(cached)" in format_table([replay])
        assert "cached" in format_csv([replay]).splitlines()[0]

    def test_infra_failure_is_not_a_paper_x(self):
        # A timed-out job must not masquerade as the paper's sound ✗
        # (ex7's paper row failed too, so this is the dangerous case).
        from repro.bench import run_suite

        outcome = run_suite(names=["ex7"], timeout=0.01)[0]
        assert outcome.job_status == "timeout"
        assert outcome.computed is None
        assert not outcome.matches_paper_shape
        assert "job timeout" in outcome.result.message
        assert outcome.row()["job_status"] == "timeout"


class TestBatchCLI:
    def test_batch_command(self, pair_dir, capsys):
        from repro.cli import main

        code = main(["batch", str(pair_dir), "-d", "1", "-K", "1",
                     "--no-cache"])
        out = capsys.readouterr().out
        assert code == 0
        assert "alpha" in out and "beta" in out
        assert "2 job(s)" in out

    def test_batch_json_and_cache(self, pair_dir, tmp_path, capsys):
        from repro.cli import main

        cache_dir = str(tmp_path / "cache")
        args = ["batch", str(pair_dir), "-d", "1", "-K", "1",
                "--cache-dir", cache_dir, "--format", "json"]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["stats"]["cache_hits"] == 2

    def test_portfolio_mode_implies_portfolio(self, pair_dir, capsys):
        from repro.cli import main

        assert main(["batch", str(pair_dir), "-d", "1", "-K", "1",
                     "--portfolio-mode", "best", "--no-cache"]) == 0
        out = capsys.readouterr().out
        # Portfolio table rows carry the winning rung label.
        assert "d1K1:scipy" in out or "d2K2:scipy" in out

    def test_batch_missing_directory(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["batch", str(tmp_path / "nope")]) == 2
        assert "error" in capsys.readouterr().err
