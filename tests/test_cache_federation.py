"""Cache federation over live HTTP: delta/merge endpoints, the
coordinator's federation round, and the drop-fault sites.

A fleet of ``serve`` nodes each accumulates cache entries locally; one
federation round (pull deltas, union, push merges) must converge them
to the same cache without ever laundering an entry a local ``get``
would refuse.  The protocol is first-writer-wins on content-addressed
keys, so every leg is idempotent and retryable — which is what the
``cache.delta_drop`` / ``cache.merge_drop`` chaos sites exercise.
"""

import asyncio
import threading

import pytest

from repro.config import AnalysisConfig, CoordConfig, ServeConfig
from repro.coord import CoordinatorServer, ResilientClient
from repro.engine.cache import ResultCache
from repro.engine.cache.federation import federate_round, merge_deltas
from repro.engine.jobs import AnalysisJob, JobResult
from repro.faults import FaultPlan, set_plan
from repro.serve import AnalysisServer

TEST_DEADLINE = 180

FAST = AnalysisConfig(degree=1, max_products=1)


def job(index: int) -> AnalysisJob:
    source = (
        "proc p(n) {\n"
        f"  assume(1 <= n && n <= {index + 2});\n"
        "  var i = 0;\n"
        "  while (i < n) { tick(1); i = i + 1; }\n"
        "}\n"
    )
    return AnalysisJob(kind="single", old_source=source,
                       config=AnalysisConfig(), name=f"fed{index}")


def seed_cache(directory, indices) -> list[str]:
    cache = ResultCache(directory, backend="warm")
    keys = []
    for index in indices:
        the_job = job(index)
        assert cache.put(the_job, JobResult(
            job_key=the_job.key, name=the_job.name, kind=the_job.kind,
            status="ok", outcome="bounded", threshold=float(index),
            threshold_str=str(index), message=f"fed entry {index}",
            seconds=0.1,
        ))
        keys.append(the_job.key)
    return keys


class LiveNode:
    """A real AnalysisServer on its own event-loop thread so blocking
    federation clients can reach it over actual sockets."""

    def __init__(self, cache_dir, cache_backend="warm"):
        self.port = None
        self.server = None
        self._settings = {"port": 0, "workers": 1,
                          "cache_dir": str(cache_dir),
                          "cache_backend": cache_backend}
        self._loop = None
        self._stopping = None
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        assert self._ready.wait(30), "node failed to start"

    def _run(self):
        asyncio.run(self._main())

    async def _main(self):
        self._loop = asyncio.get_running_loop()
        self._stopping = asyncio.Event()
        self.server = AnalysisServer(ServeConfig(**self._settings))
        await self.server.start()
        self.port = self.server.port
        self._ready.set()
        await self._stopping.wait()
        await self.server.stop()

    @property
    def url(self):
        return f"http://127.0.0.1:{self.port}"

    def stop(self):
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self._stopping.set)
        self._thread.join(timeout=30)


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    set_plan(None)
    yield
    set_plan(None)


def fast_client(retries=3):
    return ResilientClient(deadline=10.0, retries=retries,
                           backoff_base=0.001, seed=2022)


class TestDeltaEndpoint:
    def test_delta_serves_trusted_entries_and_watermarks(self, tmp_path):
        keys = seed_cache(tmp_path / "a", range(3))
        node = LiveNode(tmp_path / "a")
        try:
            status, body = fast_client().get(
                f"{node.url}/cache/delta?since=0.0")
            assert status == 200
            assert body["count"] == 3
            assert sorted(r["key"] for r in body["records"]) == sorted(keys)
            assert body["watermark"] > 0.0
            # Nothing newer than the watermark: the next pull is empty.
            status, drained = fast_client().get(
                f"{node.url}/cache/delta?since={body['watermark']!r}")
            assert status == 200
            assert drained["count"] == 0
        finally:
            node.stop()

    def test_malformed_since_is_a_structured_400(self, tmp_path):
        from repro.coord.client import ClientError

        seed_cache(tmp_path / "a", range(1))
        node = LiveNode(tmp_path / "a")
        try:
            with pytest.raises(ClientError) as error:
                fast_client().get(f"{node.url}/cache/delta?since=yesterday")
            assert error.value.status == 400
        finally:
            node.stop()


class TestMergeEndpoint:
    def test_merge_applies_once_and_is_idempotent(self, tmp_path):
        seed_cache(tmp_path / "a", range(3))
        node_a = LiveNode(tmp_path / "a")
        node_b = LiveNode(tmp_path / "b")
        try:
            _status, delta = fast_client().get(
                f"{node_a.url}/cache/delta?since=0.0")
            status, outcome = fast_client().post(
                f"{node_b.url}/cache/merge", {"records": delta["records"]})
            assert status == 200
            assert outcome == {"applied": 3, "skipped": 0}
            # Re-delivery is a no-op: first writer already won.
            _status, again = fast_client().post(
                f"{node_b.url}/cache/merge", {"records": delta["records"]})
            assert again == {"applied": 0, "skipped": 0}
        finally:
            node_a.stop()
            node_b.stop()
        merged = ResultCache(tmp_path / "b", backend="warm")
        assert len(merged) == 3

    def test_merge_rejects_malformed_bodies(self, tmp_path):
        from repro.coord.client import ClientError

        seed_cache(tmp_path / "a", range(1))
        node = LiveNode(tmp_path / "a")
        try:
            with pytest.raises(ClientError) as error:
                fast_client().post(f"{node.url}/cache/merge",
                                   {"entries": []})
            assert error.value.status == 400
        finally:
            node.stop()


class TestFederationRound:
    def test_two_nodes_converge_to_the_union(self, tmp_path):
        keys_a = seed_cache(tmp_path / "a", (0, 1))
        keys_b = seed_cache(tmp_path / "b", (2,))
        node_a = LiveNode(tmp_path / "a")
        node_b = LiveNode(tmp_path / "b")
        watermarks: dict[str, float] = {}
        try:
            summary = federate_round(fast_client(),
                                     [node_a.url, node_b.url], watermarks)
            assert summary["failed"] == []
            assert summary["union"] == 3
            assert summary["applied"] == 3  # 1 onto A, 2 onto B
            assert set(watermarks) == {node_a.url, node_b.url}
            # A second round applies nothing (first writer already won
            # everywhere — re-delivery is a no-op), and the advanced
            # watermarks then silence the third round completely.
            again = federate_round(fast_client(),
                                   [node_a.url, node_b.url], watermarks)
            assert again["applied"] == 0
            third = federate_round(fast_client(),
                                   [node_a.url, node_b.url], watermarks)
            assert third["union"] == 0
        finally:
            node_a.stop()
            node_b.stop()
        for directory in (tmp_path / "a", tmp_path / "b"):
            cache = ResultCache(directory, backend="warm")
            for key in (*keys_a, *keys_b):
                assert cache.get(key) is not None, (directory, key)

    def test_drop_faults_are_absorbed_by_retries(self, tmp_path):
        seed_cache(tmp_path / "a", (0, 1))
        seed_cache(tmp_path / "b", (2,))
        # Both legs shed once: the node answers 503, the resilient
        # client backs off and retries, the round still converges.
        plan = FaultPlan.from_dict({"seed": 1, "rules": [
            {"site": "cache.delta_drop", "times": 1, "max_attempts": 0},
            {"site": "cache.merge_drop", "times": 1, "max_attempts": 0},
        ]})
        set_plan(plan)
        node_a = LiveNode(tmp_path / "a")
        node_b = LiveNode(tmp_path / "b")
        try:
            summary = federate_round(fast_client(),
                                     [node_a.url, node_b.url], {})
            assert plan.fired() == 2
            assert summary["failed"] == []
            assert summary["applied"] == 3
        finally:
            node_a.stop()
            node_b.stop()
        assert len(ResultCache(tmp_path / "a", backend="warm")) == 3
        assert len(ResultCache(tmp_path / "b", backend="warm")) == 3

    def test_unreachable_node_fails_without_poisoning_the_round(
            self, tmp_path):
        seed_cache(tmp_path / "a", (0, 1))
        node_a = LiveNode(tmp_path / "a")
        dead_url = "http://127.0.0.1:9"
        watermarks: dict[str, float] = {}
        try:
            summary = federate_round(fast_client(retries=0),
                                     [node_a.url, dead_url], watermarks)
            assert summary["failed"] == [dead_url]
            assert node_a.url in summary["per_node"]
            assert dead_url not in watermarks  # retried from 0 next round
        finally:
            node_a.stop()

    def test_merge_deltas_union_earliest_writer_wins(self):
        union = merge_deltas([
            [{"key": "k1", "ts": 5.0, "entry": {"a": 1}},
             {"key": "k2", "ts": 3.0, "entry": {"b": 1}}],
            [{"key": "k1", "ts": 2.0, "entry": {"a": 2}},
             "garbage", {"key": 7}],
        ])
        assert [record["key"] for record in union] == ["k1", "k2"]
        assert union[0]["ts"] == 2.0  # the earliest write of k1 won


class TestCoordinatorFederation:
    async def _drive(self, tmp_path, node_urls):
        coordinator = CoordinatorServer(
            CoordConfig(port=0, nodes=tuple(node_urls),
                        heartbeat_interval=30.0, client_retries=1,
                        backoff_base=0.001),
            FAST,
        )
        await coordinator.start()
        try:
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", coordinator.port)
            writer.write(b"POST /cache/federate HTTP/1.1\r\n"
                         b"Host: localhost\r\nContent-Length: 0\r\n"
                         b"Connection: close\r\n\r\n")
            await writer.drain()
            data = await reader.read()
            writer.close()
            health = coordinator._healthz()
        finally:
            await coordinator.stop()
        import json as json_module

        head, _, rest = data.partition(b"\r\n\r\n")
        return int(head.split()[1]), json_module.loads(rest), health

    def test_post_cache_federate_converges_the_fleet(self, tmp_path):
        seed_cache(tmp_path / "a", (0, 1))
        seed_cache(tmp_path / "b", (2, 3))
        node_a = LiveNode(tmp_path / "a")
        node_b = LiveNode(tmp_path / "b")
        try:
            status, summary, health = asyncio.run(asyncio.wait_for(
                self._drive(tmp_path, [node_a.url, node_b.url]),
                timeout=TEST_DEADLINE))
            assert status == 200
            assert summary["union"] == 4
            assert summary["applied"] == 4
            assert summary["failed"] == []
            assert health["federation_rounds"] == 1
        finally:
            node_a.stop()
            node_b.stop()
        assert len(ResultCache(tmp_path / "a", backend="warm")) == 4
        assert len(ResultCache(tmp_path / "b", backend="warm")) == 4

    def test_federate_without_nodes_is_a_503(self, tmp_path):
        status, body, _health = asyncio.run(asyncio.wait_for(
            self._drive(tmp_path, []), timeout=TEST_DEADLINE))
        assert status == 503
        assert "no live nodes" in body["error"]
