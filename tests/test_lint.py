"""Tests of the static analyzer (``repro.lint``) and runtime sanitizer.

Three layers:

- checker semantics over the fixture modules in
  ``repro/lint/fixtures/`` (every rule: at least one true positive and
  one pragma-suppressed case);
- the driver (pragma spans, baseline ratchet, CLI exit codes) plus the
  acceptance property that a ``float(...)`` cast seeded into
  ``lp/basis.py`` is caught;
- the runtime sanitizer: trap semantics, float-stage re-entry, and the
  end-to-end guarantee that a float construction smuggled into an
  exact solve raises under ``REPRO_SANITIZE=1``.
"""

import json
import subprocess
import sys
from fractions import Fraction
from pathlib import Path

import pytest

import repro
import repro.lp.basis as basis_mod
from repro.cli import main as cli_main
from repro.config import LintConfig
from repro.errors import AnalysisError
from repro.lint import (
    Contracts,
    ExactnessViolation,
    exact_region,
    fingerprint,
    float_stage,
    lint_file,
    lint_paths,
    load_baseline,
    render_json,
    render_text,
    sanitizer,
    unsuppressed,
    write_baseline,
)
from repro.lint.engine import module_key
from repro.lp.backend import get_backend
from repro.lp.model import LPModel
from repro.poly.linexpr import AffineExpr

FIXTURES = Path(repro.__file__).parent / "lint" / "fixtures"
SRC_ROOT = Path(repro.__file__).parent
TESTS_ROOT = Path(__file__).parent

FIXTURE_CONTRACTS = Contracts(
    exact_modules=("repro/lint/fixtures/float_cases.py",),
    determinism=(("repro/lint/fixtures/determinism_cases.py", ("*",)),),
    worker_modules=("repro/lint/fixtures/forksafety_cases.py",),
    approved_signal_sites=(
        ("repro/lint/fixtures/forksafety_cases.py", "approved_handler"),
    ),
)


def findings_for(name: str):
    return lint_file(FIXTURES / name, FIXTURE_CONTRACTS)


def by_rule(findings, rule):
    active = [f for f in findings if f.rule == rule and not f.suppressed]
    suppressed = [f for f in findings if f.rule == rule and f.suppressed]
    return active, suppressed


class TestFloatChecker:
    """Family 1: float taint in declared-exact modules."""

    @pytest.fixture(scope="class")
    def findings(self):
        return findings_for("float_cases.py")

    @pytest.mark.parametrize("rule", [
        "float-cast", "math-call", "float-literal", "int-division",
    ])
    def test_each_rule_has_positive_and_suppressed(self, findings, rule):
        active, suppressed = by_rule(findings, rule)
        assert active, f"no true positive for {rule}"
        assert suppressed, f"no pragma-suppressed case for {rule}"

    def test_indirect_float_ctor_is_caught(self, findings):
        active, _ = by_rule(findings, "float-cast")
        assert any("convert" in f.message for f in active)

    def test_literal_without_sink_is_quiet(self, findings):
        # literal_not_a_sink parks a float in a print(); no finding.
        quiet_lines = self._function_lines("literal_not_a_sink")
        assert not [f for f in findings if f.line in quiet_lines]

    def test_laundering_and_exact_division_are_quiet(self, findings):
        for name in ("laundered", "division_exact",
                     "division_unknown_operands"):
            lines = self._function_lines(name)
            assert not [f for f in findings if f.line in lines], name

    def test_function_level_pragma_covers_whole_body(self, findings):
        lines = self._function_lines("whole_function_allowed")
        covered = [f for f in findings if f.line in lines]
        assert covered and all(f.suppressed for f in covered)

    def test_outside_exact_modules_nothing_fires(self):
        source = "def f(x):\n    return float(x)\n"
        assert lint_file(FIXTURES / "float_cases.py", FIXTURE_CONTRACTS,
                         source=source, module="repro/other.py") == []

    @staticmethod
    def _function_lines(name: str) -> range:
        import ast

        tree = ast.parse((FIXTURES / "float_cases.py").read_text())
        for node in ast.walk(tree):
            if isinstance(node, ast.FunctionDef) and node.name == name:
                return range(node.lineno, node.end_lineno + 1)
        raise AssertionError(f"fixture function {name} not found")


class TestDeterminismChecker:
    """Family 2: canonical-output determinism."""

    @pytest.fixture(scope="class")
    def findings(self):
        return findings_for("determinism_cases.py")

    @pytest.mark.parametrize("rule", [
        "unsorted-set-iter", "unsorted-dict-iter", "unsorted-glob",
        "time-call", "random-call", "id-call", "urandom-call",
    ])
    def test_each_rule_has_positive_and_suppressed(self, findings, rule):
        active, suppressed = by_rule(findings, rule)
        assert active, f"no true positive for {rule}"
        assert suppressed, f"no pragma-suppressed case for {rule}"

    def test_sorted_wrappers_and_seeded_random_are_quiet(self, findings):
        lines = {f.line for f in findings}
        import ast

        tree = ast.parse((FIXTURES / "determinism_cases.py").read_text())
        for node in ast.walk(tree):
            if isinstance(node, ast.FunctionDef) and node.name in (
                    "set_iter_sorted", "dict_iter_sorted",
                    "random_seeded_ok"):
                span = range(node.lineno, node.end_lineno + 1)
                assert not lines & set(span), node.name

    def test_bare_time_import_is_caught(self, findings):
        active, _ = by_rule(findings, "time-call")
        assert any("imported from time" in f.message for f in active)

    def test_family_pragma_suppresses(self, findings):
        # urandom_suppressed uses the family token `determinism`.
        _, suppressed = by_rule(findings, "urandom-call")
        assert suppressed

    def test_no_contract_means_no_findings(self):
        source = "import time\ndef f():\n    return time.time()\n"
        assert lint_file(FIXTURES / "determinism_cases.py",
                         FIXTURE_CONTRACTS, source=source,
                         module="repro/uncontracted.py") == []


class TestForkSafetyChecker:
    """Family 3: worker/fork safety."""

    @pytest.fixture(scope="class")
    def findings(self):
        return findings_for("forksafety_cases.py")

    @pytest.mark.parametrize("rule", [
        "mutable-global-write", "signal-registration",
    ])
    def test_each_rule_has_positive_and_suppressed(self, findings, rule):
        active, suppressed = by_rule(findings, rule)
        assert active, f"no true positive for {rule}"
        assert suppressed, f"no pragma-suppressed case for {rule}"

    def test_write_shapes_are_distinguished(self, findings):
        active, _ = by_rule(findings, "mutable-global-write")
        hows = {f.message.split(" module-level")[0] for f in active}
        assert {"writes an item of", "calls .add() on", "rebinds",
                "deletes an item of"} <= hows

    def test_local_shadow_and_reads_are_quiet(self, findings):
        assert not [f for f in findings
                    if "local_shadow" in f.message
                    or "read_only" in f.message]

    def test_contract_approved_signal_site_is_quiet(self, findings):
        assert not [f for f in findings
                    if "approved_handler" in f.message]

    def test_module_level_signal_registration_flagged(self):
        source = "import signal\nsignal.signal(2, None)\n"
        found = lint_file(FIXTURES / "forksafety_cases.py",
                          FIXTURE_CONTRACTS, source=source,
                          module="repro/anything.py")
        assert [f.rule for f in found] == ["signal-registration"]


class TestDriver:
    def test_module_key(self):
        assert module_key(Path("src/repro/lp/basis.py")) == \
            "repro/lp/basis.py"
        assert module_key(Path("/x/y/tests/test_lint.py")) == \
            "tests/test_lint.py"
        assert module_key(Path("setup.py")) == "setup.py"

    def test_syntax_error_is_a_finding(self, tmp_path):
        bad = tmp_path / "repro" / "broken.py"
        bad.parent.mkdir()
        bad.write_text("def f(:\n")
        (finding,) = lint_file(bad, FIXTURE_CONTRACTS)
        assert finding.rule == "syntax-error" and not finding.suppressed

    def test_dogfood_tree_is_clean(self):
        findings = lint_paths([SRC_ROOT, TESTS_ROOT])
        assert unsuppressed(findings) == [], render_text(findings)
        # The pragma-documented false positives exist and are counted.
        assert any(f.suppressed for f in findings)

    def test_seeded_float_cast_in_basis_fails_lint(self):
        # Acceptance check: any float(...) cast seeded into lp/basis.py
        # must produce an active finding.
        path = SRC_ROOT / "lp" / "basis.py"
        seeded = path.read_text() + (
            "\n\ndef _seeded(values):\n"
            "    return [float(v) for v in values]\n"
        )
        findings = lint_file(path, source=seeded)
        active = [f for f in unsuppressed(findings)
                  if f.rule == "float-cast"]
        assert active, "seeded float cast not caught"

    def test_baseline_ratchet(self, tmp_path):
        findings = findings_for("float_cases.py")
        assert unsuppressed(findings)
        baseline_file = tmp_path / "baseline.json"
        write_baseline(findings, baseline_file)
        baseline = load_baseline(baseline_file)
        assert unsuppressed(findings, baseline) == []
        # a new finding (different line) is not tolerated
        moved = findings[0].__class__(**{
            **findings[0].to_dict(), "line": findings[0].line + 1000,
            "suppressed": False,
        })
        assert unsuppressed([moved], baseline) == [moved]

    def test_render_formats(self):
        findings = findings_for("float_cases.py")
        text = render_text(findings, show_suppressed=True)
        assert "float-cast" in text and "[suppressed]" in text
        data = json.loads(render_json(findings))
        assert data["summary"]["active"] == len(unsuppressed(findings))
        assert {f["rule"] for f in data["findings"]} >= {
            "float-cast", "math-call"}

    def test_fingerprint_uses_module_not_path(self):
        finding = findings_for("float_cases.py")[0]
        assert fingerprint(finding).startswith(
            "repro/lint/fixtures/float_cases.py:")

    def test_cli_clean_tree_exits_zero(self, capsys):
        assert cli_main(["lint", str(SRC_ROOT), str(TESTS_ROOT)]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_cli_findings_exit_one_and_json(self, tmp_path, capsys):
        dirty = tmp_path / "repro" / "lp" / "basis.py"
        dirty.parent.mkdir(parents=True)
        dirty.write_text("def f(x):\n    return float(x)\n")
        assert cli_main(["lint", str(dirty), "--format", "json"]) == 1
        data = json.loads(capsys.readouterr().out)
        assert data["summary"]["active"] == 1

    def test_cli_baseline_roundtrip(self, tmp_path, capsys):
        dirty = tmp_path / "repro" / "lp" / "basis.py"
        dirty.parent.mkdir(parents=True)
        dirty.write_text("def f(x):\n    return float(x)\n")
        baseline = tmp_path / "baseline.json"
        assert cli_main(["lint", str(dirty),
                         "--write-baseline", str(baseline)]) == 0
        capsys.readouterr()
        assert cli_main(["lint", str(dirty),
                         "--baseline", str(baseline)]) == 0

    def test_lint_config_validates_format(self):
        with pytest.raises(AnalysisError):
            LintConfig(format="yaml")


@pytest.fixture
def sanitized(monkeypatch):
    monkeypatch.setenv(sanitizer.SANITIZE_ENV, "1")
    yield
    sanitizer._reset()


class TestSanitizer:
    def test_disabled_without_env(self, monkeypatch):
        monkeypatch.delenv(sanitizer.SANITIZE_ENV, raising=False)
        with exact_region("off"):
            assert float("1.5") == 1.5

    def test_trap_fires_inside_region(self, sanitized):
        with exact_region("demo"):
            with pytest.raises(ExactnessViolation, match="demo"):
                float("3.5")
        assert float("3.5") == 3.5  # disarmed on exit

    def test_isinstance_keeps_working_while_armed(self, sanitized):
        with exact_region("demo"):
            assert isinstance(1.5, float)
            assert not isinstance(Fraction(1, 2), float)
            assert issubclass(bool, int)  # unrelated checks unharmed

    def test_float_stage_reopens_the_boundary(self, sanitized):
        with exact_region("demo"):
            with float_stage("warm-start"):
                assert float("2.5") == 2.5
            with pytest.raises(ExactnessViolation):
                float("2.5")

    def test_nested_regions_and_stages(self, sanitized):
        with exact_region("outer"), exact_region("inner"):
            with float_stage("a"), float_stage("b"):
                assert float("1.0") == 1.0
            with pytest.raises(ExactnessViolation):
                float("1.0")
        assert float("1.0") == 1.0

    def test_inactive_region_is_noop(self, sanitized):
        with exact_region("float-solver", active=False):
            assert float("4.5") == 4.5

    def test_violation_names_call_site(self, sanitized):
        with exact_region("demo"):
            with pytest.raises(ExactnessViolation,
                               match="test_lint") as info:
                float(1)
        assert "exact region 'demo'" in str(info.value)


def _small_lp() -> LPModel:
    x, y = AffineExpr.variable("x"), AffineExpr.variable("y")
    model = LPModel()
    model.add_variable("x", 0)
    model.add_variable("y", 0)
    model.add_inequality(4 - x - y)
    model.minimize(x + 2 * y)
    return model


class TestSanitizedSolves:
    """End-to-end: the LP layer under ``REPRO_SANITIZE=1``."""

    @pytest.mark.parametrize("backend", ["exact", "exact-warm",
                                         "exact-dense"])
    def test_exact_backends_solve_clean(self, sanitized, backend):
        solution = get_backend(backend).solve(_small_lp())
        assert solution.value("x") == Fraction(0)

    def test_seeded_float_in_factorization_is_trapped(self, sanitized,
                                                      monkeypatch):
        # Acceptance check: a float(...) smuggled into the exact basis
        # factorization raises mid-solve.
        orig = basis_mod.BasisFactorization.ftran

        def tainted(self, col):
            return [float(v) for v in orig(self, col)]

        monkeypatch.setattr(basis_mod.BasisFactorization, "ftran",
                            tainted)
        with pytest.raises(ExactnessViolation, match="lp-"):
            get_backend("exact").solve(_small_lp())

    def test_incremental_lp_covered(self, sanitized, monkeypatch):
        from repro.lp.dual import IncrementalLP

        x, y = AffineExpr.variable("x"), AffineExpr.variable("y")
        model = LPModel()
        model.add_variable("x", 0, 10)
        model.add_variable("y", 0, 10)
        model.add_inequality(8 - x - y)
        model.minimize(-x - y)
        lp = IncrementalLP(model)
        assert lp.solve().objective_value == Fraction(-8)

        orig = basis_mod.BasisFactorization.ftran_dense

        def tainted(self, vec):
            return [float(v) for v in orig(self, vec)]

        monkeypatch.setattr(basis_mod.BasisFactorization, "ftran_dense",
                            tainted)
        with pytest.raises(ExactnessViolation):
            lp.update_upper("x", 3)

    def test_reports_identical_with_and_without_sanitizer(self, tmp_path):
        # Canonical report bytes must not depend on the sanitizer.
        script = (
            "from repro.lp.backend import get_backend\n"
            "from repro.lp.model import LPModel\n"
            "from repro.poly.linexpr import AffineExpr\n"
            "x, y = AffineExpr.variable('x'), AffineExpr.variable('y')\n"
            "model = LPModel()\n"
            "model.add_variable('x', 0)\n"
            "model.add_variable('y', 0)\n"
            "model.add_inequality(4 - x - y)\n"
            "model.minimize(x + 2 * y)\n"
            "s = get_backend('exact').solve(model)\n"
            "print(s.status, s.objective_value,"
            " s.value('x'), s.value('y'))\n"
        )
        import os

        outputs = {}
        for flag in ("0", "1"):
            result = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True, text=True, check=True,
                env={**os.environ, "REPRO_SANITIZE": flag,
                     "PYTHONPATH": "src"},
                cwd=Path(__file__).resolve().parent.parent,
            )
            outputs[flag] = result.stdout
        assert outputs["0"] == outputs["1"]
