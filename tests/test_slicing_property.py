"""Property test: cost-relevance slicing preserves observable cost.

For seeded random inputs (and both deterministic and random choosers),
running the interpreter over the original system and over
``slice_cost_relevant(system)`` must produce the same cost — sliced-away
variables are exactly those that cannot flow into guards, nondet bounds
or cost updates.  Ballast variables are added with the builder (program
``var`` initializers land in Θ0 and are therefore relevant by
definition).
"""

import random

import pytest

from repro.errors import InterpreterError
from repro.poly.polynomial import Polynomial
from repro.ts import Interpreter, LinIneq, TransitionSystemBuilder
from repro.ts.interpreter import first_choice, random_choice
from repro.ts.slicing import cost_relevant_variables, slice_cost_relevant

X = Polynomial.variable("x")
JUNK = Polynomial.variable("junk")
SHADOW = Polynomial.variable("shadow")


def ballast_loop():
    """Countdown with a free-running accumulator that never feeds a
    guard or a tick."""
    builder = TransitionSystemBuilder("ballast", ["x", "junk"])
    builder.assume_init_box({"x": (0, 12)})
    builder.transition("l0", "l0", guard=[LinIneq.geq(X, 1)],
                       updates={"x": X - 1, "junk": JUNK + X}, cost=3)
    builder.transition("l0", "l_out", guard=[LinIneq.leq(X, 0)])
    return builder.build("l0", "l_out")


def nondet_branch():
    """Nondeterministic tick(2)/tick(1) loop; ``shadow`` mutates on one
    branch only but stays invisible to cost."""
    builder = TransitionSystemBuilder("branchy", ["x", "shadow"])
    builder.assume_init_box({"x": (0, 10)})
    builder.transition("l0", "l0", guard=[LinIneq.geq(X, 1)],
                       updates={"x": X - 1}, cost=2)
    builder.transition("l0", "l0", guard=[LinIneq.geq(X, 1)],
                       updates={"x": X - 1, "shadow": SHADOW - X}, cost=1)
    builder.transition("l0", "l_out", guard=[LinIneq.leq(X, 0)])
    return builder.build("l0", "l_out")


SYSTEMS = {"ballast-loop": ballast_loop, "nondet-branch": nondet_branch}


def initial_inputs(system, rng):
    """Random Θ0-respecting inputs via rejection sampling against the
    interpreter's own initial-state validation."""
    interpreter = Interpreter(system)
    for _ in range(500):
        inputs = {name: rng.randint(0, 12)
                  for name in sorted(system.variables)
                  if name != "cost"}
        try:
            interpreter.initial_state(inputs)
        except InterpreterError:
            continue
        return inputs
    raise AssertionError("could not sample a valid initial state")


@pytest.mark.parametrize("name", sorted(SYSTEMS))
def test_slicing_preserves_cost(name):
    system = SYSTEMS[name]()
    sliced = slice_cost_relevant(system)
    dropped = set(system.variables) - set(sliced.variables)
    assert dropped, "fixture should have sliceable ballast"

    rng = random.Random(20220622)
    for trial in range(25):
        inputs = initial_inputs(system, rng)
        sliced_inputs = {k: v for k, v in inputs.items()
                         if k in sliced.variables}
        chooser_seed = rng.randint(0, 10**6)
        for chooser_of in (
            lambda: first_choice,
            lambda: random_choice(random.Random(chooser_seed)),
        ):
            cost = Interpreter(system).run(inputs, chooser_of()).cost
            sliced_cost = Interpreter(sliced).run(
                sliced_inputs, chooser_of()).cost
            assert cost == sliced_cost, (name, trial, inputs)


@pytest.mark.parametrize("name", sorted(SYSTEMS))
def test_relevant_variables_exclude_ballast(name):
    relevant = cost_relevant_variables(SYSTEMS[name]())
    assert "junk" not in relevant and "shadow" not in relevant
    assert "cost" in relevant and "x" in relevant


def test_slicing_is_idempotent():
    once = slice_cost_relevant(ballast_loop())
    twice = slice_cost_relevant(once)
    assert set(once.variables) == set(twice.variables)
    assert len(once.transitions) == len(twice.transitions)
