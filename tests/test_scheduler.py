"""Tests of the long-lived worker pool and cross-pair escalation
scheduler (`repro.engine.scheduler`)."""

import time
from fractions import Fraction

import pytest

from repro.config import AnalysisConfig, EngineConfig
from repro.engine import (
    AnalysisJob,
    JobResult,
    ParallelExecutor,
    ResultCache,
    WorkerPool,
    run_batch,
    select_result,
)
from repro.engine.scheduler import EscalationScheduler
from repro.errors import AnalysisError

COUNT_OLD = """
proc count(n) {
  assume(1 <= n && n <= 10);
  var i = 0;
  while (i < n) { tick(1); i = i + 1; }
}
"""

COUNT_NEW = COUNT_OLD.replace("tick(1)", "tick(2)")

# Quadratic cost over an UNBOUNDED domain with a constant difference:
# the certificate needs degree-2 potentials, so the d1K1 rung fails
# (sound x) and the ladder escalates to d2K2, which proves 1.
QUAD_OLD = """
proc quad(n) {
  assume(0 <= n);
  var i = 0;
  var j = 0;
  while (i < n) {
    j = 0;
    while (j < i) { tick(1); j = j + 1; }
    i = i + 1;
  }
}
"""

QUAD_NEW = QUAD_OLD.replace("var i = 0;", "tick(1);\n  var i = 0;")

# Cubic-cost pair: d2K2 succeeds but takes seconds — a reliably *slow*
# rung for ordering-sensitive tests (the fast rungs take well under a
# second).
NESTED_OLD = """
proc nested(n, m, p) {
  assume(1 <= n && n <= 100);
  assume(1 <= m && m <= 100);
  assume(1 <= p && p <= 100);
  var i = 0;
  var j = 0;
  var k = 0;
  while (i < n) {
    j = 0;
    while (j < m) {
      k = 0;
      while (k < p) { tick(1); k = k + 1; }
      j = j + 1;
    }
    i = i + 1;
  }
}
"""

NESTED_NEW = NESTED_OLD.replace("tick(1)", "tick(2)")

FAST = AnalysisConfig(degree=1, max_products=1)

#: A two-rung ladder that keeps escalation tests fast.
LADDER2 = ((1, 1, "scipy"), (2, 2, "scipy"))


def count_job(config=FAST, name="count"):
    return AnalysisJob(kind="diff", old_source=COUNT_OLD,
                       new_source=COUNT_NEW, config=config, name=name)


def nested_job(config=None, name="nested"):
    config = config or AnalysisConfig(degree=2, max_products=2)
    return AnalysisJob(kind="diff", old_source=NESTED_OLD,
                       new_source=NESTED_NEW, config=config, name=name)


@pytest.fixture
def mixed_dir(tmp_path):
    """Three pairs: two win the first rung, one escalates to the second."""
    (tmp_path / "alpha_old.imp").write_text(COUNT_OLD)
    (tmp_path / "alpha_new.imp").write_text(COUNT_NEW)
    (tmp_path / "beta_old.imp").write_text(COUNT_OLD)
    (tmp_path / "beta_new.imp").write_text(
        COUNT_OLD.replace("tick(1)", "tick(3)")
    )
    (tmp_path / "quad_old.imp").write_text(QUAD_OLD)
    (tmp_path / "quad_new.imp").write_text(QUAD_NEW)
    return tmp_path


class TestWorkerPool:
    def test_runs_and_reuses_workers(self):
        with WorkerPool(2) as pool:
            tasks = [pool.submit(count_job(name=f"c{i}")) for i in range(4)]
            done = []
            while len(done) < 4:
                completed = pool.wait()
                assert completed
                done.extend(completed)
            assert sorted(t.id for t in done) == [t.id for t in tasks]
            assert all(t.result.threshold == 10.0 for t in done)
            # Four jobs, but the pool never grew past its size.
            assert pool.spawned == 2
            assert pool.terminated == 0

    def test_cancel_pending_never_starts(self):
        with WorkerPool(1) as pool:
            first = pool.submit(count_job(name="run"))
            queued = pool.submit(count_job(
                config=AnalysisConfig(degree=1, max_products=2),
                name="queued",
            ))
            assert pool.cancel(queued) is True
            while pool.wait():
                pass
            assert first.result is not None
            assert queued.result is None
            assert pool.spawned == 1

    def test_cancel_running_kills_exactly_that_worker(self):
        with WorkerPool(2) as pool:
            slow = pool.submit(nested_job(), priority=(0,))
            fast = pool.submit(count_job(), priority=(1,))
            while fast.result is None:
                pool.wait()
            assert pool.cancel(slow) is True
            assert pool.terminated == 1
            # The pool survives the kill: the surviving worker (or a
            # respawn) still runs new work.
            again = pool.submit(count_job(name="again"))
            while again.result is None:
                pool.wait()
            assert again.result.threshold == 10.0

    def test_dead_worker_surfaces_structured_error(self):
        with WorkerPool(1) as pool:
            task = pool.submit(nested_job())
            deadline = time.time() + 10
            while not pool._workers and time.time() < deadline:
                time.sleep(0.01)
            pool._workers[0].process.kill()
            completed = pool.wait()
            assert [t.id for t in completed] == [task.id]
            assert task.result.status == "error"
            assert task.result.error_type == "BrokenWorker"
            # The batch goes on: a fresh worker replaces the dead one.
            again = pool.submit(count_job(name="again"))
            while again.result is None:
                pool.wait()
            assert again.result.threshold == 10.0
            assert pool.spawned == 2

    def test_closed_pool_rejects_submissions(self):
        pool = WorkerPool(1)
        pool.shutdown()
        with pytest.raises(AnalysisError):
            pool.submit(count_job())

    def test_size_validation(self):
        with pytest.raises(AnalysisError):
            WorkerPool(0)


class TestEscalationScheduler:
    def test_one_pool_across_pairs_and_calls(self):
        with ParallelExecutor(jobs=2) as executor:
            ladders = [
                [count_job(name="a[d1]"),
                 count_job(AnalysisConfig(degree=2, max_products=2),
                           name="a[d2]")],
                [count_job(AnalysisConfig(degree=1, max_products=2),
                           name="b[d1]")],
            ]
            first = executor.run_escalating_many(ladders)
            second = executor.run_escalating(
                [count_job(AnalysisConfig(degree=3, max_products=2),
                           name="c[d3]")]
            )
            assert [r.status for r in first[0]] == ["ok", "cancelled"]
            assert [r.status for r in first[1]] == ["ok"]
            assert [r.status for r in second] == ["ok"]
            # One long-lived pool served both calls and every pair.
            assert executor.pools_created == 1

    def test_completed_loser_rung_is_harvested_into_cache(self, tmp_path):
        # Rung 0 (the eventual winner) takes seconds; rung 1 completes
        # long before.  The loser's paid-for result must land in the
        # cache even though selection reports it "cancelled" — and no
        # worker may be killed, because every rung had finished (the
        # cancel/done race).
        cache = ResultCache(tmp_path)
        loser = count_job(name="fast-loser")
        with ParallelExecutor(jobs=2, cache=cache) as executor:
            results = executor.run_escalating([nested_job(), loser])
            assert results[0].succeeded
            assert results[1].status == "cancelled"
            assert executor.pool.terminated == 0
        harvested = cache.get(loser.key)
        assert harvested is not None
        assert harvested.threshold == 10.0
        # A later run of the same job replays the harvested entry.
        with ParallelExecutor(jobs=1, cache=ResultCache(tmp_path)) as warm:
            replay = warm.run([loser])[0]
        assert replay.cached
        assert replay.threshold == 10.0

    def test_abandoned_running_loser_is_not_cached(self, tmp_path):
        # The mirror case: the loser is still *running* when the winner
        # lands, so it is terminated (exactly one worker) and nothing
        # of it is cached.
        cache = ResultCache(tmp_path)
        loser = nested_job(name="slow-loser")
        with ParallelExecutor(jobs=2, cache=cache) as executor:
            results = executor.run_escalating([count_job(), loser])
            assert results[0].succeeded
            assert results[1].status == "cancelled"
            assert executor.pool.terminated == 1
        assert cache.get(loser.key) is None

    def test_ladder_with_failing_first_rung_escalates(self):
        quad = [
            AnalysisJob(kind="diff", old_source=QUAD_OLD,
                        new_source=QUAD_NEW,
                        config=AnalysisConfig(degree=d, max_products=K),
                        name=f"quad[d{d}K{K}]")
            for d, K in [(1, 1), (2, 2)]
        ]
        for jobs in (1, 2):
            with ParallelExecutor(jobs=jobs) as executor:
                results = executor.run_escalating(quad)
            assert [r.status for r in results] == ["ok", "ok"]
            assert results[0].outcome == "unknown"
            assert results[1].threshold == 1.0

    def test_max_inflight_validation(self):
        with ParallelExecutor(jobs=2) as executor:
            with pytest.raises(AnalysisError):
                EscalationScheduler(executor, executor._ensure_pool(),
                                    max_inflight=0)
        with pytest.raises(AnalysisError):
            EngineConfig(max_inflight_pairs=0)

    def test_rungs_of_distinct_pairs_run_concurrently(self, monkeypatch):
        # The point of the scheduler: while one pair's ladder is still
        # solving, another pair's rungs are already on workers.  Spy on
        # the pool's event loop and record which pairs hold workers at
        # each wakeup.
        concurrent_pairs = []
        original_wait = WorkerPool.wait

        def spying_wait(pool, timeout=None):
            running = {worker.task.job.name.split("[")[0]
                       for worker in pool._workers
                       if worker.task is not None}
            if len(running) > 1:
                concurrent_pairs.append(running)
            return original_wait(pool, timeout)

        monkeypatch.setattr(WorkerPool, "wait", spying_wait)
        ladders = [
            [count_job(name="alpha[d1]")],
            [count_job(AnalysisConfig(degree=1, max_products=2),
                       name="beta[d1]")],
        ]
        with ParallelExecutor(jobs=2) as executor:
            results = executor.run_escalating_many(ladders)
        assert all(rungs[0].succeeded for rungs in results)
        assert {"alpha", "beta"} in concurrent_pairs

    def test_first_wave_dispatches_by_rung_then_pair(self):
        # With 2 workers and 2 two-rung ladders, the admission wave
        # must put both pairs' FIRST rungs on workers — not both rungs
        # of the first pair.  (rung, pair) priorities plus deferred
        # dispatch make the wave deterministic.
        with WorkerPool(2) as pool:
            a1 = pool.submit(count_job(
                AnalysisConfig(degree=2, max_products=2), name="a[r1]"
            ), priority=(1, 0), dispatch=False)
            b1 = pool.submit(count_job(
                AnalysisConfig(degree=3, max_products=2), name="b[r1]"
            ), priority=(1, 1), dispatch=False)
            a0 = pool.submit(count_job(name="a[r0]"),
                             priority=(0, 0), dispatch=False)
            b0 = pool.submit(count_job(
                AnalysisConfig(degree=1, max_products=2), name="b[r0]"
            ), priority=(0, 1), dispatch=False)
            assert all(t.state == "pending" for t in (a0, a1, b0, b1))
            pool.flush()
            assert a0.state == "running" and b0.state == "running"
            assert a1.state == "pending" and b1.state == "pending"
            while any(t.result is None for t in (a0, a1, b0, b1)):
                assert pool.wait()


class TestFirstModeDeterminism:
    def test_jobs4_chooses_same_rungs_as_jobs1(self, mixed_dir):
        reports = {
            jobs: run_batch(
                mixed_dir, config=FAST,
                engine=EngineConfig(jobs=jobs, portfolio=True),
                ladder=LADDER2,
            )
            for jobs in (1, 4)
        }
        for report in reports.values():
            assert report.ok
        chosen = {
            jobs: [(p.name, p.chosen_rung_index(), p.threshold)
                   for p in report.portfolios]
            for jobs, report in reports.items()
        }
        statuses = {
            jobs: [[r.status for r in p.rungs] for p in report.portfolios]
            for jobs, report in reports.items()
        }
        assert chosen[4] == chosen[1]
        assert statuses[4] == statuses[1]
        # The escalating pair really escalated; the easy pairs won the
        # first rung.
        assert chosen[1] == [
            ("alpha", 0, 10.0), ("beta", 0, 20.0), ("quad", 1, 1.0),
        ]

    def test_batch_builds_one_pool_for_all_pairs(self, mixed_dir,
                                                 monkeypatch):
        # The acceptance criterion: a first-mode portfolio batch over
        # several pairs constructs exactly one worker pool, not one
        # per pair.
        built = []
        original_init = WorkerPool.__init__

        def counting_init(pool, size, context=None, **kwargs):
            built.append(pool)
            original_init(pool, size, context, **kwargs)

        monkeypatch.setattr(WorkerPool, "__init__", counting_init)
        report = run_batch(
            mixed_dir, config=FAST,
            engine=EngineConfig(jobs=4, portfolio=True), ladder=LADDER2,
        )
        assert report.ok
        assert len(built) == 1
        assert len(report.portfolios) == 3

    def test_max_inflight_does_not_change_selection(self, mixed_dir):
        capped = run_batch(
            mixed_dir, config=FAST,
            engine=EngineConfig(jobs=4, portfolio=True,
                                max_inflight_pairs=1),
            ladder=LADDER2,
        )
        assert capped.ok
        assert [(p.name, p.chosen_rung_index()) for p in capped.portfolios] \
            == [("alpha", 0), ("beta", 0), ("quad", 1)]

    def test_cli_first_mode_batch_with_scheduler_knobs(self, mixed_dir,
                                                       capsys):
        from repro.cli import main

        code = main(["batch", str(mixed_dir), "-d", "1", "-K", "1",
                     "--portfolio", "--jobs", "2",
                     "--max-inflight-pairs", "2", "--no-cache"])
        out = capsys.readouterr().out
        assert code == 0
        assert "alpha" in out and "quad" in out


class TestBestSelectionExactness:
    @staticmethod
    def _rung(threshold, threshold_str=None):
        return JobResult(job_key="k", name="r", kind="diff", status="ok",
                         outcome="threshold", threshold=threshold,
                         threshold_str=threshold_str)

    def test_exact_thresholds_break_float_collisions(self):
        # Two exact rungs whose Fractions differ but whose float
        # renderings collide: float ranking would tie and pick the
        # earlier (larger!) rung; exact ranking picks the smaller one.
        base = Fraction(0.3333333333333333)
        bigger = base + Fraction(2, 10**20)
        smaller = base + Fraction(1, 10**20)
        assert float(bigger) == float(smaller)
        rungs = [
            self._rung(float(bigger), str(bigger)),
            self._rung(float(smaller), str(smaller)),
        ]
        chosen = select_result(rungs, "best")
        assert chosen is rungs[1]
        assert Fraction(chosen.threshold_str) == smaller

    def test_exact_rung_outranks_float_rung_crossing(self):
        # An exact value just below a float rung whose float rendering
        # rounds *above* it must still win.
        exact = Fraction(1, 3)
        rungs = [
            self._rung(float(exact) + 1e-16, None),
            self._rung(float(exact), str(exact)),
        ]
        assert select_result(rungs, "best") is rungs[1]

    def test_ladder_order_still_breaks_true_ties(self):
        rungs = [self._rung(10.0), self._rung(10.0)]
        assert select_result(rungs, "best") is rungs[0]


class TestSuiteExitCode:
    def test_suite_fails_on_infrastructure_failure(self, capsys):
        from repro.cli import main

        # ex7's paper row is a sound x; a 10ms budget turns it into a
        # job timeout instead, which must fail the process.
        assert main(["suite", "--names", "ex7", "--timeout", "0.01"]) == 1
        assert "DIFFERS" in capsys.readouterr().out

    def test_suite_sound_x_still_exits_zero(self, capsys):
        from repro.cli import main

        # Without a budget ex7 completes with the paper's sound x on
        # every row it runs — a completed answer, not a failure.
        assert main(["suite", "--names", "ex7"]) == 0
        out = capsys.readouterr().out
        assert "ok" in out
