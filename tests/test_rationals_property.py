"""Property tests: the rational helpers are exact where they claim to be.

``as_fraction`` must round-trip ints/Fractions losslessly (these feed
the exact LP path); ``rationalize``/``snap_to_int``/``format_threshold``
are the declared float boundary and only promise bounded-denominator
proximity.
"""

import random
from fractions import Fraction

import pytest

from repro.utils.rationals import (
    as_fraction,
    format_threshold,
    fraction_to_str,
    rationalize,
    snap_to_int,
)

RNG = random.Random(20220622)


@pytest.mark.parametrize("value", [
    0, 1, -1, 7, -123456789, 10**30, -(10**30),
])
def test_as_fraction_roundtrips_ints_exactly(value):
    result = as_fraction(value)
    assert result == Fraction(value) and int(result) == value


def test_as_fraction_is_identity_on_fractions():
    for _ in range(200):
        num = RNG.randint(-10**9, 10**9)
        den = RNG.randint(1, 10**9)
        value = Fraction(num, den)
        assert as_fraction(value) is value  # no copying, no rounding


def test_as_fraction_rejects_non_numerics():
    with pytest.raises(TypeError):
        as_fraction("3/4")


def test_rationalize_is_exact_for_small_denominators():
    # Floats that are exactly representable dyadic rationals with small
    # denominators must come back unchanged.
    for _ in range(200):
        num = RNG.randint(-10**6, 10**6)
        exp = RNG.randint(0, 20)
        value = Fraction(num, 2**exp)
        assert rationalize(float(value)) == value


def test_rationalize_bounds_the_denominator():
    for _ in range(100):
        value = RNG.uniform(-1e6, 1e6)
        assert rationalize(value).denominator <= 10**9


def test_rationalize_rejects_nan():
    with pytest.raises(ValueError):
        rationalize(float("nan"))


def test_snap_to_int_snaps_solver_noise_only():
    assert snap_to_int(99.99999999973) == 100
    assert snap_to_int(Fraction(300000001, 3000000)) == 100
    assert snap_to_int(99.5) == 99.5  # genuinely fractional: untouched
    assert snap_to_int(Fraction(199, 2)) == Fraction(199, 2)


def test_format_threshold_is_stable_on_exact_values():
    assert format_threshold(None) == "✗"
    assert format_threshold(Fraction(100)) == "100"
    assert format_threshold(Fraction(7, 2)) == "3.50"


def test_fraction_to_str_roundtrip():
    for _ in range(200):
        value = Fraction(RNG.randint(-10**6, 10**6),
                         RNG.randint(1, 10**6))
        assert Fraction(fraction_to_str(value)) == value
