"""End-to-end tests of the simultaneous PF/anti-PF threshold synthesis
(the paper's running example and targeted small cases)."""

import pytest

from repro import AnalysisConfig, analyze_diffcost, load_program
from repro.bench.suite import JOIN_NEW_SOURCE, JOIN_OLD_SOURCE
from repro.core import CertificateChecker
from repro.core.checker import sample_inputs
from repro.core.results import AnalysisStatus
from repro.ts import CostSearch

SMALL_OLD = """
proc count(n) {
  assume(1 <= n && n <= 10);
  var i = 0;
  while (i < n) { tick(1); i = i + 1; }
}
"""

SMALL_NEW = """
proc count(n) {
  assume(1 <= n && n <= 10);
  var i = 0;
  while (i < n) { tick(3); i = i + 1; }
}
"""


@pytest.fixture(scope="module")
def join_result():
    old = load_program(JOIN_OLD_SOURCE, name="join_old")
    new = load_program(JOIN_NEW_SOURCE, name="join_new")
    return old, new, analyze_diffcost(old, new)


class TestJoinRunningExample:
    def test_threshold_is_10000(self, join_result):
        _old, _new, result = join_result
        assert result.is_threshold
        assert result.threshold_display == 10000

    def test_certificates_evaluate_like_example_2_3(self, join_result):
        # phi_new(l0, x) - chi_old(l0, x) <= t on Theta0 corners.
        _old, _new, result = join_result
        for lena, lenb in [(1, 1), (1, 100), (100, 1), (100, 100)]:
            inputs = {"lenA": lena, "lenB": lenb, "i": 0, "j": 0}
            phi = result.potential_new.initial_value(inputs)
            chi = result.anti_potential_old.initial_value(inputs)
            assert float(phi - chi) <= float(result.threshold) + 1e-6

    def test_certificates_bound_true_costs(self, join_result):
        old, new, result = join_result
        old_search = CostSearch(old.system)
        new_search = CostSearch(new.system)
        for lena, lenb in [(1, 1), (2, 3), (5, 4)]:
            inputs = {"lenA": lena, "lenB": lenb, "i": 0, "j": 0}
            old_inf, old_sup = old_search.cost_bounds(inputs)
            new_inf, new_sup = new_search.cost_bounds(inputs)
            assert old_inf == old_sup == lena * lenb
            assert new_inf == new_sup == 2 * lena * lenb
            phi = float(result.potential_new.initial_value(inputs))
            chi = float(result.anti_potential_old.initial_value(inputs))
            assert phi >= new_sup - 1e-6
            assert chi <= old_inf + 1e-6

    def test_full_checker_passes(self, join_result):
        old, new, result = join_result
        import random

        checker = CertificateChecker(tolerance=1e-4)
        inputs = sample_inputs(new.system, 6, random.Random(1), max_range=4)
        report = checker.check_diffcost(
            old.system, new.system, float(result.threshold),
            result.potential_new, result.anti_potential_old, inputs,
        )
        report.require_ok()


class TestSmallPrograms:
    def test_constant_factor_increase(self):
        old = load_program(SMALL_OLD, name="old")
        new = load_program(SMALL_NEW, name="new")
        result = analyze_diffcost(old, new)
        # diff = 3n - n = 2n <= 20.
        assert result.is_threshold
        assert result.threshold_display == 20

    def test_identical_programs_threshold_zero(self):
        old = load_program(SMALL_OLD, name="old")
        new = load_program(SMALL_OLD, name="new")
        result = analyze_diffcost(old, new)
        assert result.is_threshold
        assert float(result.threshold) == pytest.approx(0, abs=1e-5)

    def test_cost_decrease_gives_negative_threshold(self):
        old = load_program(SMALL_NEW, name="old")  # cost 3n
        new = load_program(SMALL_OLD, name="new")  # cost n
        result = analyze_diffcost(old, new)
        # diff = n - 3n = -2n, maximal at n = 1: threshold -2.
        assert result.is_threshold
        assert result.threshold_display == -2

    def test_nondeterministic_new_version(self):
        old = load_program(SMALL_OLD, name="old")
        new = load_program("""
        proc count(n) {
          assume(1 <= n && n <= 10);
          var i = 0;
          while (i < n) {
            if (*) { tick(2); } else { tick(1); }
            i = i + 1;
          }
        }
        """, name="new")
        result = analyze_diffcost(old, new)
        # CostSup_new = 2n, CostInf_old = n: diff <= n <= 10.
        assert result.threshold_display == 10

    def test_exact_backend_gives_exact_integers(self):
        from fractions import Fraction

        old = load_program(SMALL_OLD, name="old")
        new = load_program(SMALL_NEW, name="new")
        config = AnalysisConfig(lp_backend="exact")
        result = analyze_diffcost(old, new, config)
        assert result.threshold == Fraction(20)

    def test_unknown_on_unbounded_inputs(self):
        # No upper bound on n and genuinely disjunctive cost: the LP has
        # no polynomial certificate (the ex5/ex7 failure mode).
        old = load_program("""
        proc p(n) {
          assume(1 <= n);
          var i = 0;
          while (i < n) { tick(1); i = i + 1; }
        }
        """, name="old")
        new = load_program("""
        proc p(n) {
          assume(1 <= n);
          var i = 0;
          while (i < n) {
            if (i < 3) { tick(2); } else { tick(1); }
            i = i + 1;
          }
        }
        """, name="new")
        result = analyze_diffcost(old, new)
        assert result.status is AnalysisStatus.UNKNOWN

    def test_threshold_is_sound_even_if_loose(self):
        # Whatever threshold comes out must dominate the true max diff.
        old = load_program("""
        proc p(n, m) {
          assume(1 <= n && n <= 6);
          assume(1 <= m && m <= 6);
          var x = 0;
          while (x < n && x < m) { x = x + 1; }
        }
        """, name="old")
        new = load_program("""
        proc p(n, m) {
          assume(1 <= n && n <= 6);
          assume(1 <= m && m <= 6);
          var x = 0;
          while (x < n && x < m) { tick(1); x = x + 1; }
        }
        """, name="new")
        result = analyze_diffcost(old, new)
        assert result.is_threshold
        new_search = CostSearch(new.system)
        true_max = max(
            new_search.cost_bounds({"n": a, "m": b, "x": 0})[1]
            for a in range(1, 7) for b in range(1, 7)
        )
        assert float(result.threshold) >= true_max - 1e-6


class TestAnalyzerPlumbing:
    def test_accepts_raw_transition_systems(self):
        old = load_program(SMALL_OLD, name="old").system
        new = load_program(SMALL_NEW, name="new").system
        result = analyze_diffcost(old, new)
        assert result.threshold_display == 20

    def test_rejects_garbage(self):
        from repro.errors import AnalysisError

        with pytest.raises(AnalysisError):
            analyze_diffcost("not a program", "also not")

    def test_lp_stats_populated(self):
        old = load_program(SMALL_OLD, name="old")
        new = load_program(SMALL_NEW, name="new")
        result = analyze_diffcost(old, new)
        assert result.lp_variables > 0
        assert result.lp_constraints > 0
        assert "invariants" in result.timings
