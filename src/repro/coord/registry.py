"""Worker-node registry with heartbeat health tracking.

Every worker node (an :class:`~repro.serve.AnalysisServer` behind an
address) is tracked through a small state machine::

    live ──missed heartbeat──▶ suspect ──more misses──▶ dead ──▶ evicted
      ▲                            │                      │
      └────── healthz ok ◀─────────┘      healthz ok ─────┘ (rejoins live)

    live ──request-failure streak──▶ quarantined ──healthz ok streak──▶ live

``dead`` is the *capacity* signal: the dispatcher stops assigning work,
in-flight pairs are requeued onto healthy nodes, and the capacity
floor (:attr:`~repro.config.CoordConfig.min_nodes`) is judged against
live + suspect nodes only.  ``quarantined`` is softer — a node whose
``/healthz`` answers but whose analysis requests keep failing gets no
new work until a streak of clean heartbeats clears it, so a poisoned
node degrades the cluster instead of eating every retry budget.

Dead nodes that stay dead for ``evict_after`` seconds are evicted
(removed from the registry); a re-registration of the same address
starts fresh.  All transitions are logged and counted in the metrics
registry.

The registry is driven from two places — the heartbeat monitor thread
and the dispatcher's request paths — so every mutation happens under
one lock.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.obs import get_logger, get_registry

_LOG = get_logger("coord.registry")

NODE_STATES = ("live", "suspect", "dead", "quarantined")


class RegistryError(ReproError):
    """A malformed registration (bad address, duplicate node)."""


@dataclass
class NodeInfo:
    """One registered worker node and its health bookkeeping."""

    url: str
    state: str = "live"
    registered_at: float = field(default_factory=time.monotonic)
    last_ok: float = field(default_factory=time.monotonic)
    #: Consecutive heartbeat misses (reset by any successful probe).
    heartbeat_misses: int = 0
    #: Consecutive analysis-request failures (reset by any success).
    request_failures: int = 0
    #: Consecutive clean heartbeats while quarantined.
    clean_heartbeats: int = 0
    died_at: float | None = None
    #: Lifetime counters, surfaced on /healthz.
    requests_ok: int = 0
    requests_failed: int = 0

    @property
    def address(self) -> str:
        """``host:port``, the ``node.partition`` fault-site name."""
        return self.url.split("://", 1)[-1].rstrip("/")

    def as_dict(self) -> dict:
        return {
            "url": self.url,
            "state": self.state,
            "heartbeat_misses": self.heartbeat_misses,
            "request_failures": self.request_failures,
            "requests_ok": self.requests_ok,
            "requests_failed": self.requests_failed,
        }


def normalize_url(url: str) -> str:
    """Canonical node address: scheme + host + port, no trailing slash."""
    url = url.strip().rstrip("/")
    if not url:
        raise RegistryError("node url must be non-empty")
    if "://" not in url:
        url = f"http://{url}"
    if not url.startswith("http://"):
        raise RegistryError(
            f"node url must be http:// (got {url!r}); TLS termination "
            "belongs in front of non-loopback deployments"
        )
    return url


class NodeRegistry:
    """Thread-safe registry of worker nodes; see the module docstring."""

    def __init__(self, dead_after: int = 3, quarantine_after: int = 3,
                 recover_after: int = 2, evict_after: float = 300.0):
        self._lock = threading.Lock()
        self._nodes: dict[str, NodeInfo] = {}
        self.dead_after = dead_after
        self.quarantine_after = quarantine_after
        self.recover_after = recover_after
        self.evict_after = evict_after

    # -- membership --------------------------------------------------------

    def register(self, url: str) -> NodeInfo:
        """Add (or revive) a node; idempotent for a healthy duplicate."""
        url = normalize_url(url)
        with self._lock:
            node = self._nodes.get(url)
            if node is None or node.state == "dead":
                node = NodeInfo(url=url)
                self._nodes[url] = node
                _LOG.info("node registered: %s", url)
                get_registry().counter(
                    "repro_coord_nodes_registered_total",
                    "Worker nodes registered with the coordinator.",
                ).inc()
            return node

    def nodes(self, *states: str) -> list[NodeInfo]:
        """Nodes in the given states (all when none given), URL-sorted —
        the deterministic order shard ownership is assigned in."""
        with self._lock:
            selected = [node for node in self._nodes.values()
                        if not states or node.state in states]
        return sorted(selected, key=lambda node: node.url)

    def eligible(self) -> list[NodeInfo]:
        """Nodes the dispatcher may assign new work to."""
        return self.nodes("live", "suspect")

    def counts(self) -> dict[str, int]:
        with self._lock:
            counts = {state: 0 for state in NODE_STATES}
            for node in self._nodes.values():
                counts[node.state] += 1
        return counts

    # -- request-path health signals ---------------------------------------

    def mark_request_ok(self, url: str) -> None:
        with self._lock:
            node = self._nodes.get(url)
            if node is None:
                return
            node.requests_ok += 1
            node.request_failures = 0
            node.last_ok = time.monotonic()
            if node.state == "suspect":
                self._transition(node, "live")

    def mark_request_failed(self, url: str) -> str | None:
        """Record an exhausted-retries request failure; returns the
        node's (possibly new) state."""
        with self._lock:
            node = self._nodes.get(url)
            if node is None:
                return None
            node.requests_failed += 1
            node.request_failures += 1
            if (node.state in ("live", "suspect")
                    and node.request_failures >= self.quarantine_after):
                node.clean_heartbeats = 0
                self._transition(node, "quarantined")
            return node.state

    # -- heartbeat-path health signals -------------------------------------

    def heartbeat_ok(self, url: str) -> None:
        with self._lock:
            node = self._nodes.get(url)
            if node is None:
                return
            node.heartbeat_misses = 0
            node.last_ok = time.monotonic()
            if node.state == "suspect":
                self._transition(node, "live")
            elif node.state == "dead":
                # A dead node answering again rejoins with a clean
                # slate — the respawned process is not the one that died.
                node.request_failures = 0
                self._transition(node, "live")
            elif node.state == "quarantined":
                node.clean_heartbeats += 1
                if node.clean_heartbeats >= self.recover_after:
                    node.request_failures = 0
                    self._transition(node, "live")

    def heartbeat_missed(self, url: str) -> str | None:
        """Record a failed probe; returns the node's (possibly new)
        state so the monitor can trigger reassignment on death."""
        with self._lock:
            node = self._nodes.get(url)
            if node is None:
                return None
            node.heartbeat_misses += 1
            node.clean_heartbeats = 0
            if node.state in ("live", "quarantined"):
                if node.heartbeat_misses >= self.dead_after:
                    self._transition(node, "dead")
                elif node.state == "live":
                    self._transition(node, "suspect")
            elif node.state == "suspect" \
                    and node.heartbeat_misses >= self.dead_after:
                self._transition(node, "dead")
            return node.state

    def evict_expired(self) -> list[str]:
        """Drop nodes dead for longer than ``evict_after``; returns the
        evicted URLs."""
        now = time.monotonic()
        evicted = []
        with self._lock:
            for url, node in sorted(self._nodes.items()):
                if (node.state == "dead" and node.died_at is not None
                        and now - node.died_at >= self.evict_after):
                    evicted.append(url)
            for url in evicted:
                del self._nodes[url]
        for url in evicted:
            _LOG.warning("node evicted after %.0fs dead: %s",
                         self.evict_after, url)
            get_registry().counter(
                "repro_coord_nodes_evicted_total",
                "Dead worker nodes evicted from the registry.",
            ).inc()
        return evicted

    # -- internals ---------------------------------------------------------

    def _transition(self, node: NodeInfo, state: str) -> None:
        # Lock is held by every caller.
        previous, node.state = node.state, state
        node.died_at = time.monotonic() if state == "dead" else None
        log = _LOG.warning if state in ("dead", "quarantined") else _LOG.info
        log("node %s: %s -> %s", node.url, previous, state)
        get_registry().counter(
            "repro_coord_node_transitions_total",
            "Node health-state transitions, by new state.",
            ("state",),
        ).inc(state=state)

    def as_dict(self) -> dict:
        """The /healthz rendering: per-node detail plus state counts."""
        with self._lock:
            nodes = {url: node.as_dict()
                     for url, node in sorted(self._nodes.items())}
        return {"nodes": nodes, "counts": self.counts()}
