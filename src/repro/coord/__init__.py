"""Fault-tolerant multi-node coordination (:mod:`repro.coord`).

The cluster layer over the serving stack: one coordinator fans a
whole-directory batch out to N worker nodes (each a
:class:`~repro.serve.AnalysisServer`) and folds the answers back
through the CI-tested byte-identical
:func:`~repro.serve.shard.merge_reports` invariant.

- :mod:`repro.coord.client` — resilient stdlib HTTP client: per-request
  deadlines, bounded exponential backoff with seeded jitter, honoring
  ``Retry-After``, with ``net.*``/``node.partition`` fault-injection
  sites;
- :mod:`repro.coord.registry` — node registry and health state machine
  (live / suspect / dead / quarantined, heartbeat-driven, with
  dead-node eviction);
- :mod:`repro.coord.dispatch` — work-stealing pair dispatch: own shard
  first, steal from stragglers, requeue off dead nodes, duplicate
  hedging with first-result-wins coalescing, graceful degradation to a
  partial report below the capacity floor;
- :mod:`repro.coord.server` — the coordinator HTTP front-end
  (``POST /batch``, ``POST /nodes``, ``GET /healthz``, ``/metrics``)
  and the heartbeat monitor.

The cluster invariant, gated by CI's cluster-chaos-smoke job: a batch
run with a node killed mid-flight produces canonical report bytes
identical to a fault-free local ``batch --jobs 1`` run.
"""

from repro.coord.client import (
    BACKOFF_CAP,
    ClientError,
    NodeUnreachable,
    ResilientClient,
    backoff_schedule,
)
from repro.coord.dispatch import (
    ClusterDispatch,
    run_cluster_batch,
    shard_report,
)
from repro.coord.registry import (
    NODE_STATES,
    NodeInfo,
    NodeRegistry,
    RegistryError,
    normalize_url,
)
from repro.coord.server import (
    CoordinatorServer,
    HeartbeatMonitor,
    coordinate_forever,
)

__all__ = [
    "BACKOFF_CAP",
    "ClientError",
    "ClusterDispatch",
    "CoordinatorServer",
    "HeartbeatMonitor",
    "NODE_STATES",
    "NodeInfo",
    "NodeRegistry",
    "NodeUnreachable",
    "RegistryError",
    "ResilientClient",
    "backoff_schedule",
    "coordinate_forever",
    "normalize_url",
    "run_cluster_batch",
    "shard_report",
]
