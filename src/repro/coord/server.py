"""The cluster coordinator's HTTP front-end and heartbeat monitor.

A :class:`CoordinatorServer` is the control plane of a small analysis
cluster: worker nodes (each a :class:`~repro.serve.AnalysisServer`)
register with it, a heartbeat monitor thread probes their ``/healthz``
every :attr:`~repro.config.CoordConfig.heartbeat_interval` seconds and
drives the :class:`~repro.coord.registry.NodeRegistry` state machine,
and ``POST /batch`` fans a whole-directory batch across the live nodes
through the work-stealing :mod:`~repro.coord.dispatch` layer.

HTTP surface (all bodies JSON):

- ``POST /batch`` — ``{"directory": DIR, "config": {...overrides},
  "shards": N?}``; replies with the merged report (canonically
  byte-identical to a fault-free local ``batch --jobs 1`` run) plus
  cluster bookkeeping (steals, reassignments, retries).  Sheds with
  503 + ``Retry-After`` while draining or below the capacity floor;
- ``POST /nodes`` — ``{"url": "host:port"}`` registers (or revives) a
  worker node; idempotent;
- ``GET /nodes`` — the registry: per-node state and counts;
- ``GET /healthz`` — coordinator liveness + registry summary;
- ``GET /metrics`` — Prometheus exposition (node states, batch and
  dispatch counters, client retries).

Shutdown mirrors the node servers: SIGINT stops immediately, SIGTERM
drains — new batches are shed, running ones get
:attr:`~repro.config.CoordConfig.drain_timeout` seconds to finish.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import fields as dataclass_fields
from dataclasses import replace
import threading

from repro.config import AnalysisConfig, CoordConfig
from repro.engine.cache.federation import federate_round
from repro.errors import AnalysisError, ReproError
from repro.obs import get_logger, get_registry
from repro.serve.server import ServeError, handle_http_client

from repro.coord.client import ClientError, ResilientClient
from repro.coord.dispatch import run_cluster_batch
from repro.coord.registry import NODE_STATES, NodeRegistry, RegistryError

_LOG = get_logger("coord.server")

_CONFIG_FIELDS = frozenset(f.name for f in dataclass_fields(AnalysisConfig))

_KNOWN_PATHS = ("/batch", "/nodes", "/healthz", "/metrics",
                "/cache/federate")

#: Dispatch counters pre-materialized at scrape time so dashboards see
#: them at zero from the first scrape, not the first incident.
_COUNTERS = (
    ("repro_coord_steals_total",
     "Pairs stolen from another node's shard."),
    ("repro_coord_reassigned_total",
     "Pairs reassigned off dead or quarantined nodes."),
    ("repro_coord_duplicates_total",
     "Straggler pairs duplicated onto a second node."),
    ("repro_coord_client_retries_total",
     "Node requests retried after a transient failure."),
    ("repro_coord_batches_total", "Cluster batches run to completion."),
    ("repro_cache_federation_rounds_total",
     "Cache federation rounds completed."),
    ("repro_cache_federation_applied_total",
     "Cache entries replicated onto a node by federation."),
)


class HeartbeatMonitor(threading.Thread):
    """Probes every registered node's ``/healthz`` on a fixed cadence.

    One failed probe (no retries — the next beat is the retry) feeds
    :meth:`NodeRegistry.heartbeat_missed`; the state machine debounces
    it into suspect/dead.  The monitor also evicts long-dead nodes.
    Probes go through the resilient client, so ``node.partition`` fault
    rules blind the coordinator to a node exactly like a real partition.
    """

    def __init__(self, registry: NodeRegistry, client: ResilientClient,
                 interval: float):
        super().__init__(name="coord-heartbeat", daemon=True)
        self.registry = registry
        self.client = client
        self.interval = interval
        self._stop = threading.Event()

    def stop(self) -> None:
        self._stop.set()

    def run(self) -> None:
        while not self._stop.wait(self.interval):
            self.beat()

    def beat(self) -> None:
        """One probe round (synchronous; tests call it directly)."""
        for node in self.registry.nodes():
            try:
                self.client.get(f"{node.url}/healthz", retries=0)
            except ClientError:
                # Unreachable or answering garbage on /healthz — either
                # way not a node to trust with work.
                state = self.registry.heartbeat_missed(node.url)
                if state == "dead":
                    _LOG.warning("node %s declared dead; its pairs will "
                                 "be reassigned", node.url)
            else:
                self.registry.heartbeat_ok(node.url)
        self.registry.evict_expired()


class CoordinatorServer:
    """The cluster control plane; see the module docstring.

    Usage::

        server = CoordinatorServer(CoordConfig(port=0, nodes=(...,)))
        await server.start()          # server.port is the bound port
        ...
        await server.stop()
    """

    def __init__(self, coord: CoordConfig | None = None,
                 analysis: AnalysisConfig | None = None):
        self.coord = coord or CoordConfig()
        self.analysis = analysis or AnalysisConfig()
        self.registry = NodeRegistry(
            dead_after=self.coord.dead_after,
            quarantine_after=self.coord.quarantine_after,
            recover_after=self.coord.recover_after,
            evict_after=self.coord.evict_after,
        )
        self.client = ResilientClient(
            deadline=self.coord.request_deadline,
            retries=self.coord.client_retries,
            backoff_base=self.coord.backoff_base,
            seed=self.coord.client_seed,
        )
        #: Heartbeats use a short deadline decoupled from the (long)
        #: analysis deadline — a probe that takes seconds IS a miss.
        self.heartbeat_client = ResilientClient(
            deadline=max(1.0, self.coord.heartbeat_interval * 2),
            retries=0,
            seed=self.coord.client_seed,
        )
        self.port: int | None = None
        self.batches = 0
        self.batches_active = 0
        self.federation_rounds = 0
        #: Per-node federation watermarks: the last delta timestamp
        #: that fully round-tripped (pull + push) for each node URL.
        #: Advancing only on success makes every round retry-safe.
        self._watermarks: dict[str, float] = {}
        self._federate_lock = threading.Lock()
        self._draining = False
        self._server: asyncio.base_events.Server | None = None
        self._monitor: HeartbeatMonitor | None = None
        self._loop: asyncio.AbstractEventLoop | None = None

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        for url in self.coord.nodes:
            self.registry.register(url)
        self._monitor = HeartbeatMonitor(self.registry,
                                         self.heartbeat_client,
                                         self.coord.heartbeat_interval)
        self._monitor.start()
        self._server = await asyncio.start_server(
            self._handle_client, self.coord.host, self.coord.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        _LOG.info("coordinating on %s:%d (%d node(s) preregistered, "
                  "floor %d)", self.coord.host, self.port,
                  len(self.coord.nodes), self.coord.min_nodes)

    async def drain(self) -> None:
        """SIGTERM grace: shed new batches with 503, give running ones
        ``coord.drain_timeout`` seconds, then close the listener."""
        if self._draining:
            return
        self._draining = True
        _LOG.info("draining: %d batch(es) running, budget %gs",
                  self.batches_active, self.coord.drain_timeout)
        deadline = self._loop.time() + self.coord.drain_timeout
        while self.batches_active and self._loop.time() < deadline:
            await asyncio.sleep(0.05)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._monitor is not None:
            self._monitor.stop()
            self._monitor = None

    # -- /batch ------------------------------------------------------------

    def _batch_config(self, payload: dict) -> AnalysisConfig:
        if payload.get("portfolio"):
            raise ServeError(
                "portfolio batches are not supported by the coordinator; "
                "run them through a node's /analyze or a local batch"
            )
        overrides = payload.get("config") or {}
        if not isinstance(overrides, dict):
            raise ServeError(
                "config must be a JSON object of AnalysisConfig fields"
            )
        unknown = sorted(set(overrides) - _CONFIG_FIELDS)
        if unknown:
            raise ServeError(f"unknown config field(s): {', '.join(unknown)}")
        return replace(self.analysis, **overrides)

    async def _batch(self, payload) -> tuple[int, dict] | tuple[int, dict, dict]:
        if not isinstance(payload, dict):
            raise ServeError("request body must be a JSON object")
        directory = payload.get("directory")
        if not isinstance(directory, str) or not directory:
            raise ServeError("directory must be a non-empty path string")
        shards = payload.get("shards")
        if shards is not None and (not isinstance(shards, int)
                                   or shards < 1):
            raise ServeError("shards must be a positive integer")
        config = self._batch_config(payload)
        self.batches += 1
        self.batches_active += 1
        try:
            # The dispatcher is thread-driven and blocking; keep the
            # event loop (and /healthz) responsive while it runs.
            merged, cluster = await self._loop.run_in_executor(
                None,
                lambda: run_cluster_batch(
                    directory, config, self.registry, self.client,
                    self.coord, shards=shards,
                ),
            )
        except AnalysisError as error:
            # Below the capacity floor before dispatch even started:
            # the cluster equivalent of load shedding.
            _LOG.warning("rejecting batch: %s", error)
            return 503, {"error": str(error)}, \
                {"Retry-After": str(max(1, int(self.coord.heartbeat_interval
                                               * self.coord.dead_after)))}
        finally:
            self.batches_active -= 1
        return 200, {"report": merged, "cluster": cluster}

    # -- /cache/federate ---------------------------------------------------

    async def _federate(self) -> tuple[int, dict]:
        """One cache federation round over the registry's non-dead
        nodes (suspect nodes are included: a slow heartbeat is no
        reason to withhold cache entries — the resilient client and
        per-node watermarks absorb any failure).  Serialized by a lock
        so overlapping triggers can't race the watermark map."""
        urls = [node.url for node in self.registry.nodes()
                if node.state != "dead"]
        if not urls:
            return 503, {"error": "no live nodes to federate"}
        self.federation_rounds += 1

        def round_locked() -> dict:
            with self._federate_lock:
                return federate_round(self.client, urls, self._watermarks)

        summary = await self._loop.run_in_executor(None, round_locked)
        return 200, summary

    # -- probes ------------------------------------------------------------

    def _healthz(self) -> dict:
        return {
            "status": "draining" if self._draining else "ok",
            "draining": self._draining,
            "batches": self.batches,
            "batches_active": self.batches_active,
            "federation_rounds": self.federation_rounds,
            "min_nodes": self.coord.min_nodes,
            "registry": self.registry.as_dict(),
        }

    def _metrics_text(self) -> str:
        registry = get_registry()
        counts = self.registry.counts()
        nodes = registry.gauge(
            "repro_coord_nodes",
            "Registered worker nodes, by health state.", ("state",),
        )
        for state in NODE_STATES:
            nodes.set(counts[state], state=state)
        registry.gauge(
            "repro_coord_batches_active",
            "Cluster batches dispatching right now.",
        ).set(self.batches_active)
        registry.gauge(
            "repro_coord_draining",
            "1 while the coordinator is draining (SIGTERM grace), else 0.",
        ).set(1 if self._draining else 0)
        for name, help_text in _COUNTERS:
            registry.counter(name, help_text).inc(0)
        return registry.render_prometheus()

    # -- routing -----------------------------------------------------------

    async def _route(self, method: str, path: str, body: bytes,
                     query: str = ""
                     ) -> tuple[int, dict | str] | tuple[int, dict | str, dict]:
        get_registry().counter(
            "repro_coord_http_requests_total",
            "Coordinator HTTP requests received, by path.", ("path",),
        ).inc(path=path if path in _KNOWN_PATHS else "other")
        if path == "/cache/federate":
            if method != "POST":
                return 405, {"error": "use POST for /cache/federate"}
            return await self._federate()
        if path == "/healthz":
            if method != "GET":
                return 405, {"error": "use GET for /healthz"}
            return 200, self._healthz()
        if path == "/metrics":
            if method != "GET":
                return 405, {"error": "use GET for /metrics"}
            return 200, self._metrics_text()
        if path == "/nodes":
            if method == "GET":
                return 200, self.registry.as_dict()
            if method != "POST":
                return 405, {"error": "use GET or POST for /nodes"}
            try:
                payload = json.loads(body or b"null")
            except json.JSONDecodeError as error:
                return 400, {"error": f"invalid JSON body: {error}"}
            if not isinstance(payload, dict) \
                    or not isinstance(payload.get("url"), str):
                return 400, {"error": 'body must be {"url": "host:port"}'}
            try:
                node = self.registry.register(payload["url"])
            except RegistryError as error:
                return 400, {"error": str(error)}
            return 200, {"registered": node.url, "state": node.state}
        if path == "/batch":
            if method != "POST":
                return 405, {"error": "use POST for /batch"}
            if self._draining:
                return 503, {"error": "coordinator draining; retry later"}, \
                    {"Retry-After": str(max(1, int(self.coord.drain_timeout)))}
            try:
                payload = json.loads(body or b"null")
            except json.JSONDecodeError as error:
                return 400, {"error": f"invalid JSON body: {error}"}
            try:
                return await self._batch(payload)
            except ReproError as error:
                _LOG.warning("rejected batch request: %s", error)
                return 400, {"error": str(error)}
        return 404, {"error": f"unknown path {path!r}"}

    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        await handle_http_client(reader, writer, self._route)


async def coordinate_forever(coord: CoordConfig | None = None,
                             analysis: AnalysisConfig | None = None,
                             ready=None) -> int:
    """Run a coordinator until SIGINT (immediate) or SIGTERM (drain) —
    the ``repro-diffcost coord`` entry point's core."""
    import signal as signal_module

    server = CoordinatorServer(coord, analysis)
    await server.start()
    if ready is not None:
        ready(server)
    stop = asyncio.Event()
    drain = asyncio.Event()
    loop = asyncio.get_running_loop()
    installed = []
    for signum, event in ((signal_module.SIGINT, stop),
                          (signal_module.SIGTERM, drain)):
        try:
            loop.add_signal_handler(signum, event.set)
            installed.append(signum)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass
    waits = [asyncio.ensure_future(stop.wait()),
             asyncio.ensure_future(drain.wait())]
    try:
        await asyncio.wait(waits, return_when=asyncio.FIRST_COMPLETED)
        if drain.is_set() and not stop.is_set():
            await server.drain()
    finally:
        for future in waits:
            future.cancel()
        for signum in installed:
            loop.remove_signal_handler(signum)
        await server.stop()
    return 0
