"""Work-stealing fan-out of one batch across worker nodes.

The dispatcher joins the two halves PR 5 shipped: the deterministic
:func:`~repro.engine.batch.pair_shard_index` partition and the
per-node :class:`~repro.serve.AnalysisServer` request path.  A batch
over ``P`` pairs and ``N`` nodes becomes ``N`` shards (the same
hash partition ``batch --shard k/N`` uses), each *owned* by one node —
but ownership is a scheduling preference, not an assignment:

- every node drains its own shard first (cache locality: a node's
  shard is stable across batches, so re-runs replay its cache);
- an idle node **steals pending pairs** from the shard with the most
  work left (the straggler), and when nothing is pending anywhere it
  steals a *duplicate* execution of the longest-in-flight pair — the
  hedge against a slow node.  Duplicates are bounded (two owners max)
  and coalesce first-result-wins; jobs are content-addressed, so both
  executions produce identical canonical results and the nodes' own
  cache/in-flight dedupe absorbs most of the extra cost;
- a pair lost to a dead node (connection refused/reset, exhausted
  retries, heartbeat death) is **requeued** and reassigned to whichever
  healthy node claims it next;
- when eligible capacity drops below
  :attr:`~repro.config.CoordConfig.min_nodes`, the batch degrades
  gracefully: dispatch stops and the completed pairs come back as a
  partial, mergeable report instead of the run spinning forever.

The results are reassembled into per-shard report dicts
(:func:`shard_report`) and folded through the CI-tested
:func:`repro.serve.shard.merge_reports` invariant — the merged
report's canonical bytes are identical to a fault-free local
``batch --jobs 1`` run, which is what the cluster-chaos-smoke CI job
gates under node kills and ``net.*`` fault plans.
"""

from __future__ import annotations

import threading
import time
from dataclasses import asdict, dataclass, field
from typing import Any

from repro.config import AnalysisConfig, CoordConfig
from repro.engine.batch import ProgramPair, discover_pairs, pair_shard_index
from repro.errors import AnalysisError
from repro.obs import get_logger, get_registry
from repro.serve.shard import merge_reports

from repro.coord.client import ClientError, NodeUnreachable, ResilientClient
from repro.coord.registry import NodeRegistry

_LOG = get_logger("coord.dispatch")

#: Claim-loop verdicts (distinct from "no task right now" = ``None``).
_FINISHED = object()

#: Most nodes that may hold one pair in flight at once (the original
#: owner plus one stealing hedge).
MAX_DUPLICATES = 2


@dataclass
class PairTask:
    """One pair's dispatch state."""

    name: str
    shard: int
    payload: dict[str, Any]
    state: str = "pending"  # pending | inflight | done | failed
    owners: set[str] = field(default_factory=set)
    started: float | None = None
    executions: int = 0
    result: dict[str, Any] | None = None
    error: str | None = None


class ClusterDispatch:
    """One batch's fan-out; single-use.  See the module docstring."""

    def __init__(self, pairs: list[ProgramPair], config: AnalysisConfig,
                 registry: NodeRegistry, client: ResilientClient,
                 coord: CoordConfig, shards: int | None = None):
        owners = [node.url for node in registry.eligible()]
        if len(owners) < coord.min_nodes:
            raise AnalysisError(
                f"cluster below capacity floor: {len(owners)} eligible "
                f"node(s), need at least {coord.min_nodes}"
            )
        self.registry = registry
        self.client = client
        self.coord = coord
        self.config = config
        self.shards = shards or len(owners)
        if self.shards < 1:
            raise AnalysisError("shards must be at least 1")
        #: Shard index -> owning node URL (round-robin over the
        #: URL-sorted eligible nodes, so every coordinator computes the
        #: same ownership from the same registry).
        self.owner = {index: owners[index % len(owners)]
                      for index in range(self.shards)}
        config_overrides = asdict(config)
        self.tasks = [
            PairTask(
                name=pair.name,
                shard=pair_shard_index(pair, config, self.shards),
                payload={
                    "kind": "diff",
                    "old_source": pair.sources()[0],
                    "new_source": pair.sources()[1],
                    "config": config_overrides,
                    "name": pair.name,
                },
            )
            for pair in pairs
        ]
        self._lock = threading.Lock()
        self._finished = threading.Event()
        self._aborted = False
        self.stats = {
            "steals": 0,
            "reassigned": 0,
            "duplicates": 0,
            "coalesced": 0,
            "requeues": 0,
            "executions": 0,
        }

    # -- claiming ----------------------------------------------------------

    def _pending(self) -> list[PairTask]:
        return [task for task in self.tasks if task.state == "pending"]

    def _unresolved(self) -> int:
        return sum(1 for task in self.tasks
                   if task.state not in ("done", "failed"))

    def _count(self, counter: str, metric: str, help_text: str) -> None:
        self.stats[counter] += 1
        get_registry().counter(metric, help_text).inc()

    def _claim(self, node_url: str):
        """The next task for ``node_url``: own shard first, then steal
        pending from the biggest straggler shard, then a bounded
        duplicate of the longest-in-flight pair."""
        with self._lock:
            if self._aborted or not self._unresolved():
                return _FINISHED
            pending = self._pending()
            choice = None
            own = [task for task in pending
                   if self.owner[task.shard] == node_url]
            if own:
                choice = own[0]
            elif pending:
                # Steal from the shard with the most pending work.
                backlog: dict[int, int] = {}
                for task in pending:
                    backlog[task.shard] = backlog.get(task.shard, 0) + 1
                straggler = max(sorted(backlog), key=backlog.get)
                choice = next(task for task in pending
                              if task.shard == straggler)
                owner_state = {n.url: n.state
                               for n in self.registry.nodes()}.get(
                                   self.owner[choice.shard])
                if owner_state in ("live", "suspect"):
                    self._count("steals", "repro_coord_steals_total",
                                "Pairs stolen from another node's shard.")
                else:
                    self._count("reassigned",
                                "repro_coord_reassigned_total",
                                "Pairs reassigned off dead or "
                                "quarantined nodes.")
            else:
                # Nothing pending: hedge against a straggling execution
                # by duplicating the longest-in-flight pair elsewhere.
                now = time.monotonic()
                inflight = [
                    task for task in self.tasks
                    if task.state == "inflight"
                    and node_url not in task.owners
                    and len(task.owners) < MAX_DUPLICATES
                    and task.started is not None
                    and now - task.started >= self.coord.steal_after
                ]
                if inflight:
                    choice = min(inflight, key=lambda task: task.started)
                    self._count("duplicates",
                                "repro_coord_duplicates_total",
                                "Straggler pairs duplicated onto a "
                                "second node.")
                    self._count("steals", "repro_coord_steals_total",
                                "Pairs stolen from another node's shard.")
            if choice is None:
                return None
            if choice.state == "pending":
                choice.state = "inflight"
                choice.started = time.monotonic()
            choice.owners.add(node_url)
            choice.executions += 1
            self.stats["executions"] += 1
            return choice

    # -- completion / failure ----------------------------------------------

    def _complete(self, node_url: str, task: PairTask,
                  result: dict[str, Any]) -> None:
        with self._lock:
            task.owners.discard(node_url)
            if task.result is None:
                task.result = result
                task.state = "done"
            else:
                # A stolen duplicate finished second; identical by
                # content addressing, so the first answer stands.
                self.stats["coalesced"] += 1
            self._check_finished()

    def _fail(self, node_url: str, task: PairTask, error: str,
              permanent: bool) -> None:
        with self._lock:
            task.owners.discard(node_url)
            if task.state == "done":
                pass  # a duplicate already answered
            elif permanent:
                task.state = "failed"
                task.error = error
            elif not task.owners:
                # Last in-flight execution lost its node: requeue for
                # reassignment onto whichever healthy node claims next.
                task.state = "pending"
                task.started = None
                self.stats["requeues"] += 1
                _LOG.warning("requeueing pair %s after %s", task.name, error)
            self._check_finished()

    def _check_finished(self) -> None:
        # Lock held by callers.
        if self._aborted or not self._unresolved():
            self._finished.set()

    def _abort(self, why: str) -> None:
        with self._lock:
            if not self._aborted:
                self._aborted = True
                _LOG.error("aborting batch dispatch: %s", why)
            self._finished.set()

    # -- node worker threads -----------------------------------------------

    def _node_state(self, node_url: str) -> str | None:
        for node in self.registry.nodes():
            if node.url == node_url:
                return node.state
        return None

    def _node_loop(self, node_url: str) -> None:
        while not self._finished.is_set():
            state = self._node_state(node_url)
            if state not in ("live", "suspect"):
                if state is None:
                    return  # evicted: this thread has no node
                self._finished.wait(0.05)
                continue
            task = self._claim(node_url)
            if task is _FINISHED:
                return
            if task is None:
                time.sleep(0.02)
                continue
            self._execute(node_url, task)

    def _execute(self, node_url: str, task: PairTask) -> None:
        try:
            _status, reply = self.client.post(
                f"{node_url}/analyze", task.payload,
                deadline=self.coord.request_deadline,
                retries=self.coord.client_retries,
            )
            result = reply.get("result") if isinstance(reply, dict) else None
            if not isinstance(result, dict) or "status" not in result:
                raise NodeUnreachable(
                    f"{node_url} returned a malformed analyze reply"
                )
        except NodeUnreachable as error:
            state = self.registry.mark_request_failed(node_url)
            self._fail(node_url, task, str(error), permanent=False)
            if state == "quarantined":
                _LOG.warning("node %s quarantined after repeated request "
                             "failures", node_url)
            return
        except ClientError as error:
            # Deterministic rejection (HTTP 4xx): retrying elsewhere
            # would fail identically — fail the pair loudly instead of
            # melting every node's retry budget.
            self.registry.mark_request_ok(node_url)
            self._fail(node_url, task, str(error), permanent=True)
            return
        self.registry.mark_request_ok(node_url)
        self._complete(node_url, task, result)

    # -- the run -----------------------------------------------------------

    def run(self) -> None:
        """Dispatch until every pair resolves, or the cluster drops
        below the capacity floor (graceful degradation to partial)."""
        get_registry().counter(
            "repro_coord_pairs_dispatched_total",
            "Pairs handed to the cluster dispatcher.",
        ).inc(len(self.tasks))
        if not self.tasks:
            return
        threads = [
            threading.Thread(
                target=self._node_loop, args=(node.url,), daemon=True,
                name=f"coord-node-{node.address}-{worker}",
            )
            for node in self.registry.nodes()
            for worker in range(self.coord.node_concurrency)
        ]
        for thread in threads:
            thread.start()
        try:
            while not self._finished.is_set():
                if len(self.registry.eligible()) < self.coord.min_nodes:
                    self._abort(
                        f"eligible nodes below the capacity floor "
                        f"({self.coord.min_nodes})"
                    )
                    break
                self._finished.wait(0.05)
        finally:
            self._finished.set()
            for thread in threads:
                thread.join(timeout=self.coord.request_deadline + 10)

    # -- report assembly ---------------------------------------------------

    def reports(self, directory: str, pairs_total: int,
                seconds: float) -> list[dict[str, Any]]:
        by_shard: dict[int, list[PairTask]] = {
            index: [] for index in range(self.shards)
        }
        for task in self.tasks:
            by_shard[task.shard].append(task)
        return [
            shard_report(directory, index, self.shards, by_shard[index],
                         pairs_total, seconds / self.shards)
            for index in range(self.shards)
        ]


def shard_report(directory: str, index: int, count: int,
                 tasks: list[PairTask], pairs_total: int,
                 seconds: float) -> dict[str, Any]:
    """One shard's batch-report dict, shaped exactly like
    ``batch --shard index/count --format json`` over the same pairs.

    The stats block counts the *logical* batch — one execution per
    pair, statuses read off the final results — so stolen duplicates
    and client retries never leak into canonical bytes (they live in
    the cluster stats instead).  Unresolved pairs (node death below the
    floor) are simply absent from ``results`` with the shard marked
    ``partial``, the same shape an interrupted ``batch --shard`` run
    flushes.
    """
    ordered = sorted(tasks, key=lambda task: task.name)
    results = [task.result for task in ordered if task.result is not None]
    stats = {"submitted": len(results), "completed": 0, "errors": 0,
             "timeouts": 0, "cancelled": 0, "cache_hits": 0, "retries": 0,
             "seconds": round(seconds, 3)}
    for result in results:
        status = result.get("status")
        if status == "error":
            stats["errors"] += 1
        elif status == "timeout":
            stats["timeouts"] += 1
        elif status == "cancelled":
            stats["cancelled"] += 1
        else:
            stats["completed"] += 1
    return {
        "directory": directory,
        "seconds": round(seconds, 3),
        "shard": f"{index}/{count}",
        "partial": len(results) < len(ordered),
        "pairs_total": pairs_total,
        "pair_names": [task.name for task in ordered],
        "stats": stats,
        "results": results,
    }


def run_cluster_batch(directory: str, config: AnalysisConfig,
                      registry: NodeRegistry, client: ResilientClient,
                      coord: CoordConfig, shards: int | None = None,
                      ) -> tuple[dict[str, Any], dict[str, Any]]:
    """Fan one whole-directory batch across the registered nodes.

    Returns ``(merged_report, cluster_stats)``: the merged report is
    byte-identical (canonically) to a fault-free local ``--jobs 1`` run
    when every pair resolved, and a partial mergeable report when the
    cluster degraded below the capacity floor mid-run.
    """
    pairs = discover_pairs(directory)
    dispatch = ClusterDispatch(pairs, config, registry, client, coord,
                               shards=shards)
    started = time.perf_counter()
    _LOG.info("cluster batch over %s: %d pair(s), %d shard(s), %d node(s)",
              directory, len(pairs), dispatch.shards,
              len(registry.eligible()))
    dispatch.run()
    seconds = time.perf_counter() - started
    get_registry().counter(
        "repro_coord_batches_total", "Cluster batches run to completion.",
    ).inc()
    merged = merge_reports(
        dispatch.reports(str(directory), len(pairs), seconds)
    )
    failed = sorted(task.name for task in dispatch.tasks
                    if task.state == "failed")
    unresolved = sorted(task.name for task in dispatch.tasks
                        if task.state in ("pending", "inflight"))
    cluster = {
        "pairs": len(pairs),
        "shards": dispatch.shards,
        "owners": dict(sorted(dispatch.owner.items())),
        "aborted": dispatch._aborted,
        "failed_pairs": failed,
        "unresolved_pairs": unresolved,
        "seconds": round(seconds, 3),
        **dispatch.stats,
    }
    _LOG.info("cluster batch done in %.2fs: %d/%d pair(s), %d steal(s), "
              "%d reassignment(s), %d duplicate(s)", seconds,
              len(pairs) - len(failed) - len(unresolved), len(pairs),
              dispatch.stats["steals"], dispatch.stats["reassigned"],
              dispatch.stats["requeues"] and dispatch.stats["duplicates"])
    return merged, cluster
