"""Resilient stdlib HTTP client for coordinator → node traffic.

The cluster's network edge, built on :mod:`http.client` only.  Every
request carries a hard per-request deadline (the socket timeout), and
failures are classified the same way the engine classifies job
failures: *transient* outcomes (connection refused/reset, timeouts,
truncated or non-JSON bodies, ``429``/``503`` shedding, 5xx) are
retried with bounded exponential backoff and **seeded** jitter — two
coordinator runs with the same seed sleep the same schedule — while
*deterministic* rejections (4xx other than 429) fail fast.

A shedding node's ``Retry-After`` hint overrides the computed backoff:
the node knows its own queue depth better than our exponential guess
(see :meth:`repro.serve.AnalysisServer._shed`, which derives the hint
from queue depth and drain state).

Fault-injection sites (``net.refused``, ``net.reset``, ``net.slow``,
``net.truncated_body``) are consulted per attempt with the request URL
as the match name; ``node.partition`` is consulted with the node's
``host:port`` address, so one rule takes a whole node off the network
regardless of path.  Chaos plans drive all five from the outside with
no test hooks in the client.
"""

from __future__ import annotations

import http.client
import json
import random
import time
from typing import Any
from urllib.parse import urlsplit

from repro.errors import ReproError
from repro.faults import fault_point
from repro.obs import get_logger, get_registry

_LOG = get_logger("coord.client")

#: Longest single backoff sleep; also caps an absurd ``Retry-After``.
BACKOFF_CAP = 5.0


class ClientError(ReproError):
    """A request that could not produce a usable JSON response.

    ``retryable`` carries the transient-vs-deterministic classification
    so callers (the dispatcher, the heartbeat monitor) can decide
    whether the *node* failed or the *request* was wrong.
    """

    def __init__(self, message: str, *, retryable: bool = True,
                 status: int | None = None):
        super().__init__(message)
        self.retryable = retryable
        self.status = status


class NodeUnreachable(ClientError):
    """Exhausted every retry without one usable response."""


def backoff_schedule(attempt: int, rng: random.Random,
                     base: float = 0.05, cap: float = BACKOFF_CAP) -> float:
    """Bounded exponential backoff with seeded half-width jitter:
    ``min(cap, base * 2**attempt)`` scaled into ``[0.5, 1.0)`` of
    itself, so concurrent retries decorrelate without ever sleeping
    longer than the bound."""
    return min(cap, base * (2 ** attempt)) * (0.5 + rng.random() / 2)


def _retry_after(headers: dict[str, str]) -> float | None:
    value = headers.get("retry-after")
    if value is None:
        return None
    try:
        return max(0.0, min(float(value), BACKOFF_CAP))
    except ValueError:
        return None


class ResilientClient:
    """HTTP/JSON client with deadlines, retries and fault injection.

    One client serves a whole coordinator; it is thread-safe because it
    holds no connection state (one short-lived connection per attempt —
    node processes come and go, so connection reuse would just add a
    stale-socket failure mode to every node restart).
    """

    def __init__(self, deadline: float = 30.0, retries: int = 3,
                 backoff_base: float = 0.05, seed: int = 2022):
        self.deadline = deadline
        self.retries = retries
        self.backoff_base = backoff_base
        self._rng = random.Random(seed)

    # -- one attempt -------------------------------------------------------

    def _attempt(self, method: str, url: str, body: bytes | None,
                 deadline: float, attempt: int = 0
                 ) -> tuple[int, dict[str, str], bytes]:
        parts = urlsplit(url)
        address = parts.netloc
        path = parts.path or "/"
        if parts.query:
            path = f"{path}?{parts.query}"
        # The attempt number reaches every site so ``max_attempts: 1``
        # rules model self-healing transients (the retry runs clean),
        # while ``max_attempts: 0`` models a standing partition.
        if fault_point("node.partition", name=address,
                       attempt=attempt) is not None:
            raise ConnectionRefusedError(
                f"injected partition: {address} unreachable"
            )
        if fault_point("net.refused", name=url, attempt=attempt) is not None:
            raise ConnectionRefusedError(f"injected refusal: {url}")
        slow = fault_point("net.slow", name=url, attempt=attempt)
        if slow is not None:
            time.sleep(min(slow.seconds, deadline))
        connection = http.client.HTTPConnection(
            parts.hostname, parts.port, timeout=deadline
        )
        try:
            connection.request(
                method, path, body=body,
                headers={"Content-Type": "application/json",
                         "Connection": "close"},
            )
            response = connection.getresponse()
            if fault_point("net.reset", name=url,
                           attempt=attempt) is not None:
                raise ConnectionResetError(f"injected reset: {url}")
            data = response.read()
            if fault_point("net.truncated_body", name=url,
                           attempt=attempt) is not None:
                data = data[:max(0, len(data) // 3)]
            headers = {name.lower(): value
                       for name, value in response.getheaders()}
            return response.status, headers, data
        finally:
            connection.close()

    # -- the retrying request ---------------------------------------------

    def request(self, method: str, url: str, payload: Any = None, *,
                deadline: float | None = None,
                retries: int | None = None) -> tuple[int, dict]:
        """Issue one JSON request; returns ``(status, parsed_body)``.

        Raises :class:`ClientError` (``retryable=False``) on a
        deterministic 4xx rejection and :class:`NodeUnreachable` once
        every retry of a transient failure is spent.  Never raises raw
        socket errors — the caller sees the classification, not the
        plumbing.
        """
        deadline = self.deadline if deadline is None else deadline
        retries = self.retries if retries is None else retries
        body = None if payload is None else json.dumps(payload).encode()
        last_error = "no attempt made"
        for attempt in range(retries + 1):
            if attempt:
                get_registry().counter(
                    "repro_coord_client_retries_total",
                    "Node requests retried after a transient failure.",
                ).inc()
            try:
                status, headers, data = self._attempt(
                    method, url, body, deadline, attempt
                )
            except (OSError, http.client.HTTPException) as error:
                # Connection refused/reset, timeout, bad chunking — the
                # node or the network, never the request: retryable.
                last_error = f"{type(error).__name__}: {error}"
                _LOG.warning("attempt %d/%d %s %s failed: %s", attempt + 1,
                             retries + 1, method, url, last_error)
                self._sleep_before_retry(attempt, retries, None)
                continue
            if status in (429, 503):
                hint = _retry_after(headers)
                last_error = f"node shedding load (HTTP {status})"
                _LOG.info("%s %s shed (HTTP %d, Retry-After %s)", method,
                          url, status, hint)
                self._sleep_before_retry(attempt, retries, hint)
                continue
            if status >= 500:
                last_error = f"HTTP {status}"
                self._sleep_before_retry(attempt, retries, None)
                continue
            try:
                parsed = json.loads(data or b"null")
            except json.JSONDecodeError:
                # A truncated or garbled body: the transport lied, the
                # node may be fine — retry for a complete answer.
                last_error = f"unparseable body ({len(data)} bytes)"
                _LOG.warning("%s %s returned %d with a bad body", method,
                             url, status)
                self._sleep_before_retry(attempt, retries, None)
                continue
            if 400 <= status < 500:
                detail = (parsed.get("error", "no detail")
                          if isinstance(parsed, dict) else "no detail")
                raise ClientError(
                    f"{method} {url} rejected: HTTP {status} ({detail})",
                    retryable=False, status=status,
                )
            return status, parsed
        raise NodeUnreachable(
            f"{method} {url} failed after {retries + 1} attempt(s): "
            f"{last_error}"
        )

    def _sleep_before_retry(self, attempt: int, retries: int,
                            hint: float | None) -> None:
        if attempt >= retries:
            return  # the loop is about to give up; don't sleep for it
        if hint is not None:
            time.sleep(hint)
            return
        time.sleep(backoff_schedule(attempt, self._rng,
                                    base=self.backoff_base))

    # -- convenience wrappers ---------------------------------------------

    def get(self, url: str, **kwargs) -> tuple[int, dict]:
        return self.request("GET", url, **kwargs)

    def post(self, url: str, payload: Any, **kwargs) -> tuple[int, dict]:
        return self.request("POST", url, payload, **kwargs)
