"""Declarative, seeded fault plans.

A :class:`FaultPlan` is a small JSON document describing *which*
failures to inject *where*::

    {"seed": 2022,
     "rules": [
       {"site": "worker.crash", "name": "ex2[d1K1*", "max_attempts": 1},
       {"site": "cache.torn_write", "key_prefix": "3f", "times": 1},
       {"site": "job.delay", "seconds": 0.05, "times": 3},
       {"site": "server.drop", "name": "/analyze", "times": 1}]}

Every rule is matched deterministically: by the job's display ``name``
(:mod:`fnmatch` glob — portfolio rung names embed the rung, so
"kill the 2nd rung of pair X" is just ``name="X[d2*"``), by a hex
prefix of its content-addressed key, by job ``kind``, and by the
*attempt* number.  ``max_attempts`` is the self-healing hook: a rule
with ``max_attempts=1`` fires on the first attempt only, so the retry
of the same job deterministically succeeds.  ``times`` caps how often
a rule fires per process.

The ``seed`` drives the corruption bytes of ``cache.corrupt``, keyed
per entry, so a chaos run is reproducible bit for bit.

Sites (see :func:`repro.faults.fault_point` callers):

=================  =====================================================
``worker.crash``   pool worker exits hard (``os._exit``) before the job
``worker.hang``    worker stops heartbeating and sleeps ``seconds``
``job.delay``      sleep ``seconds`` before executing the job
``job.error``      raise :class:`InjectedFaultError` instead of running
``cache.torn_write``  truncate the entry bytes after a successful store
                    (also consulted with ``name="compact"`` to crash a
                    warm-log compaction before it publishes)
``cache.corrupt``  overwrite entry bytes with seeded garbage
``cache.delta_drop``  node answers ``GET /cache/delta`` with a 503 —
                    the federation pull leg never arrives
``cache.merge_drop``  node answers ``POST /cache/merge`` with a 503 —
                    the federation push leg is shed
``server.drop``    close the client connection without any response
``net.refused``    coordinator client: connection refused before connect
``net.reset``      coordinator client: connection reset mid-exchange
``net.slow``       coordinator client: add ``seconds`` of latency
``net.truncated_body``  coordinator client: response body cut short
``node.partition``  every request to the matching node fails (matched
                    by node address, not request path)
=================  =====================================================

The ``net.*`` sites are matched by the request URL and the
``node.partition`` site by the node's ``host:port`` address, so one
rule can partition a whole node (``name="*:8791"``) while another
resets a single endpoint (``name="*/analyze"``).
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from fnmatch import fnmatch
from typing import Any

from repro.errors import ReproError

FAULT_SITES = (
    "worker.crash",
    "worker.hang",
    "job.delay",
    "job.error",
    "cache.torn_write",
    "cache.corrupt",
    "cache.delta_drop",
    "cache.merge_drop",
    "server.drop",
    "net.refused",
    "net.reset",
    "net.slow",
    "net.truncated_body",
    "node.partition",
)

#: Cache-corruption flavors of ``cache.torn_write`` / ``cache.corrupt``.
CORRUPTION_MODES = ("truncate", "garbage")


class FaultPlanError(ReproError):
    """A malformed fault plan (bad JSON, unknown site, invalid bounds)."""


class InjectedFaultError(OSError):
    """The failure raised by ``job.error`` sites.

    Subclasses :class:`OSError` deliberately: injected faults model
    transient infrastructure failures, which the executor's retry
    classification treats as retryable.
    """


@dataclass(frozen=True)
class FaultRule:
    """One injection rule; see the module docstring for the schema.

    Attributes
    ----------
    site:
        Injection site, one of :data:`FAULT_SITES`.
    name:
        :mod:`fnmatch` glob over the display name at the site (job
        name / request path).  Default matches everything.
    key_prefix:
        Hex prefix of the job's content-addressed key ("" = any).
    kind:
        Glob over the job kind (``diff``/``bound``/...; "" outside
        job context).
    max_attempts:
        Fire only while the job's attempt number is below this — the
        retry of a once-faulted job runs clean.  ``0`` means every
        attempt (a permanently faulty rule).
    times:
        Cap on firings of this rule per process (``None`` = unbounded).
    seconds:
        Duration of ``job.delay`` / ``worker.hang`` sleeps.
    mode:
        Cache-corruption flavor: ``"truncate"`` or ``"garbage"``.
    note:
        Free-form description, echoed in logs.
    """

    site: str
    name: str = "*"
    key_prefix: str = ""
    kind: str = "*"
    max_attempts: int = 1
    times: int | None = None
    seconds: float = 0.05
    mode: str = "truncate"
    note: str = ""

    def __post_init__(self):
        if self.site not in FAULT_SITES:
            raise FaultPlanError(
                f"unknown fault site {self.site!r} "
                f"(use one of {', '.join(FAULT_SITES)})"
            )
        if self.max_attempts < 0:
            raise FaultPlanError("max_attempts must be >= 0")
        if self.times is not None and self.times < 1:
            raise FaultPlanError("times must be >= 1 (or omitted)")
        if self.seconds < 0:
            raise FaultPlanError("seconds must be >= 0")
        if self.mode not in CORRUPTION_MODES:
            raise FaultPlanError(
                f"unknown corruption mode {self.mode!r} "
                f"(use one of {CORRUPTION_MODES})"
            )

    def matches(self, site: str, name: str, key: str, kind: str,
                attempt: int) -> bool:
        """Whether this rule applies at a site occurrence (ignoring the
        per-process ``times`` budget, which the plan tracks)."""
        if site != self.site:
            return False
        if self.max_attempts and attempt >= self.max_attempts:
            return False
        if self.key_prefix and not key.startswith(self.key_prefix):
            return False
        if not fnmatch(name, self.name):
            return False
        return fnmatch(kind, self.kind) if kind else self.kind in ("*", "")

    @staticmethod
    def from_dict(data: dict[str, Any]) -> "FaultRule":
        if not isinstance(data, dict):
            raise FaultPlanError("each fault rule must be a JSON object")
        unknown = sorted(set(data) - {
            "site", "name", "key_prefix", "kind", "max_attempts", "times",
            "seconds", "mode", "note",
        })
        if unknown:
            raise FaultPlanError(
                f"unknown fault rule field(s): {', '.join(unknown)}"
            )
        if "site" not in data:
            raise FaultPlanError("fault rule needs a 'site'")
        try:
            return FaultRule(**data)
        except TypeError as error:
            raise FaultPlanError(f"invalid fault rule: {error}") from None


@dataclass
class FaultPlan:
    """A seeded list of :class:`FaultRule`, with per-process firing
    counters.

    Counters are process-local on purpose: a ``worker.crash`` rule
    counts inside the worker it kills, a ``cache.torn_write`` rule in
    whatever process ran the store.  Determinism comes from the match
    predicates (name/key/kind/attempt), not from cross-process counter
    state — plans meant to be byte-reproducible bound their rules with
    ``max_attempts``/``key_prefix``/``name`` rather than ``times``.
    """

    seed: int = 0
    rules: tuple[FaultRule, ...] = ()
    _fired: list[int] = field(default_factory=list, repr=False)

    def __post_init__(self):
        self.rules = tuple(self.rules)
        self._fired = [0] * len(self.rules)

    def match(self, site: str, *, name: str = "", key: str = "",
              kind: str = "", attempt: int = 0) -> FaultRule | None:
        """First applicable rule with budget remaining (and burn one
        firing from its budget), or ``None``."""
        for index, rule in enumerate(self.rules):
            if rule.times is not None and self._fired[index] >= rule.times:
                continue
            if rule.matches(site, name, key, kind, attempt):
                self._fired[index] += 1
                return rule
        return None

    def fired(self) -> int:
        """Total rule firings observed in this process."""
        return sum(self._fired)

    def corruption_bytes(self, key: str, length: int = 64) -> bytes:
        """Deterministic garbage for ``cache.corrupt``, keyed per entry
        by the plan seed."""
        rng = random.Random(f"{self.seed}:{key}")
        return bytes(rng.randrange(256) for _ in range(length))

    @staticmethod
    def from_dict(data: dict[str, Any]) -> "FaultPlan":
        if not isinstance(data, dict):
            raise FaultPlanError("fault plan must be a JSON object")
        unknown = sorted(set(data) - {"seed", "rules"})
        if unknown:
            raise FaultPlanError(
                f"unknown fault plan field(s): {', '.join(unknown)}"
            )
        seed = data.get("seed", 0)
        if not isinstance(seed, int):
            raise FaultPlanError("seed must be an integer")
        rules_data = data.get("rules", [])
        if not isinstance(rules_data, list):
            raise FaultPlanError("rules must be a JSON array")
        rules = []
        for position, rule_data in enumerate(rules_data):
            try:
                rules.append(FaultRule.from_dict(rule_data))
            except FaultPlanError as error:
                # Name the offending rule: its position always, plus its
                # note/name/site when present — "rule #2 ('kill node B'):
                # unknown fault site ..." beats a bare rejection in a
                # plan with a dozen rules.
                label = ""
                if isinstance(rule_data, dict):
                    hint = (rule_data.get("note") or rule_data.get("name")
                            or rule_data.get("site"))
                    if hint:
                        label = f" ({hint!r})"
                raise FaultPlanError(
                    f"rule #{position}{label}: {error}"
                ) from None
        return FaultPlan(seed=seed, rules=tuple(rules))


def load_plan(path: str) -> FaultPlan:
    """Load and validate a fault plan JSON file."""
    try:
        with open(path) as handle:
            data = json.load(handle)
    except OSError as error:
        raise FaultPlanError(f"cannot read fault plan {path}: {error}") \
            from None
    except json.JSONDecodeError as error:
        raise FaultPlanError(f"fault plan {path} is not valid JSON: {error}") \
            from None
    return FaultPlan.from_dict(data)
