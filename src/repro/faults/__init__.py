"""Deterministic, seeded fault injection (:mod:`repro.faults`).

The chaos-testing layer of the engine: a :class:`FaultPlan` (JSON,
see :mod:`repro.faults.plan`) declares failures — worker crashes,
hangs, transient job errors, delays, cache corruption, dropped
connections, and network faults between the cluster coordinator and
its worker nodes (refused/reset/slow/truncated exchanges, whole-node
partitions) — and the runtime's injection sites consult it through
:func:`fault_point`.  With no plan active every site is a single
dictionary lookup, so production runs pay nothing.

Activation travels by environment (like ``REPRO_LOG``/``REPRO_TRACE``):
``REPRO_FAULTS=plan.json`` — set directly, or via the CLI's
``--faults`` flag through :func:`activate` — is inherited by pool
worker processes under both fork and spawn start methods, so
worker-side sites (``worker.crash``, ``job.delay``) see the same plan
as the parent.

Faults are *volatile machine conditions* by design: an injected crash
changes retry counters and wall-clock timings but — thanks to the
engine's retry/recovery layer — never a canonical report byte.  The
chaos suite (``tests/test_faults.py``) and CI's chaos-smoke job hold
the stack to that invariant.
"""

from __future__ import annotations

import os

from repro.faults.plan import (
    CORRUPTION_MODES,
    FAULT_SITES,
    FaultPlan,
    FaultPlanError,
    FaultRule,
    InjectedFaultError,
    load_plan,
)
from repro.obs import get_logger, get_registry

__all__ = [
    "CORRUPTION_MODES",
    "FAULT_SITES",
    "FAULTS_ENV",
    "FaultPlan",
    "FaultPlanError",
    "FaultRule",
    "InjectedFaultError",
    "activate",
    "active_plan",
    "fault_point",
    "load_plan",
    "set_plan",
]

_LOG = get_logger("faults")

#: Environment variable naming the active plan file; worker processes
#: inherit it, so injection follows jobs across process boundaries.
FAULTS_ENV = "REPRO_FAULTS"

_DIRECT = "<set_plan>"

# Per-process plan registry.  Plain rebinding of immutable references —
# each process (parent and every worker) loads its own copy from the
# environment, which is exactly the fork-safe propagation model the
# observability layer uses.
_PLAN: FaultPlan | None = None
_PLAN_SOURCE: str | None = None


def set_plan(plan: FaultPlan | None) -> None:
    """Install ``plan`` in this process only (unit tests).  ``None``
    reverts to environment-driven loading."""
    global _PLAN, _PLAN_SOURCE
    _PLAN = plan
    _PLAN_SOURCE = _DIRECT if plan is not None else None


def activate(path: str) -> FaultPlan:
    """Validate the plan at ``path`` and export it to this process and
    its future workers via :data:`FAULTS_ENV` (the ``--faults`` CLI
    path).  Raises :class:`FaultPlanError` on a bad plan."""
    plan = load_plan(path)
    os.environ[FAULTS_ENV] = path
    _LOG.warning("fault injection active: %d rule(s) from %s (seed %d)",
                 len(plan.rules), path, plan.seed)
    return plan


def active_plan() -> FaultPlan | None:
    """The process's active plan: one installed by :func:`set_plan`,
    else lazily loaded from :data:`FAULTS_ENV` (re-read when the
    variable changes, so tests can flip plans without reimporting)."""
    global _PLAN, _PLAN_SOURCE
    if _PLAN_SOURCE == _DIRECT:
        return _PLAN
    source = os.environ.get(FAULTS_ENV) or None
    if source != _PLAN_SOURCE:
        _PLAN = load_plan(source) if source else None
        _PLAN_SOURCE = source
    return _PLAN


def fault_point(site: str, *, name: str = "", key: str = "",
                kind: str = "", attempt: int = 0) -> FaultRule | None:
    """Consult the active plan at an injection site.

    Returns the matched :class:`FaultRule` (already counted and
    logged) for the caller to apply, or ``None`` — the overwhelmingly
    common case, a dictionary lookup when no plan is active.
    """
    plan = active_plan()
    if plan is None:
        return None
    rule = plan.match(site, name=name, key=key, kind=kind, attempt=attempt)
    if rule is None:
        return None
    get_registry().counter(
        "repro_faults_injected_total",
        "Faults injected by the active plan, by site.",
        ("site",),
    ).inc(site=site)
    _LOG.warning("injecting fault site=%s name=%r kind=%s attempt=%d%s",
                 site, name, kind or "-", attempt,
                 f" ({rule.note})" if rule.note else "")
    return rule
