"""Small shared utilities: rational helpers, naming, timers."""

from repro.utils.rationals import (
    as_fraction,
    fraction_to_str,
    rationalize,
    snap_to_int,
)
from repro.utils.naming import FreshNameGenerator
from repro.utils.timers import Stopwatch

__all__ = [
    "as_fraction",
    "fraction_to_str",
    "rationalize",
    "snap_to_int",
    "FreshNameGenerator",
    "Stopwatch",
]
