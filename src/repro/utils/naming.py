"""Deterministic fresh-name generation.

Fresh names are needed in several places: fresh variables for
nondeterministic updates during constraint generation, LP variable names
for template coefficients, and renamings during Fourier-Motzkin
projection.  Names are deterministic so that analysis runs (and hence LP
instances) are reproducible.
"""

from __future__ import annotations


class FreshNameGenerator:
    """Generate names like ``prefix!0``, ``prefix!1``, ...

    The separator ``!`` is not a legal identifier character in the `imp`
    language, so generated names can never collide with program
    variables.
    """

    def __init__(self, separator: str = "!"):
        self._separator = separator
        self._counters: dict[str, int] = {}

    def fresh(self, prefix: str) -> str:
        """Return the next unused name for ``prefix``."""
        index = self._counters.get(prefix, 0)
        self._counters[prefix] = index + 1
        return f"{prefix}{self._separator}{index}"

    def reset(self) -> None:
        """Forget all counters (names may repeat afterwards)."""
        self._counters.clear()
