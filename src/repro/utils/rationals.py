"""Helpers for working with exact rational numbers.

The symbolic layers of the library (polynomials, guards, invariants,
certificates) use :class:`fractions.Fraction` throughout.  Floats only
appear at the boundary with the floating-point LP backend; the helpers
here convert between the two worlds deterministically.
"""

from __future__ import annotations

from fractions import Fraction
from numbers import Rational

Numeric = int | float | Fraction


def as_fraction(value: Numeric) -> Fraction:
    """Convert ``value`` to a :class:`Fraction`.

    Integers and rationals convert exactly.  Floats are converted via
    :func:`rationalize`, which limits the denominator so that LP-solver
    noise does not produce absurd fractions such as ``6004799503160661/
    18014398509481984``.
    """
    if isinstance(value, Fraction):
        return value
    if isinstance(value, (int, Rational)):
        return Fraction(value)
    if isinstance(value, float):
        return rationalize(value)
    raise TypeError(f"cannot interpret {value!r} as a rational number")


def rationalize(value: float, max_denominator: int = 10**9) -> Fraction:
    """Convert a float to a nearby rational with a bounded denominator."""
    if value != value:  # NaN
        raise ValueError("cannot rationalize NaN")
    return Fraction(value).limit_denominator(max_denominator)


def snap_to_int(value: Numeric, tolerance: float = 1e-6) -> Numeric:  # lint: allow[float-cast] display-side rounding, not an LP input
    """Snap ``value`` to the nearest integer when within ``tolerance``.

    LP solvers return values such as ``99.99999999973`` for what is
    semantically the integer 100; reports use this helper for display.
    The original value is returned unchanged when it is not close to an
    integer.
    """
    nearest = round(float(value))
    if abs(float(value) - nearest) <= tolerance:
        return nearest
    return value


def format_threshold(value: Numeric | None, missing: str = "✗") -> str:  # lint: allow[float-cast] display-side rendering
    """Render a computed threshold for tables: ``missing`` for ✗,
    integers snapped (tolerance 1e-4, absorbing float-LP noise),
    everything else with two decimals."""
    if value is None:
        return missing
    snapped = snap_to_int(value, tolerance=1e-4)
    if isinstance(snapped, int):
        return str(snapped)
    return f"{float(value):.2f}"


def fraction_to_str(value: Fraction) -> str:
    """Render a fraction compactly: integers without denominator."""
    if value.denominator == 1:
        return str(value.numerator)
    return f"{value.numerator}/{value.denominator}"
