"""A tiny stopwatch used to report per-phase analysis times.

The paper's Table 1 reports wall-clock time per benchmark (invariant
generation + constraint extraction + LP).  :class:`Stopwatch` collects
named phase durations so the benchmark harness can report the same
breakdown.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator


class Stopwatch:
    """Accumulates wall-clock durations for named phases."""

    def __init__(self):
        self._totals: dict[str, float] = {}

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Context manager measuring one phase; durations accumulate."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self._totals[name] = self._totals.get(name, 0.0) + elapsed

    def elapsed(self, name: str) -> float:
        """Total seconds recorded for ``name`` (0.0 if never entered)."""
        return self._totals.get(name, 0.0)

    def total(self) -> float:
        """Sum of all recorded phases."""
        return sum(self._totals.values())

    def as_dict(self) -> dict[str, float]:
        """A copy of the per-phase totals."""
        return dict(self._totals)
