"""Command-line interface.

Subcommands::

    repro-diffcost diff OLD.imp NEW.imp [-d 2] [-K 2] [--backend scipy]
    repro-diffcost bound OLD.imp NEW.imp --bound "lenA * lenB"
    repro-diffcost refute OLD.imp NEW.imp --candidate 9999
    repro-diffcost single PROGRAM.imp
    repro-diffcost suite [--names a,b,c] [--jobs N]
    repro-diffcost batch DIR [--jobs N] [--portfolio] [--refute]
                             [--cache-dir D] [--max-inflight-pairs N]
                             [--shard K/N] [--trace T.jsonl] [--log-level L]
                             [--max-retries N] [--hang-timeout S]
                             [--faults PLAN.json]
    repro-diffcost merge-shards SHARD.json... [-o merged.json]
                                [--cache-dir D --source-caches A,B]
    repro-diffcost serve [--port P] [--workers N] [--deadline S]
    repro-diffcost coord [--node URL ...] [--min-nodes N] [--batch DIR]
                         [--heartbeat-interval S] [--steal-after S]
    repro-diffcost cache {stats|compact|evict} [--cache-dir D]
                         [--cache-backend dir|warm|auto]
    repro-diffcost perf [--names a,b,c] [--backends exact,exact-warm]
                        [--output BENCH_lp.json] [--baseline SNAPSHOT]
    repro-diffcost show PROGRAM.imp [--dot]
    repro-diffcost lint [PATH...] [--format text|json] [--baseline B.json]
                        [--write-baseline B.json] [--show-suppressed]

``batch`` and ``suite`` flush partial, clearly-marked reports on
SIGTERM/Ctrl-C (exit code 130) instead of dying with nothing — a killed
shard still leaves a mergeable slice.
"""

from __future__ import annotations

import argparse
import contextlib
import signal
import sys

from repro.config import AnalysisConfig, EngineConfig, ObsConfig, ServeConfig
from repro.core import (
    analyze_diffcost,
    analyze_single_program,
    prove_symbolic_bound,
    refute_threshold,
)
from repro.errors import ReproError
from repro.lang import load_program
from repro.lp.backend import available_backends
from repro.poly import parse_polynomial
from repro.ts.pretty import render_dot, render_text


def _add_config_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("-d", "--degree", type=int, default=2,
                        help="maximal template degree (default 2)")
    parser.add_argument("-K", "--max-products", type=int, default=2,
                        help="Handelman product bound (default 2)")
    parser.add_argument("--backend", choices=list(available_backends()),
                        default="scipy", help="LP backend")
    parser.add_argument("--cold-lp", action="store_true",
                        help="solve every LP cold instead of reusing a "
                             "factorized basis across re-solves "
                             "(A/B baseline; answers are identical)")


def _config(args: argparse.Namespace) -> AnalysisConfig:
    return AnalysisConfig(
        degree=args.degree,
        max_products=args.max_products,
        lp_backend=args.backend,
        lp_incremental=not args.cold_lp,
    )


def _add_obs_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--trace", default=None, metavar="FILE",
                        help="append Chrome trace_event JSONL spans here "
                             "(load in Perfetto); workers inherit via "
                             "the REPRO_TRACE environment variable")
    parser.add_argument("--log-level", default=None, metavar="LEVEL",
                        help="log level of the repro logger tree (debug, "
                             "info, warning, ...); default: the "
                             "REPRO_LOG environment variable, else silent")


def _activate_obs(args: argparse.Namespace) -> None:
    ObsConfig(trace_file=args.trace, log_level=args.log_level).activate()


def _load(path: str, name: str | None = None):
    with open(path) as handle:
        return load_program(handle.read(), name=name)


#: Exit code of an interrupted-but-flushed run (SIGTERM / Ctrl-C), the
#: conventional 128 + SIGINT.
EXIT_INTERRUPTED = 130


@contextlib.contextmanager
def _sigterm_as_interrupt():
    """Turn SIGTERM into ``KeyboardInterrupt`` for the enclosed run.

    ``batch`` and ``suite`` flush partial reports on interrupt; without
    this, a supervisor's polite SIGTERM (the normal way a sharded
    worker gets evicted) would kill the process with nothing flushed
    while Ctrl-C flushed everything.
    """
    def _raise(signum, frame):
        raise KeyboardInterrupt()

    try:
        previous = signal.signal(signal.SIGTERM, _raise)
    except ValueError:  # pragma: no cover — non-main thread host app
        previous = None
    try:
        yield
    finally:
        if previous is not None:
            signal.signal(signal.SIGTERM, previous)


def _command_diff(args: argparse.Namespace) -> int:
    old = _load(args.old, "old")
    new = _load(args.new, "new")
    result = analyze_diffcost(old, new, _config(args))
    print(result)
    if result.is_threshold and args.certificates:
        print(result.potential_new)
        print(result.anti_potential_old)
    return 0 if result.is_threshold else 1


def _command_bound(args: argparse.Namespace) -> int:
    old = _load(args.old, "old")
    new = _load(args.new, "new")
    bound = parse_polynomial(args.bound)
    result = prove_symbolic_bound(old, new, bound, _config(args))
    if result.is_proved:
        print(f"proved: cost_new - cost_old <= {bound}")
        return 0
    print(f"could not prove the bound {bound}: {result.message}")
    return 1


def _command_refute(args: argparse.Namespace) -> int:
    old = _load(args.old, "old")
    new = _load(args.new, "new")
    result = refute_threshold(old, new, args.candidate, _config(args))
    print(result)
    return 0 if result.is_refuted else 1


def _command_single(args: argparse.Namespace) -> int:
    program = _load(args.program)
    result = analyze_single_program(program, _config(args))
    print(result)
    if result.is_bounded and args.certificates:
        print(result.upper)
        print(result.lower)
    return 0 if result.is_bounded else 1


def _command_suite(args: argparse.Namespace) -> int:
    from repro.bench import (
        SuiteInterrupted,
        format_csv,
        format_markdown,
        format_table,
        run_suite,
    )

    _activate_obs(args)
    _activate_faults(args)
    names = args.names.split(",") if args.names else None
    formatters = {
        "text": format_table,
        "markdown": format_markdown,
        "csv": format_csv,
    }
    try:
        with _sigterm_as_interrupt():
            outcomes = run_suite(
                names=names,
                lp_backend=args.backend,
                jobs=args.jobs,
                timeout=args.timeout,
                cache_dir=None if args.no_cache else args.cache_dir,
                cache_backend=args.cache_backend,
                max_retries=args.max_retries,
                hang_timeout=args.hang_timeout,
            )
    except SuiteInterrupted as interrupt:
        # Flush what finished instead of dying with nothing: the rows
        # are real, completed answers — only the run is incomplete.
        print(formatters[args.format](interrupt.outcomes))
        print(
            f"PARTIAL: suite interrupted after "
            f"{len(interrupt.outcomes)}/{interrupt.total} rows",
            file=sys.stderr,
        )
        return EXIT_INTERRUPTED
    print(formatters[args.format](outcomes))
    # Mirror batch's `report.ok` gate: a row whose job never executed
    # (worker error/timeout) is an infrastructure failure and must fail
    # the process — a suite that always exits 0 is a CI gate that
    # cannot fail.  A sound ✗ row still exits 0: it is a completed
    # answer, like the paper's own failed rows.
    return 0 if all(o.job_status == "ok" for o in outcomes) else 1


def _command_perf(args: argparse.Namespace) -> int:
    import json

    from repro.bench.perf import (
        DEFAULT_PERF_BACKENDS,
        compare_reports,
        format_perf_table,
        run_lp_perf,
        write_bench_json,
    )
    from repro.bench.suite import SUITE

    if args.names == "all":
        names = [pair.name for pair in SUITE]
    elif args.names:
        names = args.names.split(",")
    else:
        names = None
    backends = (args.backends.split(",") if args.backends
                else list(DEFAULT_PERF_BACKENDS))
    report = run_lp_perf(
        names=names,
        backends=backends,
        repeats=args.repeats,
        float_tolerance=args.float_tolerance,
        refutation=not args.no_refutation,
    )
    write_bench_json(report, args.output)
    print(format_perf_table(report))
    print(f"wrote {args.output}")
    if args.baseline:
        with open(args.baseline) as handle:
            baseline = json.load(handle)
        failures = compare_reports(baseline, report,
                                   max_ratio=args.max_regression)
        for failure in failures:
            print(f"baseline: {failure}", file=sys.stderr)
        if failures:
            return 1
        print(f"baseline ok (vs {args.baseline})")
    # Any disagreement between backends on the same LP is a solver bug
    # and must fail the process (this is CI's perf-smoke gate).
    return 0 if report["summary"]["disagreements"] == 0 else 1


def _command_batch(args: argparse.Namespace) -> int:
    from repro.engine import batch_to_json, format_batch_table, run_batch
    from repro.serve.shard import parse_shard_spec

    _activate_obs(args)
    _activate_faults(args)
    engine = EngineConfig(
        jobs=args.jobs,
        timeout=args.timeout,
        cache_dir=None if args.no_cache else args.cache_dir,
        cache_backend=args.cache_backend,
        max_retries=args.max_retries,
        hang_timeout=args.hang_timeout,
        # An explicit --portfolio-mode or --refute implies --portfolio:
        # silently running the single-config path would misread the
        # user's intent (the tightness stage is a portfolio feature).
        portfolio=(args.portfolio or args.portfolio_mode is not None
                   or args.refute),
        portfolio_mode=args.portfolio_mode or "first",
        max_inflight_pairs=args.max_inflight_pairs,
        refute=args.refute,
        refute_margin=args.refute_margin,
        shard=parse_shard_spec(args.shard) if args.shard else None,
    )
    with _sigterm_as_interrupt():
        # run_batch absorbs the interrupt itself and returns a report
        # marked partial, so even a mid-batch SIGTERM flushes every
        # completed pair as a mergeable slice.
        report = run_batch(args.directory, config=_config(args),
                           engine=engine)
    if args.format == "json":
        print(batch_to_json(report))
    else:
        print(format_batch_table(report))
    if report.partial:
        return EXIT_INTERRUPTED
    return 0 if report.ok else 1


def _command_merge_shards(args: argparse.Namespace) -> int:
    import json

    from repro.serve.shard import (
        canonical_json,
        merge_caches,
        merge_reports,
        report_ok,
    )

    reports = []
    for path in args.reports:
        with open(path) as handle:
            reports.append(json.load(handle))
    merged = merge_reports(reports)
    if args.cache_dir and args.source_caches:
        copied = merge_caches(args.cache_dir, args.source_caches.split(","),
                              backend=args.cache_backend)
        print(f"merged {copied} cache entries into {args.cache_dir}",
              file=sys.stderr)
    rendered = (canonical_json(merged) if args.canonical
                else json.dumps(merged, indent=2, sort_keys=True))
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(rendered + "\n")
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        print(rendered)
    if not report_ok(merged):
        return 1
    return 2 if merged["partial"] else 0


def _command_coord(args: argparse.Namespace) -> int:
    import asyncio
    import json

    from repro.config import CoordConfig
    from repro.coord import (
        HeartbeatMonitor,
        NodeRegistry,
        ResilientClient,
        coordinate_forever,
        run_cluster_batch,
    )
    from repro.serve.shard import canonical_json, report_ok

    _activate_obs(args)
    _activate_faults(args)
    coord = CoordConfig(
        host=args.host,
        port=args.port,
        nodes=tuple(args.node or ()),
        node_concurrency=args.node_concurrency,
        min_nodes=args.min_nodes,
        heartbeat_interval=args.heartbeat_interval,
        dead_after=args.dead_after,
        request_deadline=args.deadline,
        client_retries=args.client_retries,
        client_seed=args.client_seed,
        steal_after=args.steal_after,
        drain_timeout=args.drain_timeout,
    )
    if args.batch:
        # One-shot mode: fan this directory across the nodes, print the
        # merged report, exit — no listener, but the heartbeat monitor
        # runs so mid-batch node deaths still trigger reassignment.
        registry = NodeRegistry(
            dead_after=coord.dead_after,
            quarantine_after=coord.quarantine_after,
            recover_after=coord.recover_after,
            evict_after=coord.evict_after,
        )
        for url in coord.nodes:
            registry.register(url)
        client = ResilientClient(
            deadline=coord.request_deadline, retries=coord.client_retries,
            backoff_base=coord.backoff_base, seed=coord.client_seed,
        )
        monitor = HeartbeatMonitor(
            registry,
            ResilientClient(
                deadline=max(1.0, coord.heartbeat_interval * 2),
                retries=0, seed=coord.client_seed,
            ),
            coord.heartbeat_interval,
        )
        monitor.start()
        try:
            merged, cluster = run_cluster_batch(
                args.batch, _config(args), registry, client, coord,
                shards=args.shards,
            )
        finally:
            monitor.stop()
        rendered = (canonical_json(merged) if args.canonical
                    else json.dumps(merged, indent=2, sort_keys=True))
        if args.output:
            with open(args.output, "w") as handle:
                handle.write(rendered + "\n")
            print(f"wrote {args.output}", file=sys.stderr)
        else:
            print(rendered)
        print(f"cluster: {json.dumps(cluster, sort_keys=True)}",
              file=sys.stderr)
        if not report_ok(merged):
            return 1
        return 2 if merged["partial"] else 0

    def _ready(server):
        print(f"coordinating on http://{server.coord.host}:{server.port} "
              f"({len(server.coord.nodes)} node(s) preregistered)",
              flush=True)

    return asyncio.run(coordinate_forever(coord, _config(args),
                                          ready=_ready))


def _command_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve import serve_forever

    _activate_obs(args)
    _activate_faults(args)
    serve_config = ServeConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        max_concurrent=args.max_concurrent,
        deadline=args.deadline,
        job_timeout=args.timeout,
        cache_dir=None if args.no_cache else args.cache_dir,
        cache_backend=args.cache_backend,
        max_queue=args.max_queue,
        drain_timeout=args.drain_timeout,
        max_retries=args.max_retries,
    )

    def _ready(server):
        print(f"serving on http://{server.config.host}:{server.port} "
              f"({server.config.workers} worker(s))", flush=True)

    return asyncio.run(serve_forever(serve_config, _config(args),
                                     ready=_ready))


def _add_engine_arguments(parser: argparse.ArgumentParser,
                          default_cache: str | None) -> None:
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes (1 = run inline)")
    parser.add_argument("--timeout", type=float, default=None, metavar="S",
                        help="per-job wall-clock budget in seconds")
    parser.add_argument("--cache-dir", default=default_cache,
                        help="persistent result cache directory")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the result cache")
    _add_cache_backend_argument(parser)
    _add_fault_tolerance_arguments(parser)


def _add_cache_backend_argument(parser: argparse.ArgumentParser,
                                default: str = "dir") -> None:
    parser.add_argument("--cache-backend", choices=["dir", "warm", "auto"],
                        default=default,
                        help="cache storage tier: 'dir' = one JSON file "
                             "per entry (legacy), 'warm' = compacted "
                             "single-file append-log (migrates a legacy "
                             "directory on open), 'auto' = warm iff a "
                             f"warm.log exists (default {default})")


def _add_fault_tolerance_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--max-retries", type=int, default=2, metavar="N",
                        help="re-executions granted to transiently failed "
                             "jobs (worker crash/hang, OS error, timeout; "
                             "deterministic analysis errors never retry; "
                             "0 disables; default 2)")
    parser.add_argument("--hang-timeout", type=float, default=None,
                        metavar="S",
                        help="kill a worker silent for S seconds and retry "
                             "its job (default: hang detection off)")
    parser.add_argument("--faults", default=None, metavar="PLAN.json",
                        help="activate a seeded fault-injection plan "
                             "(chaos testing; exported to workers via "
                             "REPRO_FAULTS)")


def _activate_faults(args: argparse.Namespace) -> None:
    if getattr(args, "faults", None):
        from repro.faults import activate

        activate(args.faults)


def _command_cache(args: argparse.Namespace) -> int:
    import json

    from repro.engine.cache import ResultCache

    cache = ResultCache(args.cache_dir, backend=args.cache_backend)
    if args.cache_command == "stats":
        print(json.dumps(cache.stats(), indent=2, sort_keys=True))
        return 0
    if args.cache_command == "compact":
        summary = cache.compact()
        print(json.dumps(summary, indent=2, sort_keys=True))
        # An aborted compaction published nothing — the old log is
        # intact, but the caller's intent was not carried out.
        return 1 if summary.get("aborted") else 0
    evicted = cache.evict(max_age_s=args.max_age_s)
    print(f"evicted {evicted} entries from {args.cache_dir}")
    return 0


def _command_witness(args: argparse.Namespace) -> int:
    from repro.core.witness import find_difference_witness

    old = _load(args.old, "old")
    new = _load(args.new, "new")
    witness = find_difference_witness(
        old, new, exceed=args.exceed, extra_samples=args.samples
    )
    if witness is None:
        print("no witness found (state spaces too large on all candidates)")
        return 1
    print(witness)
    if args.exceed is not None and witness.difference <= args.exceed:
        print(f"best found difference does not exceed {args.exceed}")
        return 1
    return 0


def _command_lint(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.config import LintConfig
    from repro.lint import (
        lint_paths,
        load_baseline,
        render_json,
        render_text,
        unsuppressed,
        write_baseline,
    )

    config = LintConfig(format=args.format, baseline=args.baseline,
                        show_suppressed=args.show_suppressed)
    paths = [Path(p) for p in args.paths]
    if not paths:
        paths = [p for p in (Path("src"), Path("tests")) if p.is_dir()]
        if not paths:  # installed package, no source tree around
            paths = [Path(__file__).resolve().parent]
    missing = [p for p in paths if not p.exists()]
    if missing:
        raise ReproError(f"no such path: {', '.join(map(str, missing))}")

    findings = lint_paths(paths)
    if args.write_baseline:
        write_baseline(findings, args.write_baseline)
        print(f"baseline written: {args.write_baseline}")
        return 0
    baseline = (load_baseline(config.baseline)
                if config.baseline else frozenset())
    if config.format == "json":
        print(render_json(findings, baseline=baseline))
    else:
        print(render_text(findings, baseline=baseline,
                          show_suppressed=config.show_suppressed))
    return 1 if unsuppressed(findings, baseline) else 0


def _command_show(args: argparse.Namespace) -> int:
    program = _load(args.program)
    if args.dot:
        print(render_dot(program.system))
    else:
        print(render_text(program.system))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-diffcost",
        description="Differential cost analysis with simultaneous "
                    "potentials and anti-potentials (PLDI 2022)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    diff = subparsers.add_parser("diff", help="compute a minimized threshold")
    diff.add_argument("old")
    diff.add_argument("new")
    diff.add_argument("--certificates", action="store_true",
                      help="print the synthesized PF and anti-PF")
    _add_config_arguments(diff)
    diff.set_defaults(handler=_command_diff)

    bound = subparsers.add_parser("bound", help="prove a symbolic bound")
    bound.add_argument("old")
    bound.add_argument("new")
    bound.add_argument("--bound", required=True,
                       help='polynomial over inputs, e.g. "lenA * lenB"')
    _add_config_arguments(bound)
    bound.set_defaults(handler=_command_bound)

    refute = subparsers.add_parser("refute", help="refute a candidate threshold")
    refute.add_argument("old")
    refute.add_argument("new")
    refute.add_argument("--candidate", type=float, required=True)
    _add_config_arguments(refute)
    refute.set_defaults(handler=_command_refute)

    single = subparsers.add_parser(
        "single", help="single-program bounds with a precision guarantee"
    )
    single.add_argument("program")
    single.add_argument("--certificates", action="store_true")
    _add_config_arguments(single)
    single.set_defaults(handler=_command_single)

    suite = subparsers.add_parser("suite", help="run the Table 1 suite")
    suite.add_argument("--names", default=None,
                       help="comma-separated benchmark subset")
    suite.add_argument("--backend", choices=list(available_backends()),
                       default="scipy")
    suite.add_argument("--format", choices=["text", "markdown", "csv"],
                       default="text", help="output format")
    _add_engine_arguments(suite, default_cache=None)
    _add_obs_arguments(suite)
    suite.set_defaults(handler=_command_suite)

    batch = subparsers.add_parser(
        "batch",
        help="analyze every NAME_old.imp/NAME_new.imp pair in a directory",
    )
    batch.add_argument("directory")
    batch.add_argument("--portfolio", action="store_true",
                       help="race the escalating config ladder per pair "
                            "(the ladder overrides -d/-K/--backend rung "
                            "by rung; other config knobs are inherited)")
    batch.add_argument("--portfolio-mode", choices=["first", "best"],
                       default=None,
                       help="first succeeding rung wins, or minimal "
                            "threshold among succeeding rungs "
                            "(implies --portfolio; default: first)")
    batch.add_argument("--max-inflight-pairs", type=int, default=None,
                       metavar="N",
                       help="first-mode portfolio scheduler: cap on "
                            "pairs escalating at once on the shared "
                            "worker pool (default: auto from --jobs; "
                            "does not affect which rungs are chosen)")
    batch.add_argument("--refute", action="store_true",
                       help="portfolio mode: probe each chosen "
                            "threshold T with an exact refutation of "
                            "T - margin; [tight] rows are certified "
                            "minimal within the margin")
    batch.add_argument("--refute-margin", type=float, default=1.0,
                       metavar="M",
                       help="tightness probe margin (default 1.0 — "
                            "exactly tight for integer-cost programs)")
    batch.add_argument("--shard", default=None, metavar="K/N",
                       help="run only the pairs the deterministic "
                            "job-hash partition assigns to shard K of N "
                            "(disjoint across K; merge the shards' "
                            "reports/caches with merge-shards)")
    batch.add_argument("--format", choices=["text", "json"], default="text",
                       help="output format")
    _add_config_arguments(batch)
    _add_engine_arguments(batch, default_cache=".repro-cache")
    _add_obs_arguments(batch)
    batch.set_defaults(handler=_command_batch)

    merge = subparsers.add_parser(
        "merge-shards",
        help="fold batch --shard K/N JSON reports (and optionally their "
             "caches) into one batch report",
    )
    merge.add_argument("reports", nargs="+",
                       help="shard report files (batch --format json)")
    merge.add_argument("-o", "--output", default=None,
                       help="write the merged report here (default: stdout)")
    merge.add_argument("--canonical", action="store_true",
                       help="emit the canonical rendering (volatile "
                            "timing/caching fields stripped) — two runs "
                            "over the same pairs compare byte-for-byte")
    merge.add_argument("--cache-dir", default=None,
                       help="merge shard caches into this directory")
    merge.add_argument("--source-caches", default=None, metavar="A,B",
                       help="comma-separated shard cache directories "
                            "(with --cache-dir)")
    _add_cache_backend_argument(merge, default="auto")
    merge.set_defaults(handler=_command_merge_shards)

    serve = subparsers.add_parser(
        "serve",
        help="run the async JSON-over-HTTP analysis server "
             "(POST /analyze, GET /healthz, GET /metrics)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8765,
                       help="listen port (0 = ephemeral; the bound port "
                            "is printed on startup)")
    serve.add_argument("--workers", type=int, default=2, metavar="N",
                       help="analysis worker processes (default 2)")
    serve.add_argument("--max-concurrent", type=int, default=16, metavar="N",
                       help="max requests analyzed at once (default 16)")
    serve.add_argument("--deadline", type=float, default=None, metavar="S",
                       help="default per-request deadline in seconds; an "
                            "expired request gets a structured timeout "
                            "and its job is cancelled")
    serve.add_argument("--timeout", type=float, default=None, metavar="S",
                       help="per-job budget enforced inside workers")
    serve.add_argument("--cache-dir", default=".repro-cache",
                       help="persistent result cache directory")
    serve.add_argument("--no-cache", action="store_true",
                       help="disable the result cache")
    _add_cache_backend_argument(serve)
    serve.add_argument("--max-queue", type=int, default=64, metavar="N",
                       help="requests allowed to queue for an analysis "
                            "slot before new ones are shed with 429 + "
                            "Retry-After (default 64)")
    serve.add_argument("--drain-timeout", type=float, default=10.0,
                       metavar="S",
                       help="SIGTERM grace: finish in-flight requests for "
                            "up to S seconds before closing the listener "
                            "(default 10)")
    serve.add_argument("--max-retries", type=int, default=2, metavar="N",
                       help="transient-failure retry budget of the "
                            "server's executor (default 2)")
    serve.add_argument("--faults", default=None, metavar="PLAN.json",
                       help="activate a seeded fault-injection plan "
                            "(chaos testing)")
    _add_config_arguments(serve)
    _add_obs_arguments(serve)
    serve.set_defaults(handler=_command_serve)

    coord = subparsers.add_parser(
        "coord",
        help="run the fault-tolerant cluster coordinator "
             "(POST /batch fans a directory across worker nodes)",
        description="Coordinate N `repro-diffcost serve` nodes: "
                    "work-stealing batch fan-out with heartbeat health "
                    "tracking, dead-node reassignment and graceful "
                    "degradation.  With --batch DIR, run one cluster "
                    "batch and exit instead of serving.",
    )
    coord.add_argument("--host", default="127.0.0.1")
    coord.add_argument("--port", type=int, default=8790,
                       help="listen port (0 = ephemeral; serving mode)")
    coord.add_argument("--node", action="append", metavar="URL",
                       help="worker node address (host:port; repeatable); "
                            "more can register later via POST /nodes")
    coord.add_argument("--min-nodes", type=int, default=1, metavar="N",
                       help="capacity floor: below N eligible nodes a "
                            "batch degrades to a partial report "
                            "(default 1)")
    coord.add_argument("--node-concurrency", type=int, default=2,
                       metavar="N",
                       help="concurrent pair requests per node "
                            "(default 2)")
    coord.add_argument("--heartbeat-interval", type=float, default=0.5,
                       metavar="S",
                       help="seconds between /healthz probe rounds "
                            "(default 0.5)")
    coord.add_argument("--dead-after", type=int, default=3, metavar="N",
                       help="consecutive missed heartbeats before a node "
                            "is declared dead and its pairs reassigned "
                            "(default 3)")
    coord.add_argument("--steal-after", type=float, default=0.25,
                       metavar="S",
                       help="an in-flight pair may be duplicated onto an "
                            "idle node after S seconds (default 0.25)")
    coord.add_argument("--deadline", type=float, default=120.0, metavar="S",
                       help="per-request deadline for node analyze calls "
                            "(default 120)")
    coord.add_argument("--client-retries", type=int, default=3, metavar="N",
                       help="transient-failure retries per node request, "
                            "with bounded exponential backoff and seeded "
                            "jitter (default 3)")
    coord.add_argument("--client-seed", type=int, default=2022,
                       metavar="SEED",
                       help="jitter seed: two runs with one seed sleep "
                            "the same backoff schedule (default 2022)")
    coord.add_argument("--drain-timeout", type=float, default=10.0,
                       metavar="S",
                       help="SIGTERM grace for running batches "
                            "(default 10)")
    coord.add_argument("--batch", default=None, metavar="DIR",
                       help="one-shot mode: fan this directory across "
                            "the nodes, print the merged report, exit "
                            "(0 ok, 1 failed pairs, 2 partial)")
    coord.add_argument("--shards", type=int, default=None, metavar="N",
                       help="shard count for --batch (default: one per "
                            "eligible node)")
    coord.add_argument("--canonical", action="store_true",
                       help="with --batch: emit the canonical rendering "
                            "(byte-identical to a fault-free local "
                            "`batch --jobs 1 --format json` canonical)")
    coord.add_argument("-o", "--output", default=None, metavar="FILE",
                       help="with --batch: write the report here")
    coord.add_argument("--faults", default=None, metavar="PLAN.json",
                       help="activate a seeded fault-injection plan "
                            "(net.*/node.partition chaos testing)")
    _add_config_arguments(coord)
    _add_obs_arguments(coord)
    coord.set_defaults(handler=_command_coord)

    cache = subparsers.add_parser(
        "cache",
        help="inspect and maintain a result cache "
             "(stats / compact / evict)",
        description="Operate on a persistent result cache directory. "
                    "Opening a legacy per-entry directory with "
                    "--cache-backend warm migrates it into the "
                    "compacted warm append-log in place.",
    )
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    for name, blurb in (
        ("stats", "print cache statistics as JSON (warm backend: no "
                  "per-entry directory scan)"),
        ("compact", "rewrite the warm log, dropping tombstones, stale "
                    "and superseded records (warm backend only)"),
        ("evict", "remove entries older than the eviction age"),
    ):
        sub = cache_sub.add_parser(name, help=blurb)
        sub.add_argument("--cache-dir", default=".repro-cache",
                         help="result cache directory "
                              "(default .repro-cache)")
        _add_cache_backend_argument(sub, default="auto")
        if name == "evict":
            sub.add_argument("--max-age-s", type=float, default=None,
                             metavar="S",
                             help="age bound in seconds (default: the "
                                  "cache's eviction_age_s, 7 days)")
        sub.set_defaults(handler=_command_cache)

    perf = subparsers.add_parser(
        "perf",
        help="time the LP backends on Table 1 LPs, emit BENCH_lp.json",
    )
    perf.add_argument("--names", default=None,
                      help="comma-separated pair subset, or 'all' "
                           "(default: the curated perf subset)")
    perf.add_argument("--backends", default=None,
                      help="comma-separated backend names "
                           "(default: exact-dense,exact,exact-warm,scipy)")
    perf.add_argument("--output", default="BENCH_lp.json",
                      help="report path (default: BENCH_lp.json)")
    perf.add_argument("--repeats", type=int, default=1,
                      help="timing repeats per backend; best-of is kept")
    perf.add_argument("--float-tolerance", type=float, default=1e-4,
                      help="allowed |float - exact| objective gap "
                           "(absolute + relative)")
    perf.add_argument("--no-refutation", action="store_true",
                      help="skip the refutation-batch section "
                           "(incremental vs cold witness loops)")
    perf.add_argument("--baseline", default=None, metavar="JSON",
                      help="diff against a committed BENCH_lp.json "
                           "snapshot; exit 1 on disagreement or timing "
                           "regression")
    perf.add_argument("--max-regression", type=float, default=2.0,
                      metavar="X",
                      help="tracked timings may be at most X times the "
                           "baseline (default 2.0)")
    perf.set_defaults(handler=_command_perf)

    witness = subparsers.add_parser(
        "witness", help="find a concrete input exhibiting a cost difference"
    )
    witness.add_argument("old")
    witness.add_argument("new")
    witness.add_argument("--exceed", type=float, default=None,
                         help="stop at the first difference above this")
    witness.add_argument("--samples", type=int, default=16,
                         help="random interior inputs to try (plus corners)")
    witness.set_defaults(handler=_command_witness)

    show = subparsers.add_parser("show", help="print a lowered program")
    show.add_argument("program")
    show.add_argument("--dot", action="store_true",
                      help="emit Graphviz instead of text")
    show.set_defaults(handler=_command_show)

    lint = subparsers.add_parser(
        "lint",
        help="exactness/determinism/fork-safety static analysis",
        description="AST-based checks over the source tree: float "
                    "taint in declared-exact LP modules, nondeterminism "
                    "in canonical-output producers, worker-unsafe "
                    "global state.  Exits 1 on unsuppressed findings.",
    )
    lint.add_argument("paths", nargs="*",
                      help="files or directories (default: src tests)")
    lint.add_argument("--format", choices=("text", "json"), default="text")
    lint.add_argument("--baseline",
                      help="tolerate findings fingerprinted in this file")
    lint.add_argument("--write-baseline", metavar="FILE",
                      help="record current findings as the ratchet and exit")
    lint.add_argument("--show-suppressed", action="store_true",
                      help="also print pragma-suppressed findings")
    lint.set_defaults(handler=_command_lint)

    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
