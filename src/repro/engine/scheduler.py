"""Long-lived worker pool and cross-pair escalation scheduling.

The scheduling layer under :class:`~repro.engine.executor.ParallelExecutor`.
Two pieces:

- :class:`WorkerPool` — a pool of analysis worker processes that lives
  for a whole batch (one handle per batch, not per pair).  Unlike
  ``concurrent.futures``, the pool tracks which *process* runs which
  *task*, so cancelling one abandoned portfolio rung terminates exactly
  that rung's worker and leaves the rest of the pool running.  This is
  what lets ``first``-mode portfolios share one pool across pairs
  instead of rebuilding a pool per pair.
- :class:`EscalationScheduler` — an event-driven completion loop that
  overlaps the escalation ladders of many pairs on one pool: while pair
  A's ``d2K2`` rung is solving, pair B's ``d1K1`` rung runs.  Selection
  stays per-pair ladder-order deterministic: rung ``i`` of a pair is
  only judged once every rung ``< i`` has a verdict, so the chosen
  rungs are byte-identical to a sequential ``--jobs 1`` run even though
  rungs of many pairs complete in arbitrary order.

Tasks are dispatched lowest ``(rung, pair)`` first, so cheap first
rungs of waiting pairs get workers before expensive late rungs — the
portfolio's latency profile, applied across the whole batch.
"""

from __future__ import annotations

import heapq
import itertools
import multiprocessing
import time
import weakref
from collections import deque
from multiprocessing.connection import wait as _wait_ready

from repro.engine.jobs import AnalysisJob, JobResult
from repro.errors import AnalysisError
from repro.obs import get_logger, get_registry, setup_from_env

_LOG = get_logger("engine.scheduler")

#: Exit code of a worker killed by an injected ``worker.crash`` fault —
#: distinguishable from real crashes in logs, identical in handling.
_CRASH_EXIT = 66

#: Worker→parent message tagging a liveness heartbeat (task ids are
#: ints, so the string tag cannot collide with a result message).
_HEARTBEAT = ("beat", None)

#: Task lifecycle: PENDING (queued) → RUNNING (on a worker) → DONE
#: (result available) or DROPPED (cancelled before a result existed).
PENDING = "pending"
RUNNING = "running"
DONE = "done"
DROPPED = "dropped"


class Task:
    """One submitted job with its scheduling state.

    ``state`` transitions only inside the pool's (single-threaded)
    bookkeeping, so callers can read it without racing a worker: a task
    seen as ``DONE`` has its ``result`` populated.

    ``on_done`` is the pool's async-safe completion hook: it fires with
    the task exactly once, on every path that produces a result (a
    normal completion, a worker death, or the drain inside a lost
    cancel race) — never for a genuinely cancelled task — and always on
    the thread driving the pool.  Callers bridging into an event loop
    wrap it in ``loop.call_soon_threadsafe``.
    """

    __slots__ = ("id", "job", "timeout", "priority", "state", "result",
                 "worker", "on_done", "attempt")

    def __init__(self, task_id: int, job: AnalysisJob,
                 timeout: float | None, priority: tuple,
                 on_done=None, attempt: int = 0):
        self.id = task_id
        self.job = job
        self.timeout = timeout
        self.priority = priority
        self.state = PENDING
        self.result: JobResult | None = None
        self.worker: _Worker | None = None
        self.on_done = on_done
        #: Which retry of the job this task is (0 = first execution).
        #: Owned by the executor's retry layer; the pool just threads
        #: it to the worker so fault injection and backoff see it.
        self.attempt = attempt


def _scrub_inherited_fds(keep: set[int]) -> None:
    """Close every open descriptor except ``keep`` (best-effort).

    Reads ``/proc/self/fd`` — the listing is materialized before any
    close, so closing the listing's own transient fd mid-walk is
    harmless.  On platforms without procfs the scrub is skipped; the
    worker merely keeps its inherited descriptors, as it always did.
    """
    import os

    try:
        inherited = [int(name) for name in os.listdir("/proc/self/fd")]
    except (OSError, ValueError):  # pragma: no cover — no procfs
        return
    for fd in inherited:
        if fd not in keep:
            try:
                os.close(fd)
            except OSError:
                pass


def _worker_main(conn, heartbeat: float = 1.0) -> None:
    """Entry point of one pool worker: a receive/execute/send loop.

    Jobs arrive as plain dicts and results leave as dicts, so nothing
    analyzer-internal crosses the pipe.  The per-job timeout is
    enforced inside :func:`~repro.engine.executor.execute_job` with an
    interval timer; a ``None`` message (or a closed pipe) ends the
    worker.

    The first act is closing every inherited descriptor except stdio
    and the job pipe.  A forked worker inherits whatever the parent had
    open — under the serving front-end that includes live client
    sockets, and a long-lived worker holding a duplicate keeps a
    connection the event loop already closed from ever delivering its
    FIN (clients reading to EOF would hang forever).

    While a job executes, a daemon thread sends :data:`_HEARTBEAT`
    messages up the pipe every ``heartbeat`` seconds — the parent's
    hang detector treats their absence as a wedged process.  Idle
    workers stay silent, so pipes of parked workers never fill.
    """
    import os
    import signal
    import threading

    from repro.engine.executor import execute_job
    from repro.faults import active_plan, fault_point

    try:
        # A parent event loop's wakeup fd (asyncio's self-pipe) is
        # inherited as process-wide signal state; once the scrub closes
        # the fd, every delivered signal would whine about it.
        signal.set_wakeup_fd(-1)
    except (ValueError, OSError):  # pragma: no cover — non-main thread
        pass
    _scrub_inherited_fds(keep={0, 1, 2, conn.fileno()})
    # Observability travels by environment: REPRO_LOG configures this
    # process's handler, REPRO_TRACE is read lazily by span().
    setup_from_env()
    registry = get_registry()

    # Result sends and heartbeat sends share the pipe; Connection.send
    # is not documented thread-safe, so both take the lock.
    send_lock = threading.Lock()
    busy = threading.Event()

    def _beat() -> None:
        while True:
            busy.wait()
            try:
                with send_lock:
                    conn.send(_HEARTBEAT)
            except (BrokenPipeError, OSError):
                return
            time.sleep(heartbeat)

    threading.Thread(target=_beat, daemon=True,
                     name="repro-worker-heartbeat").start()

    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return
        if message is None:
            return
        task_id, payload, timeout, attempt = message
        job = AnalysisJob.from_dict(payload)
        if active_plan() is not None:
            context = dict(name=job.name, key=job.key, kind=job.kind,
                           attempt=attempt)
            if fault_point("worker.crash", **context) is not None:
                os._exit(_CRASH_EXIT)
            hang = fault_point("worker.hang", **context)
            if hang is not None:
                # A wedged process: heartbeats stop (busy stays clear)
                # while the main thread sleeps.  With hang detection on,
                # the parent kills this worker mid-sleep; without it,
                # the job merely starts late.
                time.sleep(hang.seconds)
        busy.set()
        before = registry.snapshot()
        result = execute_job(job, timeout, attempt=attempt)
        busy.clear()
        # Ship this job's metric increments home as a snapshot delta;
        # the parent folds them into its registry when it accounts the
        # result, so fleet totals match a single-process run.
        result.metrics = registry.diff(before)
        try:
            with send_lock:
                conn.send((task_id, result.to_dict()))
        except (BrokenPipeError, OSError):
            return


class _Worker:
    """One worker process and the duplex pipe to it."""

    __slots__ = ("process", "conn", "task", "last_beat")

    def __init__(self, context, heartbeat: float):
        parent_conn, child_conn = context.Pipe()
        self.process = context.Process(
            target=_worker_main, args=(child_conn, heartbeat), daemon=True
        )
        self.process.start()
        child_conn.close()
        self.conn = parent_conn
        self.task: Task | None = None
        #: Last liveness signal (monotonic): spawn, dispatch, or
        #: heartbeat — whichever came latest.
        self.last_beat = time.monotonic()


def _terminate_workers(workers: list) -> None:
    """Finalizer: reclaim worker processes of an abandoned pool."""
    for worker in list(workers):
        try:
            worker.conn.close()
        except OSError:
            pass
        if worker.process.is_alive():
            worker.process.terminate()


class WorkerPool:
    """A long-lived pool of analysis workers with per-task tracking.

    Workers are spawned lazily up to ``size`` and then reused across
    submissions — a batch pays process startup once, not once per pair.
    The pool records which worker runs which task, so :meth:`cancel`
    on a running task terminates exactly that worker; everyone else
    keeps solving.

    All bookkeeping happens in the caller's thread (``submit`` /
    ``wait`` / ``cancel``); the pool is not itself thread-safe, which
    is fine for the executor's single-threaded event loops.
    """

    def __init__(self, size: int, context: str | None = None,
                 heartbeat: float = 1.0, hang_timeout: float | None = None,
                 quarantine_after: int = 3):
        if size < 1:
            raise AnalysisError("worker pool size must be at least 1")
        if hang_timeout is not None and hang_timeout <= 0:
            raise AnalysisError("hang_timeout must be positive (or None)")
        if quarantine_after < 1:
            raise AnalysisError("quarantine_after must be at least 1")
        self.size = size
        #: Heartbeat period of workers; with hang detection on, clamped
        #: so several beats fit inside one hang window (a single missed
        #: scheduling quantum must not read as a wedge).
        self.heartbeat = heartbeat
        if hang_timeout is not None:
            self.heartbeat = min(heartbeat, max(hang_timeout / 4, 0.02))
        #: Kill a worker whose running task saw no heartbeat for this
        #: long (``None`` = hang detection off); the task completes with
        #: a structured ``WorkerHung`` error.
        self.hang_timeout = hang_timeout
        #: After this many *consecutive* worker crashes, park one worker
        #: slot (capacity floor 1) — a poisoned machine degrades to a
        #: smaller pool instead of a crash loop.
        self.quarantine_after = quarantine_after
        self._context = multiprocessing.get_context(context)
        self._workers: list[_Worker] = []
        self._idle: list[_Worker] = []
        self._queue: list[tuple[tuple, int, Task]] = []
        self._sequence = itertools.count()
        #: Workers ever started / workers killed by cancellation.  The
        #: latter must stay 0 when every rung ran to completion — a
        #: nonzero count on a fully-finished ladder is the cancel/done
        #: race this pool exists to close.
        self.spawned = 0
        self.terminated = 0
        #: Supervision counters: workers that died mid-task (crash or
        #: OOM), workers killed by the hang detector, spawns that
        #: replaced a dead worker, and slots parked by quarantine.
        self.crashed = 0
        self.hung = 0
        self.respawned = 0
        self.quarantined = 0
        self._crash_streak = 0
        self._peak = 0
        self.closed = False
        self._finalizer = weakref.finalize(
            self, _terminate_workers, self._workers
        )

    # -- submission and dispatch -------------------------------------------

    def submit(self, job: AnalysisJob, timeout: float | None = None,
               priority: tuple = (), dispatch: bool = True,
               on_done=None, attempt: int = 0) -> Task:
        """Queue ``job``; lower ``priority`` tuples dispatch first.

        ``dispatch=False`` only queues: a caller submitting a related
        batch (all rungs of several pairs) defers dispatch to one
        :meth:`flush` so priorities order the whole wave, not the
        submission interleaving.

        ``on_done`` (optional) is invoked with the task when it
        completes — see :class:`Task`.  ``attempt`` is the retry
        ordinal the executor assigns when resubmitting a transiently
        failed job.
        """
        if self.closed:
            raise AnalysisError("worker pool is closed")
        task = Task(next(self._sequence), job, timeout, priority, on_done,
                    attempt=attempt)
        heapq.heappush(self._queue, (task.priority, task.id, task))
        if dispatch:
            self._dispatch()
        return task

    def flush(self) -> None:
        """Dispatch queued tasks to every idle (or spawnable) worker."""
        self._dispatch()

    def _dispatch(self) -> None:
        while True:
            task = self._pop_pending()
            if task is None:
                return
            worker = self._acquire_worker()
            if worker is None:
                heapq.heappush(self._queue, (task.priority, task.id, task))
                return
            task.state = RUNNING
            task.worker = worker
            worker.task = task
            worker.last_beat = time.monotonic()
            try:
                worker.conn.send((task.id, task.job.to_dict(), task.timeout,
                                  task.attempt))
            except (BrokenPipeError, OSError):
                # The worker died while idle.  Requeue the task and
                # retire the corpse; the next loop turn acquires (or
                # spawns) a replacement.  A fresh worker's send always
                # lands in the pipe buffer, so this cannot spin.
                task.state = PENDING
                task.worker = None
                self._retire(worker)
                heapq.heappush(self._queue, (task.priority, task.id, task))

    def _pop_pending(self) -> Task | None:
        while self._queue:
            _, _, task = heapq.heappop(self._queue)
            if task.state == PENDING:
                return task
        return None

    @property
    def capacity(self) -> int:
        """Worker slots currently usable (``size`` minus quarantined,
        never below 1 — a fully-parked pool would deadlock)."""
        return max(1, self.size - self.quarantined)

    def _acquire_worker(self) -> _Worker | None:
        if self._idle:
            return self._idle.pop()
        if len(self._workers) < self.capacity:
            worker = _Worker(self._context, self.heartbeat)
            self._workers.append(worker)
            self.spawned += 1
            if len(self._workers) <= self._peak:
                # Refilling a slot a dead worker vacated, not growing
                # the pool: this spawn is a supervised respawn.
                self.respawned += 1
                get_registry().counter(
                    "repro_pool_workers_respawned_total",
                    "Workers spawned to replace crashed/hung workers.",
                ).inc()
            else:
                self._peak = len(self._workers)
            get_registry().counter(
                "repro_pool_workers_spawned_total",
                "Worker processes ever started by a pool.",
            ).inc()
            _LOG.debug("spawned worker pid=%d (%d/%d)",
                       worker.process.pid, len(self._workers), self.size)
            return worker
        return None

    # -- completion --------------------------------------------------------

    def wait(self, timeout: float | None = None) -> list[Task]:
        """Block until at least one running task completes.

        Returns the newly completed tasks (empty only when nothing is
        running, or on a ``timeout``); queued tasks are dispatched to
        any workers this frees.  Heartbeat messages are drained
        transparently; with :attr:`hang_timeout` set, workers whose
        running task stopped heartbeating are killed here and their
        tasks complete with structured ``WorkerHung`` errors.
        """
        self._dispatch()
        deadline = (None if timeout is None
                    else time.monotonic() + timeout)
        while True:
            busy = {worker.conn: worker for worker in self._workers
                    if worker.task is not None}
            if not busy:
                return []
            step = (None if deadline is None
                    else max(0.0, deadline - time.monotonic()))
            if self.hang_timeout is not None:
                # Wake at least once per heartbeat period so a silent
                # pipe is noticed within one hang window.
                tick = max(self.heartbeat, 0.02)
                step = tick if step is None else min(step, tick)
            completed: list[Task] = []
            for conn in _wait_ready(list(busy), step):
                worker = busy[conn]
                task = worker.task
                if self._receive(worker) and task is not None:
                    completed.append(task)
            completed.extend(self._reap_hung())
            if completed:
                self._dispatch()
                return completed
            if deadline is not None and time.monotonic() >= deadline:
                self._dispatch()
                return []
            # Only heartbeats (or a hang-check tick) arrived: keep
            # waiting for a real completion.

    def _receive(self, worker: _Worker) -> bool:
        """Read one message from ``worker``; True iff a task completed.

        A dead pipe means the worker died mid-task (hard crash, OOM
        kill): the task completes with a structured ``"error"`` result
        and the worker is retired — one poisoned job cannot take down
        the batch.
        """
        task = worker.task
        try:
            task_id, payload = worker.conn.recv()
        except (EOFError, OSError):
            exitcode = worker.process.exitcode
            _LOG.warning("worker pid=%s died (exit code %s)%s",
                         worker.process.pid, exitcode,
                         "" if task is None
                         else f" while running {task.job.name or 'a job'}")
            self._retire(worker)
            if task is None:
                return False
            self._note_crash("crashed")
            task.state = DONE
            task.worker = None
            task.result = JobResult(
                job_key=task.job.key,
                name=task.job.name,
                kind=task.job.kind,
                status="error",
                error_type="BrokenWorker",
                message=f"worker died (exit code {exitcode})",
            )
            if task.on_done is not None:
                task.on_done(task)
            return True
        if task_id == _HEARTBEAT[0]:
            worker.last_beat = time.monotonic()
            return False
        assert task is not None and task_id == task.id
        self._crash_streak = 0
        task.state = DONE
        task.worker = None
        task.result = JobResult.from_dict(payload)
        worker.task = None
        self._idle.append(worker)
        if task.on_done is not None:
            task.on_done(task)
        return True

    def _note_crash(self, how: str) -> None:
        """Account one mid-task worker death and advance the
        consecutive-crash streak toward quarantine."""
        if how == "hung":
            self.hung += 1
            get_registry().counter(
                "repro_pool_workers_hung_total",
                "Workers killed by the heartbeat hang detector.",
            ).inc()
        else:
            self.crashed += 1
            get_registry().counter(
                "repro_pool_workers_crashed_total",
                "Workers that died mid-task (crash, OOM kill).",
            ).inc()
        self._crash_streak += 1
        if (self._crash_streak >= self.quarantine_after
                and self.size - self.quarantined > 1):
            self.quarantined += 1
            self._crash_streak = 0
            get_registry().counter(
                "repro_pool_workers_quarantined_total",
                "Worker slots parked after consecutive crashes.",
            ).inc()
            _LOG.warning(
                "quarantined a worker slot after %d consecutive "
                "crashes (capacity now %d/%d)",
                self.quarantine_after, self.capacity, self.size,
            )

    def _reap_hung(self) -> list[Task]:
        """Kill workers whose running task stopped heartbeating; their
        tasks complete with structured ``WorkerHung`` errors (which the
        executor's retry classification treats as transient)."""
        if self.hang_timeout is None:
            return []
        now = time.monotonic()
        completed: list[Task] = []
        for worker in list(self._workers):
            task = worker.task
            if task is None or now - worker.last_beat <= self.hang_timeout:
                continue
            silence = now - worker.last_beat
            _LOG.warning("worker pid=%s hung (no heartbeat for %.1fs) "
                         "while running %s — killing it",
                         worker.process.pid, silence,
                         task.job.name or "a job")
            self._retire(worker)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(0.5)
            self._note_crash("hung")
            task.state = DONE
            task.worker = None
            task.result = JobResult(
                job_key=task.job.key,
                name=task.job.name,
                kind=task.job.kind,
                status="error",
                error_type="WorkerHung",
                message=(f"worker sent no heartbeat for {silence:.1f}s "
                         f"(hang budget {self.hang_timeout:g}s)"),
            )
            if task.on_done is not None:
                task.on_done(task)
            completed.append(task)
        return completed

    def health(self) -> dict:
        """Point-in-time supervision snapshot (the ``/healthz`` block)."""
        data = self.empty_health(self.size)
        data.update(
            alive=len(self._workers),
            busy=sum(1 for w in self._workers if w.task is not None),
            spawned=self.spawned,
            respawned=self.respawned,
            crashed=self.crashed,
            hung=self.hung,
            terminated=self.terminated,
            quarantined=self.quarantined,
        )
        return data

    @staticmethod
    def empty_health(size: int = 0) -> dict:
        """The :meth:`health` schema with every counter zeroed (served
        before the pool exists, so scrapers see one stable shape)."""
        return {
            "size": size,
            "alive": 0,
            "busy": 0,
            "spawned": 0,
            "respawned": 0,
            "crashed": 0,
            "hung": 0,
            "terminated": 0,
            "quarantined": 0,
        }

    # -- cancellation ------------------------------------------------------

    def cancel(self, task: Task) -> bool:
        """Withdraw ``task``; True iff it will never produce a result.

        Pending tasks are dropped from the queue.  For a running task
        the pipe is checked first: the task may have finished between
        the caller's decision and this call, in which case its result
        is drained and the worker survives (returns False) — killing a
        worker whose rung already completed is the cancel/done race
        this check closes.  Only a task still genuinely running gets
        its worker (and exactly its worker) terminated.  Done tasks
        are left alone.
        """
        if task.state == PENDING:
            task.state = DROPPED
            return True
        if task.state == RUNNING:
            worker = task.worker
            # Drain everything already in the pipe — heartbeats ride
            # ahead of results, so one poll()+receive is not enough to
            # rule out a completion racing the cancel.
            while worker.conn.poll():
                if self._receive(worker):
                    return False
                if task.state != RUNNING:
                    # _receive retired a dead worker and completed the
                    # task.
                    return False
            task.state = DROPPED
            task.worker = None
            self._kill(worker)
            return True
        return False

    def _kill(self, worker: _Worker) -> None:
        """Terminate exactly this worker's process (abandoned rung)."""
        self._retire(worker)
        if worker.process.is_alive():
            worker.process.terminate()
            self.terminated += 1
            get_registry().counter(
                "repro_pool_workers_terminated_total",
                "Workers killed to cancel an abandoned task.",
            ).inc()
            _LOG.debug("terminated worker pid=%d (cancelled task)",
                       worker.process.pid)
            worker.process.join(0.5)

    def _retire(self, worker: _Worker) -> None:
        worker.task = None
        if worker in self._idle:
            self._idle.remove(worker)
        if worker in self._workers:
            self._workers.remove(worker)
        try:
            worker.conn.close()
        except OSError:
            pass

    # -- lifecycle ---------------------------------------------------------

    def shutdown(self) -> None:
        """Stop all workers (idempotent).

        Idle workers exit via the sentinel; a worker still running a
        task is terminated — callers resolve or cancel every task
        before shutting down, so that path is a safety net.
        """
        if self.closed:
            return
        self.closed = True
        _LOG.debug("shutting down pool (%d worker(s), %d spawned, "
                   "%d terminated)", len(self._workers), self.spawned,
                   self.terminated)
        self._finalizer.detach()
        for worker in list(self._workers):
            if worker.task is None:
                try:
                    worker.conn.send(None)
                except OSError:
                    pass
            elif worker.process.is_alive():
                worker.process.terminate()
        for worker in list(self._workers):
            worker.process.join(2.0)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(1.0)
            try:
                worker.conn.close()
            except OSError:
                pass
        self._workers.clear()
        self._idle.clear()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()


class _LadderState:
    """Escalation progress of one pair.

    ``entries[i]`` is how rung ``i`` is being answered: a pre-fetched
    cache hit, a pool task, or skipped (it sat past a cached success
    and was never worth a worker).  ``cursor`` is the first rung
    without a verdict; resolution never looks past an unfinished rung,
    which is what keeps selection ladder-order deterministic.
    """

    __slots__ = ("index", "jobs", "entries", "results", "cursor", "winner",
                 "decided")

    HIT = "hit"
    TASK = "task"
    SKIP = "skip"

    def __init__(self, index: int, jobs: list[AnalysisJob]):
        self.index = index
        self.jobs = jobs
        self.entries: list[tuple] = [None] * len(jobs)
        self.results: list[JobResult | None] = [None] * len(jobs)
        self.cursor = 0
        self.winner: int | None = None
        self.decided = not jobs


class EscalationScheduler:
    """Overlap the escalation ladders of many pairs on one pool.

    The event-driven core of ``first``-mode portfolio batches: all
    rungs of up to ``max_inflight`` pairs are in flight at once, each
    completion advances exactly the affected pair's ladder, and a
    pair's decision immediately cancels its abandoned rungs and admits
    the next waiting pair.  Completed loser rungs are harvested into
    the result cache before being dropped from selection — paid-for
    work a later ``best``-mode run can replay for free.
    """

    def __init__(self, executor, pool: WorkerPool,
                 max_inflight: int | None = None):
        if max_inflight is not None and max_inflight < 1:
            raise AnalysisError(
                "max_inflight must be at least 1 (or None for auto)"
            )
        self.executor = executor
        self.pool = pool
        # Auto: enough pairs to keep every worker busy even when each
        # pair is down to its last undecided rung, without flooding the
        # queue with rungs that will sit for minutes.
        self.max_inflight = max_inflight or max(2, pool.size)
        # task.id → owning ladder; instance state so `_resolve` can
        # register retry resubmissions.
        self._owners: dict[int, _LadderState] = {}

    def run(self, ladders: list[list[AnalysisJob]]) -> list[list[JobResult]]:
        """Run every ladder; per-pair results in ladder order."""
        states = [_LadderState(i, jobs) for i, jobs in enumerate(ladders)]
        waiting = deque(state for state in states if not state.decided)
        self._owners = {}
        active: list[_LadderState] = []
        while waiting or active:
            while waiting and len(active) < self.max_inflight:
                state = waiting.popleft()
                self._activate(state)
                self._resolve(state)
                if not state.decided:
                    active.append(state)
            # One dispatch for the whole admission wave, so the
            # (rung, pair) priority orders it: first rungs of every
            # admitted pair get workers before anyone's late rungs.
            self.pool.flush()
            if not active:
                continue
            completed = self.pool.wait()
            if not completed:
                # Nothing running and nothing dispatchable while pairs
                # are still undecided: the pool stalled.  Should be
                # impossible with size >= 1, but failing structurally
                # beats waiting forever.
                for state in active:
                    self._fail(state)
                while waiting:
                    self._fail(waiting.popleft())
                break
            for task in completed:
                state = self._owners.pop(task.id, None)
                if state is not None and not state.decided:
                    self._resolve(state)
            active = [state for state in active if not state.decided]
        return [state.results for state in states]

    def _fail(self, state: _LadderState) -> None:
        executor = self.executor
        for rung in range(state.cursor, len(state.jobs)):
            entry = state.entries[rung]  # None when never activated
            if (entry is not None and entry[0] == _LadderState.TASK
                    and entry[1].state != DONE):
                self.pool.cancel(entry[1])
            job = state.jobs[rung]
            state.results[rung] = executor._account(JobResult(
                job_key=job.key, name=job.name, kind=job.kind,
                status="error", error_type="SchedulerError",
                message="worker pool stalled with rungs outstanding",
            ))
        state.decided = True

    def _activate(self, state: _LadderState) -> None:
        """Probe the cache and submit every rung that needs work.

        Rungs past the first cached *success* can never be chosen (a
        lower rung wins first either way), so they are not worth a
        worker.  Cache accounting happens at use time in `_resolve`,
        so stats and statuses match the ``jobs == 1`` path exactly.
        """
        executor = self.executor
        executor.stats.submitted += len(state.jobs)
        cached_success = False
        for rung, job in enumerate(state.jobs):
            if cached_success:
                state.entries[rung] = (_LadderState.SKIP, None)
                continue
            hit = executor._lookup(job)
            if hit is not None:
                state.entries[rung] = (_LadderState.HIT, hit)
                cached_success = hit.succeeded
            else:
                task = self.pool.submit(
                    job, timeout=executor.timeout,
                    priority=(rung, state.index), dispatch=False,
                )
                self._owners[task.id] = state
                state.entries[rung] = (_LadderState.TASK, task)

    def _resolve(self, state: _LadderState) -> None:
        """Advance the ladder as far as finished rungs allow."""
        if state.decided:
            return
        executor = self.executor
        total = len(state.jobs)
        while state.cursor < total:
            kind, payload = state.entries[state.cursor]
            if kind == _LadderState.TASK and payload.state != DONE:
                return
            job = state.jobs[state.cursor]
            if (kind == _LadderState.TASK
                    and executor._should_retry(payload.result,
                                               payload.attempt)):
                # A transiently failed rung is re-raced instead of
                # judged: selection sees only the final attempt, which
                # keeps chosen rungs identical to a fault-free run.
                executor._note_retry(job, payload.result, payload.attempt)
                retry = self.pool.submit(
                    job, timeout=executor.timeout,
                    priority=payload.priority,
                    attempt=payload.attempt + 1,
                )
                self._owners[retry.id] = state
                state.entries[state.cursor] = (_LadderState.TASK, retry)
                return
            if kind == _LadderState.HIT:
                result = executor._use_hit(payload)
            elif kind == _LadderState.SKIP:
                result = executor._account(executor._cancelled(job))
            else:
                payload.result.attempts = payload.attempt
                result = executor._finish(job, payload.result)
            state.results[state.cursor] = result
            state.cursor += 1
            if result.succeeded:
                state.winner = state.cursor - 1
                self._abandon(state, state.cursor)
                state.cursor = total
        state.decided = True

    def _abandon(self, state: _LadderState, start: int) -> None:
        """Drop every rung past the winner.

        A rung that already *completed* is paid-for work: its result
        is harvested into the cache (a later ``best``-mode run replays
        it for free) even though its reported status stays
        ``"cancelled"`` for parity with sequential selection.  Pending
        rungs are dequeued; a rung still running gets exactly its
        worker terminated.
        """
        executor = self.executor
        for rung in range(start, len(state.jobs)):
            kind, payload = state.entries[rung]
            if kind == _LadderState.TASK:
                self.pool.cancel(payload)
                if payload.state == DONE and payload.result is not None:
                    executor._store(state.jobs[rung], payload.result)
            state.results[rung] = executor._account(
                executor._cancelled(state.jobs[rung])
            )
