"""Portfolio strategy: race an escalating ladder of configurations.

For one program pair, the portfolio expands a ladder of analysis
configurations — cheap low-degree templates first, richer (and slower)
ones after, with an exact-arithmetic fallback rung at the end:

    d=1, K=1 (scipy)  →  d=2, K=2 (scipy)  →  d=3, K=2 (scipy)
                      →  d=2, K=2 (exact-warm)

and runs the rungs through a :class:`~repro.engine.executor.ParallelExecutor`.
Two selection modes:

- ``"first"`` (default): the first rung *in ladder order* that produces
  a threshold wins; later rungs are cancelled.  Deterministic and
  fastest — the mode to use when any sound threshold unblocks a gate.
- ``"best"``: every rung runs; the minimal threshold among succeeding
  rungs wins (ties broken by ladder order).  Use when tightness matters
  more than latency — richer templates can only tighten the bound.

An optional **refutation stage** (``refute=True`` /
``EngineConfig.refute``) follows selection: for every pair that won a
threshold ``T``, a ``refute`` job probes the candidate ``T - margin``
with the winning rung's template shape and the exact backend.  A
refuted probe certifies the threshold tight to within ``margin``
(Theorem 4.3); an unknown probe flags slack worth escalating for.  The
probe solves one LP per witness over one shared constraint system —
exactly the shape `~repro.lp.dual.IncrementalLP` re-solves from a
single factorized basis, which is what keeps this stage affordable.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.config import AnalysisConfig
from repro.engine.executor import ParallelExecutor
from repro.engine.jobs import AnalysisJob, JobResult
from repro.errors import AnalysisError
from repro.obs import get_logger, get_registry

_LOG = get_logger("engine.portfolio")

#: The escalation ladder as (degree, max_products, lp_backend) triples.
#: The exact rung uses the warm-started certified backend: identical
#: Fraction thresholds to plain ``exact`` (both stop at an exactly
#: verified optimal basis of the same LP) at a fraction of the latency.
DEFAULT_LADDER: tuple[tuple[int, int, str], ...] = (
    (1, 1, "scipy"),
    (2, 2, "scipy"),
    (3, 2, "scipy"),
    (2, 2, "exact-warm"),
)

PORTFOLIO_MODES = ("first", "best")


def ladder_configs(base: AnalysisConfig | None = None,
                   ladder: tuple[tuple[int, int, str], ...] = DEFAULT_LADDER,
                   ) -> list[AnalysisConfig]:
    """Instantiate the ladder, inheriting every non-raced knob of
    ``base`` (invariant tuning, certificate checking, ...)."""
    base = base or AnalysisConfig()
    return [
        replace(base, degree=degree, max_products=max_products,
                lp_backend=lp_backend)
        for degree, max_products, lp_backend in ladder
    ]


@dataclass
class PortfolioResult:
    """The outcome of racing one pair through the ladder."""

    name: str
    mode: str
    chosen: JobResult | None
    rungs: list[JobResult] = field(default_factory=list)
    #: Tightness probe of the chosen threshold (``None`` when the stage
    #: was not requested, the pair has no threshold, or the probe job
    #: failed to execute).
    refutation: JobResult | None = None

    @property
    def succeeded(self) -> bool:
        return self.chosen is not None

    @property
    def threshold(self) -> float | None:
        return self.chosen.threshold if self.chosen else None

    @property
    def seconds(self) -> float:
        """Analysis seconds actually spent on this pair *in this run*
        (summed across rungs, so parallel rungs count their combined
        compute; cached rungs arrive with 0)."""
        total = sum(rung.seconds for rung in self.rungs)
        if self.refutation is not None:
            total += self.refutation.seconds
        return total

    @property
    def tight(self) -> bool | None:
        """Did the refutation stage certify the chosen threshold tight
        (no smaller threshold within the probe margin)?  ``None`` when
        no probe completed."""
        if self.refutation is None or self.refutation.status != "ok":
            return None
        return self.refutation.outcome == "refuted"

    def chosen_rung_index(self) -> int | None:
        """Index of the winning rung in the ladder, if any."""
        if self.chosen is None:
            return None
        return self.rungs.index(self.chosen)


def record_portfolio_metrics(portfolios: list["PortfolioResult"]) -> None:
    """Count decided portfolios by outcome (observability only: called
    after selection, so it cannot influence which rung was chosen)."""
    counter = get_registry().counter(
        "repro_portfolio_pairs_total",
        "Portfolio pairs decided, by outcome.",
        ("outcome",),
    )
    for portfolio in portfolios:
        if portfolio.succeeded:
            outcome = "chosen"
        elif any(rung.failed for rung in portfolio.rungs):
            outcome = "failed"
        else:
            outcome = "unknown"
        counter.inc(outcome=outcome)


def select_result(results: list[JobResult], mode: str) -> JobResult | None:
    """Pick the portfolio winner from per-rung results.

    ``"first"``: the first success in ladder order.  ``"best"``: the
    minimal threshold among succeeding rungs (ladder order breaks ties);
    successes without a recorded threshold (e.g. ``bound`` jobs) rank
    after thresholded ones.

    Ranking uses :meth:`~repro.engine.jobs.JobResult.exact_threshold`:
    exact-backend rungs carry a ``Fraction`` whose ``float`` rendering
    can collide with (or cross) a neighbouring rung's value, and
    ranking the rounded floats would mis-pick the rung.  Fractions and
    floats compare exactly in Python, so mixed ladders order soundly.
    """
    if mode not in PORTFOLIO_MODES:
        raise AnalysisError(
            f"unknown portfolio mode {mode!r} (use one of {PORTFOLIO_MODES})"
        )
    successes = [
        (index, result) for index, result in enumerate(results)
        if result.succeeded
    ]
    if not successes:
        return None
    if mode == "first":
        return successes[0][1]

    def rank(pair):
        index, result = pair
        exact = result.exact_threshold()
        return (exact is None, 0 if exact is None else exact, index)

    return min(successes, key=rank)[1]


def portfolio_jobs(old_source: str, new_source: str, name: str,
                   base: AnalysisConfig | None = None,
                   ladder: tuple[tuple[int, int, str], ...] = DEFAULT_LADDER,
                   ) -> list[AnalysisJob]:
    """The per-rung ``diff`` jobs of one pair."""
    jobs = []
    for config in ladder_configs(base, ladder):
        rung = f"d{config.degree}K{config.max_products}:{config.lp_backend}"
        jobs.append(
            AnalysisJob(
                kind="diff",
                old_source=old_source,
                new_source=new_source,
                config=config,
                name=f"{name}[{rung}]",
            )
        )
    return jobs


#: Exact backend used by refutation probes: the gap certificates must
#: be `Fraction`s for the tightness comparison to be sound, and the
#: warm-started rung is the fastest exact solver.
REFUTE_BACKEND = "exact-warm"


def refutation_job(old_source: str, new_source: str, name: str,
                   chosen: JobResult,
                   base: AnalysisConfig | None = None,
                   margin: float = 1.0) -> AnalysisJob | None:
    """The tightness probe for a pair whose portfolio chose ``chosen``.

    Probes the candidate ``threshold - margin`` with the winning rung's
    template shape (degree / max products) and the exact backend, so a
    ``refuted`` outcome certifies no smaller threshold exists within
    ``margin`` — for integer-cost programs, ``margin=1`` means the
    computed threshold is exactly tight.  Returns ``None`` when the
    rung carries no threshold to probe.
    """
    exact = chosen.exact_threshold()
    if exact is None:
        return None
    config = replace(
        base or AnalysisConfig(),
        degree=chosen.config_summary.get("degree", 2),
        max_products=chosen.config_summary.get("max_products", 2),
        lp_backend=REFUTE_BACKEND,
    )
    return AnalysisJob(
        kind="refute",
        old_source=old_source,
        new_source=new_source,
        config=config,
        name=f"{name}[refute]",
        candidate=float(exact) - margin,
    )


def attach_refutations(portfolios: list[PortfolioResult],
                       sources: dict[str, tuple[str, str]],
                       executor: ParallelExecutor,
                       base: AnalysisConfig | None = None,
                       margin: float = 1.0) -> None:
    """Run the refutation stage for every succeeded portfolio in one
    executor wave (cache-aware) and attach the probe results."""
    jobs, owners = [], []
    for portfolio in portfolios:
        if portfolio.chosen is None:
            continue
        old_source, new_source = sources[portfolio.name]
        job = refutation_job(old_source, new_source, portfolio.name,
                             portfolio.chosen, base, margin)
        if job is not None:
            jobs.append(job)
            owners.append(portfolio)
    if not jobs:
        return
    _LOG.debug("refutation stage: probing %d pair(s)", len(jobs))
    for portfolio, result in zip(owners, executor.run(jobs)):
        portfolio.refutation = result


def run_portfolio(old_source: str, new_source: str, name: str,
                  executor: ParallelExecutor,
                  base: AnalysisConfig | None = None,
                  ladder: tuple[tuple[int, int, str], ...] = DEFAULT_LADDER,
                  mode: str = "first", refute: bool = False,
                  refute_margin: float = 1.0) -> PortfolioResult:
    """Race one pair through the ladder on ``executor``."""
    jobs = portfolio_jobs(old_source, new_source, name, base, ladder)
    if mode == "first":
        results = executor.run_escalating(jobs)
    else:
        results = executor.run(jobs)
    portfolio = PortfolioResult(
        name=name,
        mode=mode,
        chosen=select_result(results, mode),
        rungs=results,
    )
    if refute:
        attach_refutations(
            [portfolio], {name: (old_source, new_source)}, executor,
            base, refute_margin,
        )
    record_portfolio_metrics([portfolio])
    return portfolio
