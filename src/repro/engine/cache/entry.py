"""The on-disk cache entry schema, shared by every tier.

One *entry* is the JSON object persisted for one job key — by the
legacy one-file-per-entry directory store, by the warm append-log, and
by the federation delta protocol.  All three speak exactly this shape::

    {"version": JOB_SCHEMA_VERSION,
     "job": {"kind": ..., "name": ..., "config": {...}, "lp_solver": {...}},
     "result": {...JobResult.to_dict()...},
     "checksum": "sha256 hex over the canonical result payload"}

:func:`classify_entry` is the single trust decision every consumer
(lookup, merge, federation) applies, so an entry one code path would
refuse to replay can never be copied around by another — the bug class
PR 10 fixed in ``merge_from``.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

from repro.engine.jobs import JOB_SCHEMA_VERSION, AnalysisJob, JobResult

#: Trust verdicts of :func:`classify_entry`.
#:
#: - ``"ok"``: replayable — current schema version, checksum verifies.
#: - ``"stale"``: structurally sound but never replayable — a schema
#:   version mismatch or a pre-checksum legacy entry.  A *plain miss*:
#:   the entry is dead weight (rewritten on the next store), but not
#:   evidence of damage, so it is never quarantined — and never worth
#:   copying in a merge or a federation delta.
#: - ``"corrupt"``: damaged bytes — not a JSON object, or the checksum
#:   fails.  Quarantine material.
ENTRY_OK = "ok"
ENTRY_STALE = "stale"
ENTRY_CORRUPT = "corrupt"


def result_checksum(result_payload: Any) -> str:
    """Hex SHA-256 over the canonical rendering of a result payload."""
    canonical = json.dumps(result_payload, sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def build_entry(job: AnalysisJob, result: JobResult) -> dict[str, Any]:
    """The entry of record for ``result`` under ``job``'s key."""
    payload = job.canonical_payload()
    result_payload = result.to_dict()
    # The stored result is the entry of record regardless of how many
    # attempts it took this machine to produce it.
    result_payload["attempts"] = 0
    return {
        "version": JOB_SCHEMA_VERSION,
        "job": {
            "kind": job.kind,
            "name": job.name,
            "config": payload["config"],
            # Recorded for debuggability; the *key* (entry name)
            # already covers both, so entries written by an older
            # solver revision are simply never looked up again.
            "lp_solver": payload["lp_solver"],
        },
        "result": result_payload,
        "checksum": result_checksum(result_payload),
    }


def classify_entry(entry: Any) -> str:
    """The trust verdict of a parsed entry; see the module constants."""
    if not isinstance(entry, dict):
        return ENTRY_CORRUPT
    if entry.get("version") != JOB_SCHEMA_VERSION:
        return ENTRY_STALE
    checksum = entry.get("checksum")
    if checksum is None:
        # A legacy (pre-checksum) entry: unverifiable bytes.
        return ENTRY_STALE
    if checksum != result_checksum(entry.get("result")):
        return ENTRY_CORRUPT
    return ENTRY_OK


def entry_json(entry: dict[str, Any]) -> str:
    """The canonical single-line serialization every store writes."""
    return json.dumps(entry, sort_keys=True)


def result_from_entry(entry: dict[str, Any]) -> JobResult | None:
    """Deserialize a trusted entry's result, zeroing the volatile
    machine-condition fields exactly like a disk replay.

    The entry keeps the original run's duration on disk, but a replayed
    result cost this run nothing — reporting historical seconds as
    measured time would inflate every consumer's timing column, and
    replaying the stored metrics delta would double-count the original
    run's increments.  Returns ``None`` when the payload's shape does
    not reconstruct (quarantine material despite a passing checksum).
    """
    try:
        result = JobResult.from_dict(entry["result"])
    except (KeyError, TypeError):
        return None
    result.cached = True
    result.seconds = 0.0
    result.metrics = {}
    result.attempts = 0
    return result


def percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile of an ascending list (0 when empty)."""
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1,
                int(round(q * (len(sorted_values) - 1))))
    return sorted_values[index]
