"""Cache federation: a fleet of serve nodes converging to one cache.

Every node's cache is content-addressed and first-writer-wins, which
makes the federation protocol almost embarrassingly simple — and, more
importantly, *idempotent*: re-delivering any record is a no-op, so
every step can be retried through the
:class:`~repro.coord.client.ResilientClient` without coordination.

One **round** (driven by the coordinator's ``POST /cache/federate``,
or by ``repro-diffcost cache federate`` against a node list):

1. *Pull*: ``GET <node>/cache/delta?since=<watermark>`` from every
   node — the trusted entries that node wrote after the last round,
   plus its new watermark.
2. *Union*: merge all pulled records by key.  The earliest timestamp
   wins ties, mirroring first-writer-wins on disk; any winner is
   equally valid (identical keys ⇒ semantically identical results).
3. *Push*: ``POST <node>/cache/merge`` the union to every node; each
   node's :meth:`~repro.engine.cache.ResultCache.apply_delta` stores
   only what it lacks and re-verifies every entry before trusting it
   (federation never launders bytes a local ``get`` would refuse).

Watermarks advance only after a node's pull *and* push both succeed,
so a failed node simply re-exchanges the same delta next round.  The
``cache.delta_drop`` / ``cache.merge_drop`` fault sites (consulted
node-side) make both failure legs testable under a seeded plan.
"""

from __future__ import annotations

from typing import Any

from repro.obs import get_logger, get_registry

_LOG = get_logger("engine.cache.federation")


def merge_deltas(deltas: list[list[dict]]) -> list[dict]:
    """The union of several nodes' delta records, one record per key —
    earliest timestamp wins, URL-stable input order breaks exact ties.
    Returns records sorted by key so every node receives (and every
    test observes) one deterministic payload."""
    union: dict[str, dict] = {}
    for records in deltas:
        for record in records:
            if not isinstance(record, dict):
                continue
            key = record.get("key")
            if not isinstance(key, str):
                continue
            current = union.get(key)
            try:
                ts = float(record.get("ts", 0.0))
            except (TypeError, ValueError):
                continue
            if current is None or ts < float(current.get("ts", 0.0)):
                union[key] = record
    return [union[key] for key in sorted(union)]


def federate_round(client: Any, node_urls: list[str],
                   watermarks: dict[str, float]) -> dict[str, Any]:
    """One pull/union/push exchange across ``node_urls``.

    ``client`` is a :class:`~repro.coord.client.ResilientClient` (or
    anything with its ``get``/``post`` shape); ``watermarks`` maps node
    URL to the last watermark that fully round-tripped and is updated
    in place.  Returns a summary safe to serialize into an HTTP
    response.  A node that fails either leg is reported, its watermark
    left untouched, and the round continues — federation is gossip,
    not a transaction.
    """
    from repro.coord.client import ClientError  # circular-free at call time

    pulled: dict[str, list[dict]] = {}
    new_watermarks: dict[str, float] = {}
    failed: list[str] = []
    for url in sorted(set(node_urls)):
        since = watermarks.get(url, 0.0)
        try:
            _status, payload = client.get(
                f"{url}/cache/delta?since={since!r}"
            )
            records = payload["records"]
            watermark = float(payload["watermark"])
            if not isinstance(records, list):
                raise TypeError("records must be a list")
        except (ClientError, KeyError, TypeError, ValueError) as error:
            _LOG.warning("federation pull from %s failed: %s", url, error)
            failed.append(url)
            continue
        pulled[url] = records
        new_watermarks[url] = watermark

    union = merge_deltas(list(pulled.values()))
    per_node: dict[str, dict] = {}
    applied_total = 0
    for url in sorted(pulled):
        own = {record.get("key") for record in pulled[url]}
        outgoing = [record for record in union
                    if record.get("key") not in own]
        applied = skipped = 0
        if outgoing:
            try:
                _status, payload = client.post(
                    f"{url}/cache/merge", {"records": outgoing}
                )
                applied = int(payload.get("applied", 0))
                skipped = int(payload.get("skipped", 0))
            except (ClientError, TypeError, ValueError) as error:
                _LOG.warning("federation push to %s failed: %s",
                             url, error)
                failed.append(url)
                continue
        watermarks[url] = new_watermarks[url]
        applied_total += applied
        per_node[url] = {
            "pulled": len(pulled[url]),
            "pushed": len(outgoing),
            "applied": applied,
            "skipped": skipped,
            "watermark": watermarks[url],
        }

    get_registry().counter(
        "repro_cache_federation_rounds_total",
        "Cache federation rounds completed.",
    ).inc()
    if applied_total:
        get_registry().counter(
            "repro_cache_federation_applied_total",
            "Cache entries replicated onto a node by federation.",
        ).inc(applied_total)
    summary = {
        "nodes": len(set(node_urls)),
        "union": len(union),
        "applied": applied_total,
        "failed": sorted(set(failed)),
        "per_node": per_node,
    }
    _LOG.info("federation round: %d node(s), union %d, applied %d, "
              "%d failed", summary["nodes"], summary["union"],
              applied_total, len(summary["failed"]))
    return summary
