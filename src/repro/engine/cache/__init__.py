"""Tiered persistent result cache, keyed by content-addressed job hash.

Three tiers, one :class:`ResultCache` facade:

- **hot** (:mod:`repro.engine.cache.hot`): an in-process bounded LRU of
  verified result payloads, so repeat lookups skip disk and JSON
  parsing entirely.  Populated only by a disk-verified read.
- **disk** — one of two backends:

  - ``"dir"`` (the legacy format, still the default): one JSON file per
    entry, written atomically (temp file + rename).
  - ``"warm"`` (:mod:`repro.engine.cache.warm`): a single append-log
    with an in-memory index and a persisted sidecar — O(1) startup and
    ``stats()``, compaction, age-bounded eviction.  Opening a warm
    cache transparently migrates any legacy entry files into the log.

  ``"auto"`` picks ``"warm"`` when a ``warm.log`` already exists.

- **federation**: :meth:`ResultCache.delta_since` /
  :meth:`ResultCache.apply_delta` exchange trusted entries between
  caches over the serve/coord HTTP layer
  (:mod:`repro.engine.cache.federation`), so a fleet converges to one
  shared cache.

Trust never varies by tier: every consumer applies
:func:`~repro.engine.cache.entry.classify_entry`, so an entry ``get``
would refuse to replay is never copied by a merge or shipped in a
delta.  Entries carry the schema version, the job's canonical metadata
and a SHA-256 checksum of the result payload; a version mismatch or a
pre-checksum legacy entry is a plain miss (rewritten on the next
store), while damaged bytes are *quarantined* to ``<key>.corrupt`` for
post-mortems and treated as a miss instead of raising.  Transient I/O
errors (EACCES, EMFILE, an NFS hiccup) are also a plain miss — the
entry stays in place for the next, luckier reader.  Opening a cache
sweeps ``.tmp-*`` files a killed writer left behind and ``*.corrupt``
quarantine files past their forensic shelf life (both age-bounded, so
live writers and fresh evidence are never raced).

Repeated batch/suite runs therefore skip invariant generation,
Handelman encoding and the LP solve entirely for unchanged (program
pair, config) points — the cache key covers every
:class:`~repro.config.AnalysisConfig` field, so any knob change
invalidates exactly the affected entries.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path
from typing import Any

from repro.engine.cache.entry import (
    ENTRY_CORRUPT,
    ENTRY_OK,
    ENTRY_STALE,
    build_entry,
    classify_entry,
    entry_json,
    percentile,
    result_from_entry,
)
from repro.engine.cache.hot import DEFAULT_HOT_CAPACITY, HotTier
from repro.engine.cache.warm import (
    LOG_NAME as WARM_LOG_NAME,
    WarmStore,
    WarmStoreError,
    read_log_records,
)
from repro.engine.jobs import AnalysisJob, JobResult
from repro.errors import AnalysisError
from repro.faults import active_plan, fault_point
from repro.obs import get_logger, get_registry

_LOG = get_logger("engine.cache")

#: Results from failed executions are never cached (a timeout on a busy
#: machine says nothing about the next run); sound analysis answers are,
#: including the paper's ✗ ("unknown": the LP was infeasible).
CACHEABLE_STATUSES = ("ok",)

#: Entries older than this (seconds since last write) count as eviction
#: candidates in :meth:`ResultCache.stats` and are what
#: :meth:`ResultCache.evict` removes when no explicit bound is given.
DEFAULT_EVICTION_AGE_S = 7 * 24 * 3600.0

#: ``.tmp-*`` files older than this are removed when a cache opens: a
#: live writer holds its temp for milliseconds between ``mkstemp`` and
#: ``os.replace``, so anything minutes old is the leavings of a killed
#: process.  The generous margin keeps concurrent shard runs (which
#: share a destination directory) un-raceable.
DEFAULT_TEMP_SWEEP_AGE_S = 300.0

#: ``*.corrupt`` quarantine files older than this are removed at open.
#: Long enough that a post-mortem after a weekend incident still finds
#: its evidence; bounded so quarantine can't grow without limit.
DEFAULT_CORRUPT_SWEEP_AGE_S = 7 * 24 * 3600.0

#: Accepted ``backend=`` spellings.
CACHE_BACKENDS = ("dir", "warm", "auto")


class ResultCache:
    """Tiered on-disk cache of :class:`JobResult` payloads."""

    def __init__(self, directory: str | os.PathLike,
                 eviction_age_s: float = DEFAULT_EVICTION_AGE_S,
                 temp_sweep_age_s: float = DEFAULT_TEMP_SWEEP_AGE_S,
                 backend: str = "dir",
                 hot_capacity: int = DEFAULT_HOT_CAPACITY,
                 corrupt_sweep_age_s: float = DEFAULT_CORRUPT_SWEEP_AGE_S):
        if backend not in CACHE_BACKENDS:
            raise AnalysisError(
                f"unknown cache backend {backend!r}; "
                f"expected one of {', '.join(CACHE_BACKENDS)}"
            )
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.eviction_age_s = eviction_age_s
        self.temp_sweep_age_s = temp_sweep_age_s
        self.corrupt_sweep_age_s = corrupt_sweep_age_s
        if backend == "auto":
            backend = "warm" if (self.directory / WARM_LOG_NAME).exists() \
                else "dir"
        self.backend = backend
        self.hits = 0
        self.misses = 0
        #: Entries quarantined to ``*.corrupt`` by this handle.
        self.corrupted = 0
        #: Transient I/O failures reported as plain misses (entry kept).
        self.io_errors = 0
        #: Untrusted source entries a merge/delta refused to copy.
        self.merge_skipped = 0
        #: Legacy entry files folded into the warm log at open.
        self.migrated = 0
        #: Entries removed by :meth:`evict` through this handle.
        self.evicted = 0
        #: Legacy per-entry files examined by directory scans — the
        #: counter the CI warm-tier gate pins to zero: a warm-backend
        #: cache past migration must never walk entry files again.
        self.dir_scan_entries = 0
        self.hot = HotTier(hot_capacity)
        self.warm: WarmStore | None = None
        self.temp_swept = self._sweep_temps()
        self.corrupt_swept = self._sweep_corrupt()
        if self.backend == "warm":
            self.warm = WarmStore(self.directory)
            self.migrated = self._migrate_legacy_entries()

    def path_for(self, key: str) -> Path:
        """The legacy entry file of a job key (also names the
        ``<key>.corrupt`` quarantine target in every backend)."""
        return self.directory / f"{key}.json"

    # -- open-time sweeps --------------------------------------------------

    def _sweep_temps(self) -> int:
        """Remove ``.tmp-*`` files older than :attr:`temp_sweep_age_s`
        (a killed writer's leavings); returns how many were removed."""
        removed = 0
        now = time.time()
        for path in self.directory.glob(".tmp-*"):
            try:
                if now - path.stat().st_mtime < self.temp_sweep_age_s:
                    continue
                path.unlink()
                removed += 1
            except OSError:  # finished/cleaned by a live writer mid-scan
                continue
        if removed:
            get_registry().counter(
                "repro_cache_temps_swept_total",
                "Stale cache temp files removed at open.",
            ).inc(removed)
            _LOG.warning("swept %d stale temp file(s) from %s",
                         removed, self.directory)
        return removed

    def _sweep_corrupt(self) -> int:
        """Remove ``*.corrupt`` quarantine files older than
        :attr:`corrupt_sweep_age_s`; returns how many were removed.
        Fresh quarantine survives — it is post-mortem evidence — but
        nothing accumulates forever."""
        removed = 0
        now = time.time()
        for path in self.directory.glob("*.corrupt"):
            try:
                if now - path.stat().st_mtime < self.corrupt_sweep_age_s:
                    continue
                path.unlink()
                removed += 1
            except OSError:
                continue
        if removed:
            get_registry().counter(
                "repro_cache_corrupt_swept_total",
                "Aged-out quarantine files removed at open.",
            ).inc(removed)
            _LOG.warning("swept %d aged quarantine file(s) from %s",
                         removed, self.directory)
        return removed

    def _migrate_legacy_entries(self) -> int:
        """Fold legacy per-entry files into the warm log at open.

        Trusted entries are appended (first writer wins) and their
        files removed; stale ones are deleted outright (dead weight in
        either format); corrupt ones are quarantined.  After one
        migration the directory holds no entry files, so this scan —
        the last directory walk a warm cache ever performs — finds
        nothing on every later open."""
        assert self.warm is not None
        batch: list[tuple] = []
        migratable: list[Path] = []
        for path in sorted(self.directory.glob("[!.]*.json")):
            self.dir_scan_entries += 1
            key = path.stem
            try:
                raw = path.read_bytes()
            except OSError:
                self.io_errors += 1
                continue
            try:
                parsed = json.loads(raw)
            except (json.JSONDecodeError, UnicodeDecodeError):
                self._quarantine(path, "undecodable legacy entry")
                continue
            verdict = classify_entry(parsed)
            if verdict == ENTRY_CORRUPT:
                self._quarantine(path, "corrupt legacy entry")
                continue
            if verdict == ENTRY_STALE:
                _unlink_quiet(path)
                continue
            try:
                ts = path.stat().st_mtime
            except OSError:
                ts = None
            batch.append((key, parsed, ts))
            migratable.append(path)
        if not batch:
            return 0
        self.warm.append_many(batch)
        for path in migratable:
            _unlink_quiet(path)
        self.warm.write_sidecar()
        migrated = len(batch)
        get_registry().counter(
            "repro_cache_migrated_total",
            "Legacy entry files folded into the warm log.",
        ).inc(migrated)
        _LOG.info("migrated %d legacy entr%s into %s", migrated,
                  "y" if migrated == 1 else "ies",
                  self.warm.log_path)
        return migrated

    # -- lookup ------------------------------------------------------------

    def get(self, key: str) -> JobResult | None:
        """The cached result of ``key``, or ``None`` on a miss.

        An entry that exists but cannot be trusted — truncated or
        garbage bytes, a checksum mismatch, a malformed result payload —
        is quarantined to ``<key>.corrupt`` and reported as a miss, so
        corruption costs one re-execution instead of a crash.  A
        missing entry, a schema-version mismatch, a pre-checksum legacy
        entry, or a *transient I/O error* (the entry is left in place)
        is a plain miss.
        """
        payload = self.hot.get(key)
        if payload is not None:
            result = self._result_from_payload(payload)
            if result is not None:
                self._hit()
                return result
            self.hot.invalidate(key)
        if self.backend == "warm":
            entry, raw = self._read_warm(key)
        else:
            entry, raw = self._read_dir(key)
        if entry is _MISS:
            self._miss()
            return None
        verdict = classify_entry(entry)
        if verdict == ENTRY_STALE:
            # Unverifiable or out-of-schema bytes: re-run rather than
            # trust them; the store rewrites the slot with a checksum.
            if self.backend == "warm":
                self.warm.remove(key)
            self._miss()
            return None
        if verdict == ENTRY_CORRUPT:
            self._quarantine_entry(key, raw, "checksum mismatch"
                                   if isinstance(entry, dict)
                                   else "entry is not a JSON object")
            self._miss()
            return None
        result = result_from_entry(entry)
        if result is None:
            self._quarantine_entry(key, raw, "malformed result payload")
            self._miss()
            return None
        self._hit()
        self.hot.put(key, entry["result"])
        return result

    def _read_dir(self, key: str) -> tuple[Any, bytes | None]:
        """Read a legacy entry file; ``(_MISS, None)`` on a plain miss.
        Transient I/O errors never quarantine — only byte-level damage
        does, and decode failures are surfaced as non-dict entries."""
        path = self.path_for(key)
        try:
            raw = path.read_bytes()
        except FileNotFoundError:
            return _MISS, None
        except OSError as exc:
            # EACCES, EMFILE, a slow NFS mount: the entry is (as far as
            # anyone knows) healthy — leave it for the next reader.
            self.io_errors += 1
            get_registry().counter(
                "repro_cache_io_errors_total",
                "Transient I/O failures treated as plain cache misses.",
            ).inc()
            _LOG.warning("transient I/O error reading %s: %s",
                         path.name, exc)
            return _MISS, None
        try:
            return json.loads(raw), raw
        except (json.JSONDecodeError, UnicodeDecodeError):
            return None, raw  # classify_entry(None) -> corrupt

    def _read_warm(self, key: str) -> tuple[Any, bytes | None]:
        assert self.warm is not None
        self.warm.resync()
        raw = self.warm.lookup_raw(key)
        if raw is None:
            return _MISS, None
        try:
            record = json.loads(raw)
            return record.get("entry"), raw
        except (json.JSONDecodeError, UnicodeDecodeError):
            return None, raw

    def _result_from_payload(self, payload: dict) -> JobResult | None:
        try:
            result = JobResult.from_dict(payload)
        except (KeyError, TypeError):
            return None
        result.cached = True
        result.seconds = 0.0
        result.metrics = {}
        result.attempts = 0
        return result

    def _hit(self) -> None:
        self.hits += 1
        get_registry().counter(
            "repro_cache_hits_total", "Result-cache lookups that hit.",
        ).inc()

    def _miss(self) -> None:
        self.misses += 1
        get_registry().counter(
            "repro_cache_misses_total", "Result-cache lookups that missed.",
        ).inc()

    def _quarantine_entry(self, key: str, raw: bytes | None,
                          why: str) -> None:
        """Quarantine whatever bytes back ``key`` in this backend."""
        if self.backend == "warm":
            target = self.directory / f"{key}.corrupt"
            try:
                target.write_bytes(raw if raw is not None else b"")
            except OSError:
                return
            self.warm.remove(key)
            self._count_quarantine(key, target, why)
        else:
            self._quarantine(self.path_for(key), why)

    def _quarantine(self, path: Path, why: str) -> None:
        """Move a corrupt entry file aside as ``<key>.corrupt``
        (best-effort; a concurrent writer may have already replaced
        it)."""
        target = path.with_suffix(".corrupt")
        try:
            os.replace(path, target)
        except OSError:
            return
        self._count_quarantine(path.stem, target, why)

    def _count_quarantine(self, key: str, target: Path, why: str) -> None:
        self.corrupted += 1
        get_registry().counter(
            "repro_cache_corrupt_total",
            "Cache entries quarantined as corrupt.",
        ).inc()
        _LOG.warning("quarantined corrupt cache entry %s -> %s (%s)",
                     key, target.name, why)

    # -- store -------------------------------------------------------------

    def put(self, job: AnalysisJob, result: JobResult) -> bool:
        """Store ``result`` under ``job``'s key; returns whether stored.

        The hot tier is *not* primed here: the published bytes may
        still be damaged behind our back (a dying machine, the
        ``cache.torn_write`` chaos site), and only a verified read may
        vouch for an entry.
        """
        if result.status not in CACHEABLE_STATUSES:
            return False
        entry = build_entry(job, result)
        if self.backend == "warm":
            return self._put_warm(job, entry)
        return self._put_dir(job, entry)

    def _put_dir(self, job: AnalysisJob, entry: dict) -> bool:
        path = self.path_for(job.key)
        fd, temp_path = tempfile.mkstemp(
            dir=self.directory, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(entry, handle, sort_keys=True)
            os.replace(temp_path, path)
        except OSError:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            return False
        self._count_store()
        self._apply_write_fault(job)
        return True

    def _put_warm(self, job: AnalysisJob, entry: dict) -> bool:
        assert self.warm is not None
        try:
            written = self.warm.append(job.key, entry)
        except OSError:
            return False
        if written:
            self._count_store()
            self._apply_write_fault(job)
        # An unwritten append means the key is already live (first
        # writer won) — the caller's result is stored either way.
        return True

    def _count_store(self) -> None:
        get_registry().counter(
            "repro_cache_stores_total", "Result-cache entries written.",
        ).inc()

    def _apply_write_fault(self, job: AnalysisJob) -> None:
        """Chaos hook: damage the just-published entry when the active
        fault plan says so (``cache.torn_write`` / ``cache.corrupt``)."""
        if active_plan() is None:
            return
        rule = fault_point("cache.torn_write", name=job.name, key=job.key,
                           kind=job.kind)
        mode = "truncate" if rule is not None else None
        if rule is None:
            rule = fault_point("cache.corrupt", name=job.name, key=job.key,
                               kind=job.kind)
            mode = rule.mode if rule is not None else None
        if rule is None:
            return
        try:
            if self.backend == "warm":
                self._damage_warm_record(job.key, mode)
            else:
                path = self.path_for(job.key)
                if mode == "truncate":
                    data = path.read_bytes()
                    path.write_bytes(data[: len(data) // 2])
                else:
                    plan = active_plan()
                    path.write_bytes(plan.corruption_bytes(job.key))
        except OSError:  # pragma: no cover — fault on the fault path
            pass

    def _damage_warm_record(self, key: str, mode: str | None) -> None:
        """Chaos-only: tear or scribble over ``key``'s log record in
        place, modelling a machine dying mid-append / bit rot."""
        assert self.warm is not None
        slot = self.warm.index.get(key)
        if slot is None:
            return
        offset, length, _ = slot
        with open(self.warm.log_path, "r+b") as handle:
            if mode == "truncate":
                # Tear the tail: only meaningful for the final record.
                handle.truncate(offset + length // 2)
            else:
                plan = active_plan()
                garbage = plan.corruption_bytes(key)[: length - 1]
                garbage = garbage.ljust(length - 1, b"x")
                handle.seek(offset)
                handle.write(garbage)

    # -- merging -----------------------------------------------------------

    def merge_from(self, source: str | os.PathLike,
                   overwrite: bool = False) -> int:
        """Fold another cache directory's entries into this one.

        The shard-merge primitive: after ``batch --shard k/n`` runs on
        disjoint cache directories, merging them all into one yields
        the cache an unsharded run would have produced (keys are
        content-addressed, so entries never conflict semantically — two
        copies of a key differ only in recorded wall seconds).

        The source may be either format — legacy entry files and a
        ``warm.log`` are both read (the source is never written to).
        Existing entries are kept unless ``overwrite`` (first writer
        wins — the cheapest option, and any winner is equally valid).
        Only entries :meth:`get` would trust are copied: in-flight
        ``.tmp-*`` files, unreadable/undecodable/checksum-failing
        entries *and* stale ones (legacy checksum-less, schema-version
        mismatch) are skipped and counted in :attr:`merge_skipped` —
        merging a shard cache a fault chewed on must not spread damage,
        and dead weight every later lookup refuses is not worth
        copying either.  Returns how many entries were copied.
        """
        source_dir = Path(source)
        if source_dir.resolve() == self.directory.resolve():
            return 0
        copied = 0
        warm_batch: list[tuple] = []
        for key, raw, entry, ts in self._iter_source_entries(source_dir):
            verdict = classify_entry(entry)
            if verdict != ENTRY_OK:
                self._count_merge_skip(key, verdict)
                continue
            if self.backend == "warm":
                if not overwrite and key in self.warm:
                    continue
                warm_batch.append((key, entry, ts))
                continue
            destination = self.path_for(key)
            if not overwrite and destination.exists():
                continue
            fd, temp_path = tempfile.mkstemp(
                dir=self.directory, prefix=".tmp-", suffix=".json"
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(raw)
                os.replace(temp_path, destination)
                copied += 1
            except OSError:
                try:
                    os.unlink(temp_path)
                except OSError:
                    pass
        if warm_batch:
            copied += self.warm.append_many(warm_batch,
                                            overwrite=overwrite)
            self.warm.write_sidecar()
        if copied:
            _LOG.debug("merged %d entr%s from %s", copied,
                       "y" if copied == 1 else "ies", source_dir)
        return copied

    def _iter_source_entries(self, source_dir: Path):
        """Yield ``(key, raw_entry_bytes, parsed_entry_or_None, ts)``
        for every entry a source directory holds, both formats.  A
        parse failure yields ``None`` (classified corrupt); the raw
        bytes preserve the original file verbatim for dir-to-dir
        copies."""
        for path in sorted(source_dir.glob("[!.]*.json")):
            self.dir_scan_entries += 1
            try:
                raw = path.read_bytes()
                ts = path.stat().st_mtime
            except OSError:
                continue
            try:
                parsed = json.loads(raw)
            except (json.JSONDecodeError, UnicodeDecodeError):
                parsed = None
            yield path.stem, raw, parsed, ts
        log_path = source_dir / WARM_LOG_NAME
        if log_path.exists():
            for key, record in sorted(
                    read_log_records(log_path).items()):
                entry = record.get("entry")
                try:
                    ts = float(record.get("ts", 0.0))
                except (TypeError, ValueError):
                    ts = 0.0
                yield key, (entry_json(entry).encode() + b"\n"
                            if isinstance(entry, dict) else b""), \
                    entry, ts

    def _count_merge_skip(self, key: str, verdict: str) -> None:
        self.merge_skipped += 1
        get_registry().counter(
            "repro_cache_merge_skipped_total",
            "Untrusted source entries refused by merge/delta.",
        ).inc()
        _LOG.warning("skipping %s source entry %s", verdict, key)

    # -- federation --------------------------------------------------------

    def delta_since(self, since: float) -> tuple[float, list[dict]]:
        """Trusted entries written after ``since`` plus the new
        watermark (the newest timestamp seen, so the next pull starts
        where this one ended).

        Each record is ``{"key", "ts", "entry"}`` — the same shape the
        warm log stores — and only :data:`ENTRY_OK` entries travel:
        federation must never propagate bytes a local ``get`` would
        quarantine or refuse.
        """
        watermark = since
        records: list[dict] = []
        if self.backend == "warm":
            self.warm.resync()
            stamps = self.warm.timestamps()
            for key in sorted(stamps):
                ts = stamps[key]
                watermark = max(watermark, ts)
                if ts <= since:
                    continue
                entry, _ = self._read_warm(key)
                if entry is _MISS or classify_entry(entry) != ENTRY_OK:
                    continue
                records.append({"key": key, "ts": ts, "entry": entry})
            return watermark, records
        for path in sorted(self.directory.glob("[!.]*.json")):
            self.dir_scan_entries += 1
            try:
                ts = path.stat().st_mtime
                raw = path.read_bytes()
            except OSError:
                continue
            watermark = max(watermark, ts)
            if ts <= since:
                continue
            try:
                entry = json.loads(raw)
            except (json.JSONDecodeError, UnicodeDecodeError):
                continue
            if classify_entry(entry) != ENTRY_OK:
                continue
            records.append({"key": path.stem, "ts": ts, "entry": entry})
        return watermark, records

    def apply_delta(self, records: list[dict]) -> tuple[int, int]:
        """Store trusted delta records this cache lacks; returns
        ``(applied, skipped)``.  First writer wins, same as
        :meth:`merge_from` — content-addressed keys make re-delivery
        idempotent, which is what lets the federation protocol retry
        freely."""
        applied = 0
        skipped = 0
        warm_batch: list[tuple] = []
        for record in records:
            if not isinstance(record, dict):
                skipped += 1
                continue
            key = record.get("key")
            entry = record.get("entry")
            if not isinstance(key, str) or not key \
                    or _UNSAFE_KEY_CHARS.intersection(key):
                skipped += 1
                continue
            if classify_entry(entry) != ENTRY_OK:
                self._count_merge_skip(key, classify_entry(entry))
                skipped += 1
                continue
            try:
                ts = float(record.get("ts", 0.0)) or None
            except (TypeError, ValueError):
                ts = None
            if self.backend == "warm":
                if key in self.warm:
                    continue
                warm_batch.append((key, entry, ts))
                applied += 1
                continue
            destination = self.path_for(key)
            if destination.exists():
                continue
            fd, temp_path = tempfile.mkstemp(
                dir=self.directory, prefix=".tmp-", suffix=".json"
            )
            try:
                with os.fdopen(fd, "w") as handle:
                    handle.write(entry_json(entry))
                os.replace(temp_path, destination)
                applied += 1
            except OSError:
                try:
                    os.unlink(temp_path)
                except OSError:
                    pass
        if warm_batch:
            self.warm.append_many(warm_batch)
            self.warm.write_sidecar()
        return applied, skipped

    # -- maintenance -------------------------------------------------------

    def compact(self) -> dict[str, int]:
        """Rewrite the warm log dropping tombstones, garbage, stale and
        superseded records; returns the compaction summary.  Requires
        the warm backend — the legacy directory format has nothing to
        compact (use ``migrate``/the warm backend first)."""
        if self.backend != "warm":
            raise AnalysisError(
                "cache compaction requires the warm backend "
                "(open with backend='warm' to migrate this directory)"
            )
        return self.warm.compact(classify=classify_entry)

    def evict(self, max_age_s: float | None = None,
              now: float | None = None) -> int:
        """Remove entries older than ``max_age_s`` (default
        :attr:`eviction_age_s`); returns how many were evicted."""
        if max_age_s is None:
            max_age_s = self.eviction_age_s
        if now is None:
            now = time.time()
        if self.backend == "warm":
            summary = self.warm.compact(evict_age_s=max_age_s, now=now,
                                        classify=classify_entry)
            evicted = summary["evicted"]
            self.evicted += evicted
            if evicted:
                self.hot.clear()
            return evicted
        evicted = 0
        for path in self.directory.glob("[!.]*.json"):
            self.dir_scan_entries += 1
            try:
                if now - path.stat().st_mtime <= max_age_s:
                    continue
                path.unlink()
                evicted += 1
            except OSError:
                continue
        self.evicted += evicted
        if evicted:
            self.hot.clear()
            get_registry().counter(
                "repro_cache_evicted_total",
                "Cache entries dropped by age-bounded eviction.",
            ).inc(evicted)
        return evicted

    def clear(self) -> int:
        """Delete all entries; returns how many were removed.

        The pattern excludes in-flight ``.tmp-*`` files (pathlib's glob
        matches leading dots): unlinking one would race a concurrent
        writer's ``os.replace`` and silently drop its store.
        """
        self.hot.clear()
        if self.backend == "warm":
            return self.warm.clear()
        removed = 0
        for path in self.directory.glob("[!.]*.json"):
            self.dir_scan_entries += 1
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def __len__(self) -> int:
        if self.backend == "warm":
            self.warm.resync()
            return len(self.warm)
        count = 0
        for _ in self.directory.glob("[!.]*.json"):
            self.dir_scan_entries += 1
            count += 1
        return count

    # -- stats -------------------------------------------------------------

    @staticmethod
    def empty_stats() -> dict[str, Any]:
        """The :meth:`stats` schema with every value zeroed.

        Served by ``/healthz`` before the engine (and therefore the
        cache handle) exists, so scrapers see one stable shape instead
        of special-casing ``null``.  Every value is numeric — serve's
        ``/metrics`` mirrors each key as a gauge.
        """
        return {
            "hits": 0,
            "misses": 0,
            "corrupted": 0,
            "io_errors": 0,
            "temp_swept": 0,
            "corrupt_swept": 0,
            "corrupt_files": 0,
            "merge_skipped": 0,
            "migrated": 0,
            "evicted": 0,
            "dir_scan_entries": 0,
            "hot_hits": 0,
            "hot_entries": 0,
            "hot_evictions": 0,
            "warm_backend": 0,
            "warm_generation": 0,
            "warm_compactions": 0,
            "warm_garbage_records": 0,
            "entries": 0,
            "total_bytes": 0,
            "oldest_age_s": 0.0,
            "newest_age_s": 0.0,
            "age_p50_s": 0.0,
            "age_p90_s": 0.0,
            "eviction_candidates": 0,
        }

    def stats(self, now: float | None = None) -> dict[str, Any]:
        """Hit/miss counters of this handle plus on-disk shape: entry
        count, total bytes (quarantine files included — they are disk
        usage too), and entry-age spread (seconds since last write:
        oldest/newest and p50/p90 percentiles) — the capacity-planning
        view.  ``eviction_candidates`` counts entries older than
        :attr:`eviction_age_s`; nothing is deleted here.  On the warm
        backend the whole view comes from the in-memory index — no
        per-entry directory scan."""
        data = self.empty_stats()
        data["hits"], data["misses"] = self.hits, self.misses
        data["corrupted"] = self.corrupted
        data["io_errors"] = self.io_errors
        data["temp_swept"] = self.temp_swept
        data["corrupt_swept"] = self.corrupt_swept
        data["merge_skipped"] = self.merge_skipped
        data["migrated"] = self.migrated
        data["evicted"] = self.evicted
        data["hot_hits"] = self.hot.hits
        data["hot_entries"] = len(self.hot)
        data["hot_evictions"] = self.hot.evictions
        if now is None:
            now = time.time()
        ages: list[float] = []
        total_bytes = 0
        if self.backend == "warm":
            self.warm.resync()
            data["warm_backend"] = 1
            data["warm_generation"] = self.warm.generation
            data["warm_compactions"] = self.warm.compactions
            data["warm_garbage_records"] = self.warm.garbage_records
            ages = [max(0.0, now - ts)
                    for ts in self.warm.timestamps().values()]
            total_bytes = self.warm.log_bytes()
        else:
            for path in self.directory.glob("[!.]*.json"):
                self.dir_scan_entries += 1
                try:
                    meta = path.stat()
                except OSError:  # deleted mid-scan by another writer
                    continue
                total_bytes += meta.st_size
                ages.append(max(0.0, now - meta.st_mtime))
        corrupt_files = 0
        for path in self.directory.glob("*.corrupt"):
            try:
                total_bytes += path.stat().st_size
            except OSError:
                continue
            corrupt_files += 1
        data["corrupt_files"] = corrupt_files
        # Reported last so the scans above are themselves accounted.
        data["dir_scan_entries"] = self.dir_scan_entries
        ages.sort()
        data["entries"] = len(ages)
        data["total_bytes"] = total_bytes
        if ages:
            data["oldest_age_s"] = round(ages[-1], 3)
            data["newest_age_s"] = round(ages[0], 3)
            data["age_p50_s"] = round(percentile(ages, 0.5), 3)
            data["age_p90_s"] = round(percentile(ages, 0.9), 3)
            data["eviction_candidates"] = sum(
                1 for age in ages if age > self.eviction_age_s
            )
        return data


#: Sentinel distinguishing "no entry" from "entry parsed to None".
_MISS = object()

#: Characters a federated key may never contain — keys name files.
_UNSAFE_KEY_CHARS = set("/\\\0.")


def _unlink_quiet(path: Path) -> None:
    try:
        path.unlink()
    except OSError:
        pass
