"""The in-process hot tier: a bounded LRU of verified result payloads.

Serve and coord processes look the same handful of keys up over and
over (request dedupe replays, straggler duplicates, portfolio rungs
shared across requests).  The hot tier short-circuits those repeats
entirely in memory: no ``open``, no JSON parse, no checksum pass.

What it stores is the *result payload dict* of an entry that already
passed the disk tier's full verification — never raw bytes, and never
a live :class:`~repro.engine.jobs.JobResult` (results are mutable and
callers own the one they get; sharing one object across lookups would
let one caller's mutation corrupt another's replay).  Each hit
rebuilds a fresh ``JobResult`` from the payload, which is the cheap
part of a lookup — the expensive parts (I/O, ``json.loads``, SHA-256)
are exactly what the tier skips.

Population happens only on a *verified disk read*, never on ``put``:
a just-stored entry may be damaged after publication (torn write on a
dying machine, the ``cache.torn_write`` chaos site), and a hot tier
primed at store time would replay a result whose entry of record is
gone — corruption must cost one re-execution, never get masked.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any

from repro.obs import get_registry

#: Default bound on cached payloads.  Entries are small (a few KB of
#: result dict), so the default absorbs a whole Table 1 portfolio batch
#: several times over while staying far under a megabyte-scale budget.
DEFAULT_HOT_CAPACITY = 1024


class HotTier:
    """Bounded LRU mapping job key -> verified result payload dict."""

    def __init__(self, capacity: int = DEFAULT_HOT_CAPACITY):
        self.capacity = max(0, capacity)
        self.hits = 0
        self.evictions = 0
        self._payloads: OrderedDict[str, dict[str, Any]] = OrderedDict()

    def __len__(self) -> int:
        return len(self._payloads)

    def get(self, key: str) -> dict[str, Any] | None:
        """The payload under ``key`` (refreshed to most-recently-used),
        or ``None``.  Misses are not counted here — only the composite
        cache knows whether the disk tier saved the lookup."""
        payload = self._payloads.get(key)
        if payload is None:
            return None
        self._payloads.move_to_end(key)
        self.hits += 1
        get_registry().counter(
            "repro_cache_hot_hits_total",
            "Result-cache lookups served from the in-process hot tier.",
        ).inc()
        return payload

    def put(self, key: str, payload: dict[str, Any]) -> None:
        """Remember a payload that passed disk-tier verification."""
        if self.capacity == 0:
            return
        self._payloads[key] = payload
        self._payloads.move_to_end(key)
        while len(self._payloads) > self.capacity:
            self._payloads.popitem(last=False)
            self.evictions += 1
            get_registry().counter(
                "repro_cache_hot_evictions_total",
                "Hot-tier payloads evicted by the LRU bound.",
            ).inc()

    def invalidate(self, key: str) -> None:
        self._payloads.pop(key, None)

    def clear(self) -> None:
        self._payloads.clear()
