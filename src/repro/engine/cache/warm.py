"""The warm tier: one compacted append-log instead of a file per entry.

The legacy directory store pays O(entries) syscalls for startup sweeps,
``stats()``, ``len()`` and every merge — fatal once a cache holds the
leavings of millions of requests.  The warm store keeps every entry in
a single ``warm.log`` and answers all of those from an in-memory index,
so opening a warm cache costs one ``stat`` plus a scan of whatever tail
the persisted index has not seen yet.

Layout (all inside the cache directory, next to any legacy files):

``warm.log``
    Line 1 is the header ``{"generation": G, "warmlog": 1}``; every
    later line is one record ``{"entry": ..., "key": ..., "ts": ...}``.
    A record whose ``entry`` is ``null`` is a tombstone (quarantine or
    explicit removal).  Appends happen under ``.warm.lock`` with the
    file in ``O_APPEND`` mode; a record is one ``write`` of one
    newline-terminated line, so readers never see interleaved records —
    at worst a torn *tail*, which scanning stops in front of and the
    next locked writer heals by terminating the partial line.

``.warm-index.json``
    A sidecar snapshot of the in-memory index: generation, how many
    log bytes it covers, and ``{key: [offset, length, ts]}``.  Purely
    an accelerator — if it is missing, stale (different generation) or
    corrupt, the log is rescanned and the truth relearned.  Serialized
    with sorted keys so identical caches produce identical sidecars.

``.warm.lock``
    ``flock`` target serializing writers (append, compact, evict)
    across processes.  Readers take no lock.

Compaction rewrites the log — last live record per key, tombstones and
garbage dropped — into a temp file published with an atomic
``os.replace`` and a bumped generation, so a crash mid-compaction
(modelled by the ``cache.torn_write`` fault site with ``name
"compact"``) leaves the old log byte-for-byte intact: a verified entry
can never be lost to a dying compactor.  Readers notice the publish by
inode/size change and reload.
"""

from __future__ import annotations

import contextlib
import fcntl
import json
import os
import tempfile
import time
from pathlib import Path
from typing import Any, Iterator

from repro.faults import fault_point
from repro.obs import get_logger, get_registry

_LOG = get_logger("engine.cache.warm")

#: Schema marker in the log header and index sidecar.
WARM_LOG_VERSION = 1

LOG_NAME = "warm.log"
INDEX_NAME = ".warm-index.json"
LOCK_NAME = ".warm.lock"


class WarmStoreError(Exception):
    """The warm log is unusable (bad header) — caller should treat the
    store as absent rather than guess at the bytes."""


def read_log_records(log_path: str | os.PathLike) -> dict[str, dict]:
    """Read-only scan of a warm log: ``{key: record}`` with the last
    live record winning and tombstones applied.

    Used to merge *from* a warm cache without instantiating a
    :class:`WarmStore` on it — a merge source must never be written to,
    and opening a store creates lock/sidecar files.  Garbage lines and
    a torn tail are skipped, exactly like the indexing scan.
    """
    records: dict[str, dict] = {}
    try:
        with open(log_path, "rb") as handle:
            handle.readline()  # header
            for line in handle:
                if not line.endswith(b"\n"):
                    break
                try:
                    record = json.loads(line)
                    key = record["key"]
                    float(record["ts"])
                except (json.JSONDecodeError, UnicodeDecodeError,
                        KeyError, TypeError, ValueError):
                    continue
                if record.get("entry") is None:
                    records.pop(key, None)
                else:
                    records[key] = record
    except OSError:
        return {}
    return records


def _header_line(generation: int) -> bytes:
    header = {"generation": generation, "warmlog": WARM_LOG_VERSION}
    return (json.dumps(header, sort_keys=True) + "\n").encode()


def _record_line(key: str, ts: float, entry: Any) -> bytes:
    record = {"entry": entry, "key": key, "ts": ts}
    return (json.dumps(record, sort_keys=True) + "\n").encode()


class WarmStore:
    """Append-log entry store with an in-memory ``{key: (offset,
    length, ts)}`` index kept in sync with the log by stat-and-rescan.
    """

    def __init__(self, directory: str | os.PathLike):
        self.directory = Path(directory)
        self.log_path = self.directory / LOG_NAME
        self.index_path = self.directory / INDEX_NAME
        self.lock_path = self.directory / LOCK_NAME
        self.generation = 1
        #: Records whose line failed to parse during a scan (torn heals,
        #: garbage appends) — dropped at the next compaction.
        self.garbage_records = 0
        self.compactions = 0
        self.index: dict[str, tuple[int, int, float]] = {}
        self._scanned_bytes = 0
        self._inode: int | None = None
        self._open_or_create()

    # -- locking -----------------------------------------------------------

    @contextlib.contextmanager
    def _locked(self) -> Iterator[None]:
        fd = os.open(self.lock_path, os.O_RDWR | os.O_CREAT, 0o644)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX)
            yield
        finally:
            fcntl.flock(fd, fcntl.LOCK_UN)
            os.close(fd)

    # -- startup / resync --------------------------------------------------

    def _open_or_create(self) -> None:
        if not self.log_path.exists():
            with self._locked():
                if not self.log_path.exists():  # lost the create race
                    self._publish_log(_header_line(self.generation), {})
        self._reload()

    def _reload(self) -> None:
        """Learn the log from scratch: header, then the persisted index
        if it covers this generation, then whatever tail it missed."""
        self.index = {}
        self._scanned_bytes = 0
        with open(self.log_path, "rb") as handle:
            self._inode = os.fstat(handle.fileno()).st_ino
            header_raw = handle.readline()
        if not header_raw.endswith(b"\n"):
            # A writer is mid-create; treat as empty until it lands.
            self.generation = 1
            return
        try:
            header = json.loads(header_raw)
            self.generation = int(header["generation"])
            if header.get("warmlog") != WARM_LOG_VERSION:
                raise ValueError(header.get("warmlog"))
        except (json.JSONDecodeError, UnicodeDecodeError, KeyError,
                TypeError, ValueError) as exc:
            raise WarmStoreError(
                f"unreadable warm log header in {self.log_path}"
            ) from exc
        self._scanned_bytes = len(header_raw)
        self._load_sidecar()
        self._scan_tail()

    def _load_sidecar(self) -> None:
        """Adopt the persisted index if it matches this generation.
        Any defect just means a longer scan — never an error."""
        try:
            snapshot = json.loads(self.index_path.read_text())
            if (snapshot.get("warmlog") != WARM_LOG_VERSION
                    or snapshot.get("generation") != self.generation):
                return
            entries = snapshot["entries"]
            indexed_bytes = int(snapshot["indexed_bytes"])
            index = {
                str(key): (int(off), int(length), float(ts))
                for key, (off, length, ts) in entries.items()
            }
        except (OSError, json.JSONDecodeError, UnicodeDecodeError,
                KeyError, TypeError, ValueError):
            return
        if indexed_bytes < self._scanned_bytes:
            return
        try:
            if indexed_bytes > self.log_path.stat().st_size:
                return  # sidecar from a longer, since-replaced log
        except OSError:
            return
        self.index = index
        self._scanned_bytes = indexed_bytes

    def _scan_tail(self) -> int:
        """Index records appended past :attr:`_scanned_bytes`; returns
        how many record lines were examined."""
        examined = 0
        try:
            with open(self.log_path, "rb") as handle:
                handle.seek(self._scanned_bytes)
                data = handle.read()
        except OSError:
            return examined
        offset = self._scanned_bytes
        for line in data.splitlines(keepends=True):
            if not line.endswith(b"\n"):
                break  # torn tail — a writer will heal it; rescan later
            examined += 1
            try:
                record = json.loads(line)
                key = record["key"]
                ts = float(record["ts"])
                entry = record["entry"]
            except (json.JSONDecodeError, UnicodeDecodeError, KeyError,
                    TypeError, ValueError):
                self.garbage_records += 1
                offset += len(line)
                self._scanned_bytes = offset
                continue
            if entry is None:
                self.index.pop(key, None)
            else:
                # Last record wins within the log; first-writer-wins is
                # enforced at append time, so duplicates only appear
                # when both writers raced past the same resync — and
                # identical content-addressed keys carry equal results.
                self.index[key] = (offset, len(line), ts)
            offset += len(line)
            self._scanned_bytes = offset
        return examined

    def resync(self) -> None:
        """Cheap freshness check: one ``stat``.  Reload on a published
        compaction (new inode / shrunk log), scan on appended bytes."""
        try:
            meta = self.log_path.stat()
        except OSError:
            return
        if meta.st_ino != self._inode or meta.st_size < self._scanned_bytes:
            self._reload()
        elif meta.st_size > self._scanned_bytes:
            self._scan_tail()

    # -- reads -------------------------------------------------------------

    def __contains__(self, key: str) -> bool:
        return key in self.index

    def __len__(self) -> int:
        return len(self.index)

    def lookup_raw(self, key: str) -> bytes | None:
        """The raw record line of ``key`` (current index view), or
        ``None``.  Retries once through a reload when a concurrent
        compaction moves the log out from under the offset."""
        for attempt in range(2):
            slot = self.index.get(key)
            if slot is None:
                return None
            offset, length, _ = slot
            try:
                with open(self.log_path, "rb") as handle:
                    if os.fstat(handle.fileno()).st_ino != self._inode:
                        raise OSError("log replaced mid-read")
                    handle.seek(offset)
                    data = handle.read(length)
            except OSError:
                data = b""
            if len(data) == length and data.endswith(b"\n"):
                return data
            if attempt == 0:
                self._reload()
        return None

    def timestamps(self) -> dict[str, float]:
        """``{key: last-write ts}`` for every live record — the whole
        stats/eviction/delta view, no file-per-entry scan anywhere."""
        return {key: slot[2] for key, slot in self.index.items()}

    def log_bytes(self) -> int:
        try:
            return self.log_path.stat().st_size
        except OSError:
            return 0

    # -- writes ------------------------------------------------------------

    def _heal_tail(self, fd: int) -> None:
        """Terminate a torn final line (a writer died mid-append) so the
        log is line-aligned again; the partial record becomes one
        garbage line that the next compaction drops."""
        size = os.fstat(fd).st_size
        if size <= 0:
            return
        with open(self.log_path, "rb") as reader:
            reader.seek(size - 1)
            if reader.read(1) != b"\n":
                os.write(fd, b"\n")

    def append(self, key: str, entry: Any,
               ts: float | None = None) -> bool:
        """Publish ``entry`` under ``key`` unless the key is already
        live (first writer wins); returns whether a record was written.
        """
        written = self.append_many([(key, entry, ts)])
        return written == 1

    def append_many(self, items: list[tuple],
                    overwrite: bool = False) -> int:
        """Append several ``(key, entry)`` or ``(key, entry, ts)``
        items under one lock; returns how many were written (keys
        already live are skipped unless ``overwrite``).  A ``None`` or
        missing ``ts`` stamps the write time; federation passes the
        origin node's timestamp through so delta watermarks and age
        stats survive the hop."""
        if not items:
            return 0
        now = time.time()
        written = 0
        with self._locked():
            self.resync()
            fd = os.open(self.log_path, os.O_WRONLY | os.O_APPEND)
            try:
                self._heal_tail(fd)
                offset = os.fstat(fd).st_size
                for item in items:
                    key, entry = item[0], item[1]
                    ts = item[2] if len(item) > 2 else None
                    if ts is None:
                        ts = now
                    if not overwrite and entry is not None \
                            and key in self.index:
                        continue
                    line = _record_line(key, ts, entry)
                    os.write(fd, line)
                    if entry is None:
                        self.index.pop(key, None)
                    else:
                        self.index[key] = (offset, len(line), ts)
                    offset += len(line)
                    written += 1
                self._scanned_bytes = offset
            finally:
                os.close(fd)
        return written

    def clear(self) -> int:
        """Drop every record by publishing a fresh empty log (bumped
        generation); returns how many live records were removed."""
        with self._locked():
            self.resync()
            removed = len(self.index)
            self._publish_log(_header_line(self.generation + 1), {},
                              generation=self.generation + 1)
            self.garbage_records = 0
        return removed

    def remove(self, key: str) -> None:
        """Tombstone ``key`` (quarantine/eviction of one record)."""
        if key in self.index:
            self.append_many([(key, None)], overwrite=True)

    # -- maintenance -------------------------------------------------------

    def _publish_log(self, payload: bytes,
                     index: dict[str, tuple[int, int, float]],
                     generation: int | None = None) -> None:
        """Atomically replace the log (and refresh the sidecar) —
        caller holds the lock."""
        fd, temp_path = tempfile.mkstemp(dir=self.directory,
                                         prefix=".tmp-", suffix=".log")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(payload)
            os.replace(temp_path, self.log_path)
        except OSError:
            with contextlib.suppress(OSError):
                os.unlink(temp_path)
            raise
        if generation is not None:
            self.generation = generation
        self.index = index
        self._scanned_bytes = len(payload)
        try:
            self._inode = self.log_path.stat().st_ino
        except OSError:
            self._inode = None
        self.write_sidecar()

    def write_sidecar(self) -> None:
        """Persist the index snapshot (atomic, best-effort): the next
        open scans only bytes appended after ``indexed_bytes``."""
        snapshot = {
            "entries": {
                key: [offset, length, ts]
                for key, (offset, length, ts) in sorted(self.index.items())
            },
            "generation": self.generation,
            "indexed_bytes": self._scanned_bytes,
            "warmlog": WARM_LOG_VERSION,
        }
        fd, temp_path = tempfile.mkstemp(dir=self.directory,
                                         prefix=".tmp-", suffix=".idx")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(snapshot, handle, sort_keys=True)
            os.replace(temp_path, self.index_path)
        except OSError:
            with contextlib.suppress(OSError):
                os.unlink(temp_path)

    def compact(self, evict_age_s: float | None = None,
                now: float | None = None,
                classify: Any = None) -> dict[str, int]:
        """Rewrite the log keeping the last live record per key.

        Tombstones, garbage lines and superseded records vanish; with
        ``evict_age_s``, records older than that are dropped too (the
        eviction path).  ``classify`` — ``entry -> verdict`` returning
        ``"ok"``/``"stale"``/``"corrupt"`` — lets the owner drop dead
        entries during the rewrite; corrupt ones are *kept* for the
        read path to quarantine with full ceremony.  The rewritten log
        is published atomically under the writer lock; if the
        ``cache.torn_write`` fault (name ``"compact"``) fires, the
        compactor "crashes" before publish and the old log survives
        untouched.
        """
        if now is None:
            # Gates eviction only — record bytes never embed it, and
            # deterministic callers (tests, replays) pass ``now``.
            now = time.time()  # lint: allow[time-call]
        summary = {"kept": 0, "dropped": 0, "evicted": 0, "aborted": 0}
        with self._locked():
            self.resync()
            try:
                log_data = self.log_path.read_bytes()
            except OSError:
                summary["aborted"] = 1
                return summary
            new_generation = self.generation + 1
            payload = bytearray(_header_line(new_generation))
            new_index: dict[str, tuple[int, int, float]] = {}
            for key in sorted(self.index):
                offset, length, ts = self.index[key]
                raw = log_data[offset:offset + length]
                if len(raw) != length or not raw.endswith(b"\n"):
                    summary["dropped"] += 1
                    continue
                if evict_age_s is not None and now - ts > evict_age_s:
                    summary["evicted"] += 1
                    continue
                if classify is not None:
                    try:
                        record = json.loads(raw)
                        verdict = classify(record.get("entry"))
                    except (json.JSONDecodeError, UnicodeDecodeError):
                        verdict = "corrupt"
                    if verdict == "stale":
                        summary["dropped"] += 1
                        continue
                new_index[key] = (len(payload), len(raw), ts)
                payload += raw
                summary["kept"] += 1
            if fault_point("cache.torn_write", name="compact",
                           key="", kind="cache") is not None:
                # Simulated mid-compaction crash: nothing published, the
                # pre-compaction log still holds every verified entry.
                summary["aborted"] = 1
                _LOG.warning("compaction of %s aborted by fault plan",
                             self.log_path)
                return summary
            try:
                self._publish_log(bytes(payload), new_index,
                                  generation=new_generation)
            except OSError:
                summary["aborted"] = 1
                return summary
            self.garbage_records = 0
        self.compactions += 1
        get_registry().counter(
            "repro_cache_compactions_total",
            "Warm-log compactions published.",
        ).inc()
        if summary["evicted"]:
            get_registry().counter(
                "repro_cache_evicted_total",
                "Cache entries dropped by age-bounded eviction.",
            ).inc(summary["evicted"])
        _LOG.info("compacted %s: kept=%d dropped=%d evicted=%d",
                  self.log_path, summary["kept"], summary["dropped"],
                  summary["evicted"])
        return summary
