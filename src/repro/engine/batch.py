"""Batch analysis over a directory of program pairs.

The batch front door of the engine: discover ``NAME_old.imp`` /
``NAME_new.imp`` pairs in a directory, turn them into jobs, run them on
the parallel executor (optionally as portfolios), and report the results
as an aligned table or JSON.  This is the entry point CI gates build on
(see ``examples/batch_regression_gate.py``).
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.config import AnalysisConfig, EngineConfig
from repro.engine.cache import ResultCache
from repro.engine.executor import ExecutorStats, ParallelExecutor
from repro.engine.jobs import AnalysisJob, JobResult
from repro.engine.portfolio import (
    DEFAULT_LADDER,
    PortfolioResult,
    attach_refutations,
    portfolio_jobs,
    record_portfolio_metrics,
    select_result,
)
from repro.errors import AnalysisError
from repro.obs import get_logger, span
from repro.utils.rationals import format_threshold as _fmt_threshold

_LOG = get_logger("engine.batch")

OLD_SUFFIX = "_old.imp"
NEW_SUFFIX = "_new.imp"


@dataclass(frozen=True)
class ProgramPair:
    """One discovered pair of program versions."""

    name: str
    old_path: Path
    new_path: Path

    def sources(self) -> tuple[str, str]:
        """The pair's source texts, read once per pair object — shard
        assignment, job building, refutation and partial-flush
        reconstruction all ask for them."""
        cached = getattr(self, "_sources", None)
        if cached is None:
            cached = (self.old_path.read_text(), self.new_path.read_text())
            object.__setattr__(self, "_sources", cached)
        return cached


def discover_pairs(directory: str | Path) -> list[ProgramPair]:
    """Find ``*_old.imp`` / ``*_new.imp`` pairs, sorted by name.

    Unpaired files raise: a batch silently skipping half a pair is a
    CI gate that silently passes.
    """
    root = Path(directory)
    if not root.is_dir():
        raise AnalysisError(f"not a directory: {root}")
    olds = {p.name[:-len(OLD_SUFFIX)]: p
            for p in sorted(root.glob(f"*{OLD_SUFFIX}"))}
    news = {p.name[:-len(NEW_SUFFIX)]: p
            for p in sorted(root.glob(f"*{NEW_SUFFIX}"))}
    unpaired = sorted(set(olds) ^ set(news))
    if unpaired:
        raise AnalysisError(
            f"unpaired program versions in {root}: {', '.join(unpaired)}"
        )
    if not olds:
        raise AnalysisError(f"no *{OLD_SUFFIX} / *{NEW_SUFFIX} pairs in {root}")
    return [
        ProgramPair(name, olds[name], news[name]) for name in sorted(olds)
    ]


def pair_shard_index(pair: ProgramPair, config: AnalysisConfig,
                     shards: int) -> int:
    """The shard a pair belongs to, out of ``shards``.

    The partition is by *job hash*: the content-addressed key of the
    pair's base ``diff`` job (sources + config; the display name is not
    keyed, so renaming a file never moves its pair).  Any process that
    agrees on the directory contents and base config computes the same
    assignment — no coordination, no shared state — which is what lets
    independent machines each run a disjoint slice of one batch.
    """
    old_source, new_source = pair.sources()
    job = AnalysisJob(kind="diff", old_source=old_source,
                      new_source=new_source, config=config, name=pair.name)
    return int(job.key[:16], 16) % shards


def shard_pairs(pairs: list[ProgramPair], config: AnalysisConfig,
                shard: tuple[int, int]) -> list[ProgramPair]:
    """The subset of ``pairs`` assigned to shard ``(k, n)``.

    Deterministic and disjoint: over all ``k`` in ``range(n)`` the
    subsets partition ``pairs`` exactly, so ``n`` shard runs merged
    back together cover every pair exactly once.
    """
    index, count = shard
    if count < 1 or not 0 <= index < count:
        raise AnalysisError(
            f"shard must be (k, n) with 0 <= k < n, got {shard!r}"
        )
    return [pair for pair in pairs
            if pair_shard_index(pair, config, count) == index]


@dataclass
class BatchReport:
    """Everything a batch run produced.

    ``shard`` records the ``"k/n"`` slice this run covered (``None``
    for an unsharded run); ``pair_names`` the pairs this run was
    responsible for and ``pairs_total`` how many the whole directory
    holds, so a merge can prove the shards partition the batch.
    ``partial`` marks a run that was interrupted (SIGTERM / Ctrl-C)
    and flushed only its completed pairs — still mergeable, but
    clearly not a full answer.
    """

    directory: str
    results: list[JobResult]
    portfolios: list[PortfolioResult] = field(default_factory=list)
    stats: ExecutorStats = field(default_factory=ExecutorStats)
    seconds: float = 0.0
    shard: str | None = None
    partial: bool = False
    pairs_total: int = 0
    pair_names: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True iff no job failed to *execute* (analysis-level ✗ is a
        completed, sound answer and does not fail the batch).

        In portfolio mode a losing rung's timeout/error is absorbed as
        long as the pair still produced an answer — escalating past a
        failed cheap rung is the ladder's purpose.  A pair only fails
        the batch when it has no winner *and* at least one rung failed
        to execute (an all-rungs-completed ✗ is a sound answer).
        """
        if self.portfolios:
            return all(
                p.succeeded or not any(r.failed for r in p.rungs)
                for p in self.portfolios
            )
        return not any(result.failed for result in self.results)

    def thresholds(self) -> dict[str, float | None]:
        """Pair name → computed threshold (``None`` for ✗/failures)."""
        if self.portfolios:
            return {p.name: p.threshold for p in self.portfolios}
        return {r.name: r.threshold for r in self.results}

    def to_dict(self) -> dict:
        data = {
            "directory": self.directory,
            "seconds": round(self.seconds, 3),
            "shard": self.shard,
            "partial": self.partial,
            "pairs_total": self.pairs_total,
            "pair_names": list(self.pair_names),
            "stats": self.stats.as_dict(),
            "results": [result.to_dict() for result in self.results],
        }
        if self.portfolios:
            data["portfolios"] = [
                {
                    "name": p.name,
                    "mode": p.mode,
                    "threshold": p.threshold,
                    "chosen_rung": p.chosen_rung_index(),
                    "tight": p.tight,
                    "rungs": [r.to_dict() for r in p.rungs],
                    "refutation": (p.refutation.to_dict()
                                   if p.refutation is not None else None),
                }
                for p in self.portfolios
            ]
        return data


def _pair_job(pair: ProgramPair, config: AnalysisConfig) -> AnalysisJob:
    old_source, new_source = pair.sources()
    return AnalysisJob(
        kind="diff",
        old_source=old_source,
        new_source=new_source,
        config=config,
        name=pair.name,
    )


def _with_name(result: JobResult, name: str) -> JobResult:
    """A copy of ``result`` carrying ``name`` (recorded results may
    carry another pair's display name when two pairs share content)."""
    if result.name == name:
        return result
    clone = JobResult.from_dict(result.to_dict())
    clone.name = name
    return clone


def _run_portfolio_pairs(executor: ParallelExecutor,
                         pairs: list[ProgramPair],
                         config: AnalysisConfig,
                         engine: EngineConfig,
                         ladder: tuple[tuple[int, int, str], ...],
                         ) -> tuple[list[JobResult], list[PortfolioResult]]:
    per_pair = [
        portfolio_jobs(*pair.sources(), pair.name, base=config, ladder=ladder)
        for pair in pairs
    ]
    if engine.portfolio_mode == "best":
        # Every rung of every pair runs anyway in best mode, so submit
        # them all to one pool and select winners per pair — cross-pair
        # parallelism instead of one pair at a time.
        flat = executor.run([job for jobs in per_pair for job in jobs])
        rungs_per_pair, offset = [], 0
        for jobs in per_pair:
            rungs_per_pair.append(flat[offset:offset + len(jobs)])
            offset += len(jobs)
    else:
        # "first" overlaps the escalation ladders of many pairs on the
        # shared pool; per-pair selection stays ladder-order
        # deterministic (chosen rungs identical to --jobs 1).
        rungs_per_pair = executor.run_escalating_many(
            per_pair, max_inflight=engine.max_inflight_pairs
        )
    portfolios = [
        PortfolioResult(
            name=pair.name,
            mode=engine.portfolio_mode,
            chosen=select_result(rungs, engine.portfolio_mode),
            rungs=rungs,
        )
        for pair, rungs in zip(pairs, rungs_per_pair)
    ]
    if engine.refute:
        attach_refutations(
            portfolios,
            {pair.name: pair.sources() for pair in pairs},
            executor, base=config, margin=engine.refute_margin,
        )
    record_portfolio_metrics(portfolios)
    return [rung for p in portfolios for rung in p.rungs], portfolios


def _completed_results(pairs: list[ProgramPair],
                       config: AnalysisConfig,
                       engine: EngineConfig,
                       ladder: tuple[tuple[int, int, str], ...],
                       recorded: dict[str, JobResult],
                       ) -> tuple[list[JobResult], list[PortfolioResult]]:
    """Rebuild the report rows of every pair that fully resolved before
    an interrupt, from the executor's as-it-happened result record.

    A portfolio pair counts as resolved only when every rung has a
    recorded verdict (in ``first`` mode a decided pair records
    ``cancelled`` markers for its abandoned rungs immediately, so
    decided pairs qualify); a half-walked ladder is dropped rather than
    reported with a premature selection.  The refutation stage is
    omitted from partial reports — tightness probes of an interrupted
    run are not worth reporting half of.
    """
    if engine.portfolio:
        portfolios = []
        for pair in pairs:
            jobs = portfolio_jobs(*pair.sources(), pair.name,
                                  base=config, ladder=ladder)
            rungs = [recorded.get(job.key) for job in jobs]
            if any(rung is None for rung in rungs):
                continue
            rungs = [_with_name(rung, job.name)
                     for rung, job in zip(rungs, jobs)]
            portfolios.append(
                PortfolioResult(
                    name=pair.name,
                    mode=engine.portfolio_mode,
                    chosen=select_result(rungs, engine.portfolio_mode),
                    rungs=rungs,
                )
            )
        return [rung for p in portfolios for rung in p.rungs], portfolios
    results = []
    for pair in pairs:
        job = _pair_job(pair, config)
        result = recorded.get(job.key)
        if result is not None:
            results.append(_with_name(result, job.name))
    return results, []


def run_batch(directory: str | Path,
              config: AnalysisConfig | None = None,
              engine: EngineConfig | None = None,
              ladder: tuple[tuple[int, int, str], ...] = DEFAULT_LADDER,
              shard: tuple[int, int] | None = None,
              ) -> BatchReport:
    """Analyze every pair in ``directory`` through the engine.

    ``shard=(k, n)`` (or ``engine.shard``) restricts the run to the
    pairs the deterministic job-hash partition assigns to slice ``k``
    of ``n`` — see :func:`shard_pairs`.  A ``KeyboardInterrupt`` (which
    the CLI also raises on SIGTERM) does not lose completed work: the
    report comes back with every fully-resolved pair and
    ``partial=True`` instead of propagating with nothing.
    """
    engine = engine or EngineConfig()
    config = config or AnalysisConfig()
    if shard is None:
        shard = engine.shard
    cache = (ResultCache(engine.cache_dir, backend=engine.cache_backend)
             if engine.cache_dir else None)
    all_pairs = discover_pairs(directory)
    pairs = (shard_pairs(all_pairs, config, shard) if shard is not None
             else all_pairs)
    start = time.perf_counter()
    recorded: dict[str, JobResult] = {}
    results: list[JobResult] = []
    portfolios: list[PortfolioResult] = []
    partial = False

    _LOG.info("batch over %s: %d pair(s)%s, jobs=%d%s", directory,
              len(pairs),
              "" if shard is None else f" (shard {shard[0]}/{shard[1]})",
              engine.jobs,
              ", portfolio" if engine.portfolio else "")
    # One executor — and therefore one long-lived worker pool — for the
    # whole batch, however many pairs it has.
    with ParallelExecutor(
        jobs=engine.jobs, timeout=engine.timeout, cache=cache,
        max_retries=engine.max_retries, hang_timeout=engine.hang_timeout,
        quarantine_after=engine.quarantine_after,
    ) as executor:
        executor.on_result = (
            lambda result: recorded.__setitem__(result.job_key, result)
        )
        try:
            with span("batch", cat="engine",
                      args={"directory": str(directory),
                            "pairs": len(pairs)}):
                if engine.portfolio:
                    results, portfolios = _run_portfolio_pairs(
                        executor, pairs, config, engine, ladder
                    )
                else:
                    results = executor.run(
                        [_pair_job(pair, config) for pair in pairs]
                    )
        except KeyboardInterrupt:
            partial = True
            results, portfolios = _completed_results(
                pairs, config, engine, ladder, recorded
            )
            _LOG.warning("batch interrupted: flushing %d resolved pair(s)",
                         len(portfolios) if engine.portfolio else len(results))
        stats = executor.stats
    _LOG.info("batch done in %.2fs: %d completed, %d error(s), "
              "%d timeout(s), %d cache hit(s)",
              time.perf_counter() - start, stats.completed, stats.errors,
              stats.timeouts, stats.cache_hits)

    return BatchReport(
        directory=str(directory),
        results=results,
        portfolios=portfolios,
        stats=stats,
        seconds=time.perf_counter() - start,
        shard=None if shard is None else f"{shard[0]}/{shard[1]}",
        partial=partial,
        pairs_total=len(all_pairs),
        pair_names=[pair.name for pair in pairs],
    )


def format_batch_table(report: BatchReport) -> str:
    """Aligned text rendering of a batch report."""
    header = f"{'Pair':<24} {'Threshold':>10} {'Status':>9} {'Time(s)':>8}  Detail"
    title = f"Batch analysis of {report.directory}"
    if report.shard is not None:
        title += f" [shard {report.shard}]"
    if report.partial:
        title += " [PARTIAL — interrupted]"
    lines = [title, header, "-" * len(header)]
    if report.portfolios:
        for portfolio in report.portfolios:
            chosen = portfolio.chosen
            failed = sum(1 for r in portfolio.rungs if r.failed)
            if chosen:
                status = "ok"
            elif failed:
                # Not the paper's sound ✗: some rungs never completed.
                status = "failed"
            else:
                status = "✗"
            rung = (
                chosen.name.split("[", 1)[1].rstrip("]")
                if chosen else f"{len(portfolio.rungs)} rungs"
                + (f", {failed} failed" if failed else "")
            )
            cached = " (cached)" if chosen and chosen.cached else ""
            if portfolio.tight is True:
                cached += " [tight]"
            elif portfolio.tight is False:
                cached += " [slack?]"  # tightness probe could not certify
            lines.append(
                f"{portfolio.name:<24} {_fmt_threshold(portfolio.threshold):>10} "
                f"{status:>9} {portfolio.seconds:>8.2f}  {rung}{cached}"
            )
    else:
        for result in report.results:
            detail = result.message.splitlines()[0] if result.message else ""
            if result.cached:
                detail = (detail + " (cached)").strip()
            lines.append(
                f"{result.name:<24} {_fmt_threshold(result.threshold):>10} "
                f"{result.status:>9} {result.seconds:>8.2f}  {detail[:60]}"
            )
    stats = report.stats
    lines.append("-" * len(header))
    lines.append(
        f"{stats.submitted} job(s): {stats.completed} completed, "
        f"{stats.errors} error(s), {stats.timeouts} timeout(s), "
        f"{stats.cancelled} cancelled; cache hits {stats.cache_hits}; "
        f"{report.seconds:.2f}s wall"
    )
    if report.partial:
        reported = (len(report.portfolios) if report.portfolios
                    else len(report.results))
        lines.append(
            f"PARTIAL: interrupted with {reported}/{len(report.pair_names)} "
            "pair(s) resolved; rerun (same cache) to finish, or merge as a "
            "partial shard"
        )
    return "\n".join(lines)


def batch_to_json(report: BatchReport) -> str:
    """JSON rendering (for gates diffing against a baseline)."""
    return json.dumps(report.to_dict(), indent=2, sort_keys=True)
