"""Batch analysis over a directory of program pairs.

The batch front door of the engine: discover ``NAME_old.imp`` /
``NAME_new.imp`` pairs in a directory, turn them into jobs, run them on
the parallel executor (optionally as portfolios), and report the results
as an aligned table or JSON.  This is the entry point CI gates build on
(see ``examples/batch_regression_gate.py``).
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.config import AnalysisConfig, EngineConfig
from repro.engine.cache import ResultCache
from repro.engine.executor import ExecutorStats, ParallelExecutor
from repro.engine.jobs import AnalysisJob, JobResult
from repro.engine.portfolio import (
    DEFAULT_LADDER,
    PortfolioResult,
    attach_refutations,
    portfolio_jobs,
    select_result,
)
from repro.errors import AnalysisError
from repro.utils.rationals import format_threshold as _fmt_threshold

OLD_SUFFIX = "_old.imp"
NEW_SUFFIX = "_new.imp"


@dataclass(frozen=True)
class ProgramPair:
    """One discovered pair of program versions."""

    name: str
    old_path: Path
    new_path: Path

    def sources(self) -> tuple[str, str]:
        return self.old_path.read_text(), self.new_path.read_text()


def discover_pairs(directory: str | Path) -> list[ProgramPair]:
    """Find ``*_old.imp`` / ``*_new.imp`` pairs, sorted by name.

    Unpaired files raise: a batch silently skipping half a pair is a
    CI gate that silently passes.
    """
    root = Path(directory)
    if not root.is_dir():
        raise AnalysisError(f"not a directory: {root}")
    olds = {p.name[:-len(OLD_SUFFIX)]: p for p in root.glob(f"*{OLD_SUFFIX}")}
    news = {p.name[:-len(NEW_SUFFIX)]: p for p in root.glob(f"*{NEW_SUFFIX}")}
    unpaired = sorted(set(olds) ^ set(news))
    if unpaired:
        raise AnalysisError(
            f"unpaired program versions in {root}: {', '.join(unpaired)}"
        )
    if not olds:
        raise AnalysisError(f"no *{OLD_SUFFIX} / *{NEW_SUFFIX} pairs in {root}")
    return [
        ProgramPair(name, olds[name], news[name]) for name in sorted(olds)
    ]


@dataclass
class BatchReport:
    """Everything a batch run produced."""

    directory: str
    results: list[JobResult]
    portfolios: list[PortfolioResult] = field(default_factory=list)
    stats: ExecutorStats = field(default_factory=ExecutorStats)
    seconds: float = 0.0

    @property
    def ok(self) -> bool:
        """True iff no job failed to *execute* (analysis-level ✗ is a
        completed, sound answer and does not fail the batch).

        In portfolio mode a losing rung's timeout/error is absorbed as
        long as the pair still produced an answer — escalating past a
        failed cheap rung is the ladder's purpose.  A pair only fails
        the batch when it has no winner *and* at least one rung failed
        to execute (an all-rungs-completed ✗ is a sound answer).
        """
        if self.portfolios:
            return all(
                p.succeeded or not any(r.failed for r in p.rungs)
                for p in self.portfolios
            )
        return not any(result.failed for result in self.results)

    def thresholds(self) -> dict[str, float | None]:
        """Pair name → computed threshold (``None`` for ✗/failures)."""
        if self.portfolios:
            return {p.name: p.threshold for p in self.portfolios}
        return {r.name: r.threshold for r in self.results}

    def to_dict(self) -> dict:
        data = {
            "directory": self.directory,
            "seconds": round(self.seconds, 3),
            "stats": self.stats.as_dict(),
            "results": [result.to_dict() for result in self.results],
        }
        if self.portfolios:
            data["portfolios"] = [
                {
                    "name": p.name,
                    "mode": p.mode,
                    "threshold": p.threshold,
                    "chosen_rung": p.chosen_rung_index(),
                    "tight": p.tight,
                    "rungs": [r.to_dict() for r in p.rungs],
                    "refutation": (p.refutation.to_dict()
                                   if p.refutation is not None else None),
                }
                for p in self.portfolios
            ]
        return data


def run_batch(directory: str | Path,
              config: AnalysisConfig | None = None,
              engine: EngineConfig | None = None,
              ladder: tuple[tuple[int, int, str], ...] = DEFAULT_LADDER,
              ) -> BatchReport:
    """Analyze every pair in ``directory`` through the engine."""
    engine = engine or EngineConfig()
    config = config or AnalysisConfig()
    cache = ResultCache(engine.cache_dir) if engine.cache_dir else None
    pairs = discover_pairs(directory)
    start = time.perf_counter()

    # One executor — and therefore one long-lived worker pool — for the
    # whole batch, however many pairs it has.
    with ParallelExecutor(
        jobs=engine.jobs, timeout=engine.timeout, cache=cache
    ) as executor:
        if engine.portfolio:
            per_pair = [
                portfolio_jobs(*pair.sources(), pair.name,
                               base=config, ladder=ladder)
                for pair in pairs
            ]
            if engine.portfolio_mode == "best":
                # Every rung of every pair runs anyway in best mode, so
                # submit them all to one pool and select winners per
                # pair — cross-pair parallelism instead of one pair at
                # a time.
                flat = executor.run(
                    [job for jobs in per_pair for job in jobs]
                )
                rungs_per_pair, offset = [], 0
                for jobs in per_pair:
                    rungs_per_pair.append(flat[offset:offset + len(jobs)])
                    offset += len(jobs)
            else:
                # "first" overlaps the escalation ladders of many pairs
                # on the shared pool; per-pair selection stays
                # ladder-order deterministic (chosen rungs identical to
                # --jobs 1).
                rungs_per_pair = executor.run_escalating_many(
                    per_pair, max_inflight=engine.max_inflight_pairs
                )
            portfolios = [
                PortfolioResult(
                    name=pair.name,
                    mode=engine.portfolio_mode,
                    chosen=select_result(rungs, engine.portfolio_mode),
                    rungs=rungs,
                )
                for pair, rungs in zip(pairs, rungs_per_pair)
            ]
            if engine.refute:
                attach_refutations(
                    portfolios,
                    {pair.name: pair.sources() for pair in pairs},
                    executor, base=config, margin=engine.refute_margin,
                )
            results = [rung for p in portfolios for rung in p.rungs]
            return BatchReport(
                directory=str(directory),
                results=results,
                portfolios=portfolios,
                stats=executor.stats,
                seconds=time.perf_counter() - start,
            )

        jobs = []
        for pair in pairs:
            old_source, new_source = pair.sources()
            jobs.append(
                AnalysisJob(
                    kind="diff",
                    old_source=old_source,
                    new_source=new_source,
                    config=config,
                    name=pair.name,
                )
            )
        results = executor.run(jobs)
        return BatchReport(
            directory=str(directory),
            results=results,
            stats=executor.stats,
            seconds=time.perf_counter() - start,
        )


def format_batch_table(report: BatchReport) -> str:
    """Aligned text rendering of a batch report."""
    header = f"{'Pair':<24} {'Threshold':>10} {'Status':>9} {'Time(s)':>8}  Detail"
    lines = [f"Batch analysis of {report.directory}", header,
             "-" * len(header)]
    if report.portfolios:
        for portfolio in report.portfolios:
            chosen = portfolio.chosen
            failed = sum(1 for r in portfolio.rungs if r.failed)
            if chosen:
                status = "ok"
            elif failed:
                # Not the paper's sound ✗: some rungs never completed.
                status = "failed"
            else:
                status = "✗"
            rung = (
                chosen.name.split("[", 1)[1].rstrip("]")
                if chosen else f"{len(portfolio.rungs)} rungs"
                + (f", {failed} failed" if failed else "")
            )
            cached = " (cached)" if chosen and chosen.cached else ""
            if portfolio.tight is True:
                cached += " [tight]"
            elif portfolio.tight is False:
                cached += " [slack?]"  # tightness probe could not certify
            lines.append(
                f"{portfolio.name:<24} {_fmt_threshold(portfolio.threshold):>10} "
                f"{status:>9} {portfolio.seconds:>8.2f}  {rung}{cached}"
            )
    else:
        for result in report.results:
            detail = result.message.splitlines()[0] if result.message else ""
            if result.cached:
                detail = (detail + " (cached)").strip()
            lines.append(
                f"{result.name:<24} {_fmt_threshold(result.threshold):>10} "
                f"{result.status:>9} {result.seconds:>8.2f}  {detail[:60]}"
            )
    stats = report.stats
    lines.append("-" * len(header))
    lines.append(
        f"{stats.submitted} job(s): {stats.completed} completed, "
        f"{stats.errors} error(s), {stats.timeouts} timeout(s), "
        f"{stats.cancelled} cancelled; cache hits {stats.cache_hits}; "
        f"{report.seconds:.2f}s wall"
    )
    return "\n".join(lines)


def batch_to_json(report: BatchReport) -> str:
    """JSON rendering (for gates diffing against a baseline)."""
    return json.dumps(report.to_dict(), indent=2, sort_keys=True)
