"""Parallel job execution on a ``concurrent.futures`` process pool.

The executor is the engine's scheduling layer:

- ``jobs == 1`` runs inline (no pool, no serialization round-trip), so
  single-worker runs stay byte-identical to the historical sequential
  path and keep full in-process result objects;
- ``jobs > 1`` fans jobs out to a :class:`ProcessPoolExecutor`.  Workers
  receive jobs as plain dicts and return :class:`JobResult` dicts, so
  nothing analyzer-internal crosses process boundaries;
- per-job timeouts are enforced *inside* the worker with an interval
  timer (``SIGALRM``), which turns an overrunning job into a
  structured ``"timeout"`` result without killing the worker slot.
  The alarm fires between Python bytecodes, so multi-phase jobs are
  cut off promptly; one long uninterruptible C-level solve (scipy's
  HiGHS) is only cut off when it returns to Python — the pure-Python
  ``exact`` backend is interruptible throughout;
- every exception is captured as a structured ``"error"`` result with
  the exception type, message and traceback — a poisoned program pair
  cannot take down a batch run.

Results always come back in submission order regardless of completion
order, which keeps ``--jobs N`` output deterministic.
"""

from __future__ import annotations

import signal
import time
import traceback as traceback_module
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

from repro.engine.cache import ResultCache
from repro.engine.jobs import AnalysisJob, JobResult, run_job
from repro.errors import AnalysisError


class JobTimeoutError(Exception):
    """Raised inside a worker when the per-job budget expires."""


@dataclass
class ExecutorStats:
    """Counters of one executor run."""

    submitted: int = 0
    completed: int = 0
    errors: int = 0
    timeouts: int = 0
    cancelled: int = 0
    cache_hits: int = 0
    seconds: float = 0.0

    def as_dict(self) -> dict[str, float]:
        return dict(vars(self))


def execute_job(job: AnalysisJob, timeout: float | None = None) -> JobResult:
    """Run one job with structured failure capture and an optional
    wall-clock budget (seconds).  Never raises."""
    start = time.perf_counter()
    try:
        if timeout is not None:
            return _run_with_alarm(job, timeout)
        return run_job(job)
    except JobTimeoutError:
        return JobResult(
            job_key=job.key,
            name=job.name,
            kind=job.kind,
            status="timeout",
            error_type="JobTimeoutError",
            message=f"job exceeded its {timeout:g}s budget",
            seconds=time.perf_counter() - start,
        )
    except Exception as error:  # noqa: BLE001 — structured capture is the point
        return JobResult(
            job_key=job.key,
            name=job.name,
            kind=job.kind,
            status="error",
            error_type=type(error).__name__,
            message=str(error),
            traceback=traceback_module.format_exc(limit=20),
            seconds=time.perf_counter() - start,
        )


def _run_with_alarm(job: AnalysisJob, timeout: float) -> JobResult:
    """Run with a ``SIGALRM`` interval timer when the platform allows.

    Pool workers always qualify (the job runs in the worker's main
    thread).  Inline execution from a non-main thread of a host
    application, or a platform without ``SIGALRM``, cannot install the
    timer — there the job runs without an enforced budget rather than
    failing before the analysis starts."""

    armed = True

    def _on_alarm(signum, frame):
        if armed:
            raise JobTimeoutError()
        # A late alarm that fired while the completed result was being
        # returned: swallow it instead of discarding the result.

    try:
        previous = signal.signal(signal.SIGALRM, _on_alarm)
    except (AttributeError, ValueError):
        return run_job(job)
    signal.setitimer(signal.ITIMER_REAL, timeout)
    try:
        result = run_job(job)
        armed = False
        return result
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        # Drain an alarm that was generated before the disarm but not
        # yet delivered — restoring a default disposition while it is
        # pending would kill the process.
        signal.signal(signal.SIGALRM, signal.SIG_IGN)
        signal.signal(signal.SIGALRM, previous)


def _pool_worker(payload: dict, timeout: float | None) -> dict:
    """Top-level worker entry point (must be importable for the pool)."""
    job = AnalysisJob.from_dict(payload)
    return execute_job(job, timeout).to_dict()


class ParallelExecutor:
    """Runs batches of :class:`AnalysisJob` with caching and timeouts."""

    def __init__(self, jobs: int = 1, timeout: float | None = None,
                 cache: ResultCache | None = None):
        if jobs < 1:
            raise AnalysisError("jobs must be at least 1")
        self.jobs = jobs
        self.timeout = timeout
        self.cache = cache
        self.stats = ExecutorStats()

    # -- cache plumbing ----------------------------------------------------

    def _lookup(self, job: AnalysisJob) -> JobResult | None:
        """Probe the cache without touching executor stats — hits are
        only accounted when actually *used* (an escalation may cancel a
        pre-fetched rung, which must not count as a cache hit)."""
        if self.cache is None:
            return None
        hit = self.cache.get(job.key)
        if hit is not None:
            hit.name = job.name  # display name may differ across runs
        return hit

    def _use_hit(self, hit: JobResult) -> JobResult:
        self.stats.cache_hits += 1
        return self._account(hit)

    def _store(self, job: AnalysisJob, result: JobResult) -> None:
        if self.cache is not None:
            self.cache.put(job, result)

    def _account(self, result: JobResult) -> JobResult:
        if result.status == "error":
            self.stats.errors += 1
        elif result.status == "timeout":
            self.stats.timeouts += 1
        elif result.status == "cancelled":
            self.stats.cancelled += 1
        else:
            self.stats.completed += 1
        return result

    # -- execution ---------------------------------------------------------

    def run(self, jobs: list[AnalysisJob]) -> list[JobResult]:
        """Execute all jobs; results come back in submission order."""
        start = time.perf_counter()
        self.stats.submitted += len(jobs)
        results: list[JobResult | None] = [None] * len(jobs)
        pending: list[tuple[int, AnalysisJob]] = []
        for index, job in enumerate(jobs):
            hit = self._lookup(job)
            if hit is not None:
                results[index] = self._use_hit(hit)
            else:
                pending.append((index, job))

        if pending:
            if self.jobs == 1:
                for index, job in pending:
                    results[index] = self._finish(job, execute_job(
                        job, self.timeout
                    ))
            else:
                self._run_pool(pending, results)
        self.stats.seconds += time.perf_counter() - start
        return [result for result in results if result is not None]

    def _finish(self, job: AnalysisJob, result: JobResult) -> JobResult:
        self._store(job, result)
        return self._account(result)

    def _run_pool(self, pending: list[tuple[int, AnalysisJob]],
                  results: list[JobResult | None]) -> None:
        workers = min(self.jobs, len(pending))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(_pool_worker, job.to_dict(), self.timeout):
                    (index, job)
                for index, job in pending
            }
            for future in futures:
                index, job = futures[future]
                results[index] = self._finish(job, self._collect(job, future))

    def _collect(self, job: AnalysisJob, future) -> JobResult:
        try:
            return JobResult.from_dict(future.result())
        except Exception as error:  # noqa: BLE001 — e.g. BrokenProcessPool
            return JobResult(
                job_key=job.key,
                name=job.name,
                kind=job.kind,
                status="error",
                error_type=type(error).__name__,
                message=f"worker failed: {error}",
            )

    def run_escalating(self, jobs: list[AnalysisJob]) -> list[JobResult]:
        """Run an ordered ladder, stopping at the first success.

        All rungs may execute concurrently, but the *selection* walks
        the ladder in order: once rung ``i`` succeeds, every rung after
        it is cancelled — pending ones via ``Future.cancel``, already
        running ones by terminating their worker processes — and their
        outcomes never influence the caller, so the chosen rung is
        deterministic regardless of completion order.
        """
        if not jobs:
            return []
        start = time.perf_counter()
        self.stats.submitted += len(jobs)
        results: list[JobResult] = []

        if self.jobs == 1:
            stopped = False
            for job in jobs:
                if stopped:
                    results.append(self._account(self._cancelled(job)))
                    continue
                hit = self._lookup(job)
                if hit is not None:
                    result = self._use_hit(hit)
                else:
                    result = self._finish(job, execute_job(job, self.timeout))
                results.append(result)
                if result.succeeded:
                    stopped = True
            self.stats.seconds += time.perf_counter() - start
            return results

        pool = ProcessPoolExecutor(max_workers=min(self.jobs, len(jobs)))
        abandoned_running = False
        try:
            futures = []
            cached_success = False
            for job in jobs:
                # Pre-fetch cache hits so only genuine work is
                # submitted; accounting happens at use time below, so
                # stats and statuses match the jobs == 1 path exactly.
                # Rungs past the first cached *success* can never be
                # chosen (a lower rung wins first either way), so they
                # are not worth a worker.
                if cached_success:
                    futures.append((job, None, None))
                    continue
                hit = self._lookup(job)
                if hit is not None:
                    futures.append((job, None, hit))
                    cached_success = hit.succeeded
                else:
                    futures.append(
                        (job, pool.submit(_pool_worker, job.to_dict(),
                                          self.timeout), None)
                    )
            stopped = False
            for job, future, ready in futures:
                if stopped:
                    # Loser rung: drop it whether it started or not —
                    # waiting for a running rung would make "first"
                    # mode as slow as its slowest rung, and replaying a
                    # pre-fetched cache hit would diverge from the
                    # jobs == 1 statuses.  cancel() is False for both
                    # running AND already-finished futures; only a rung
                    # still running warrants terminating workers.
                    if (future is not None and not future.cancel()
                            and not future.done()):
                        abandoned_running = True
                    result = self._account(self._cancelled(job))
                elif ready is not None:
                    result = self._use_hit(ready)
                elif future is None:
                    # Never submitted (sat past a cached success).
                    result = self._account(self._cancelled(job))
                else:
                    result = self._finish(job, self._collect(job, future))
                results.append(result)
                if result.succeeded:
                    stopped = True
        finally:
            pool.shutdown(wait=not abandoned_running, cancel_futures=True)
            if abandoned_running:
                # Abandoned rungs still hold worker processes; reclaim
                # them now instead of draining multi-minute LP solves
                # nobody will read.  (Private attribute, but stable
                # across CPython 3.8+; a failure here only delays
                # reclamation to interpreter exit.)
                try:
                    for process in list(pool._processes.values()):
                        process.terminate()
                except Exception:  # noqa: BLE001 — best-effort cleanup
                    pass
        self.stats.seconds += time.perf_counter() - start
        return results

    def _cancelled(self, job: AnalysisJob) -> JobResult:
        return JobResult(
            job_key=job.key,
            name=job.name,
            kind=job.kind,
            status="cancelled",
            message="a lower portfolio rung already succeeded",
        )
