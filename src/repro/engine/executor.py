"""Parallel job execution on a long-lived worker pool.

The executor is the engine's scheduling layer:

- ``jobs == 1`` runs inline (no pool, no serialization round-trip), so
  single-worker runs stay byte-identical to the historical sequential
  path and keep full in-process result objects;
- ``jobs > 1`` fans jobs out to a long-lived
  :class:`~repro.engine.scheduler.WorkerPool` — one pool per executor,
  created on first parallel use and reused across every ``run`` /
  ``run_escalating_many`` call until :meth:`ParallelExecutor.close`.
  Workers receive jobs as plain dicts and return :class:`JobResult`
  dicts, so nothing analyzer-internal crosses process boundaries;
- per-job timeouts are enforced *inside* the worker with an interval
  timer (``SIGALRM``), which turns an overrunning job into a
  structured ``"timeout"`` result without killing the worker slot.
  The alarm fires between Python bytecodes, so multi-phase jobs are
  cut off promptly; one long uninterruptible C-level solve (scipy's
  HiGHS) is only cut off when it returns to Python — the pure-Python
  ``exact`` backend is interruptible throughout;
- every exception is captured as a structured ``"error"`` result with
  the exception type, message and traceback — a poisoned program pair
  cannot take down a batch run.

Results always come back in submission order regardless of completion
order, which keeps ``--jobs N`` output deterministic.
"""

from __future__ import annotations

import signal
import time
import traceback as traceback_module
from dataclasses import dataclass

from repro.engine.cache import ResultCache
from repro.engine.jobs import AnalysisJob, JobResult, run_job
from repro.engine.scheduler import EscalationScheduler, Task, WorkerPool
from repro.errors import AnalysisError
from repro.faults import InjectedFaultError, active_plan, fault_point
from repro.obs import get_logger, get_registry

_LOG = get_logger("engine.executor")

#: Error types the retry layer treats as *transient* infrastructure
#: failures: the job itself is fine, the machine hiccupped.  Everything
#: else (an ``AnalysisError``, a parse failure, an arithmetic bug) is
#: deterministic — rerunning a content-addressed job can only reproduce
#: it, so those fail fast with the original structured failure.
RETRYABLE_ERROR_TYPES = frozenset({
    "BrokenWorker",       # worker process died mid-job (crash, OOM kill)
    "WorkerHung",         # heartbeat hang detector killed the worker
    "InjectedFaultError",  # repro.faults job.error site
    "OSError",
    "ConnectionError",
    "ConnectionResetError",
    "BrokenPipeError",
    "EOFError",
    "InterruptedError",
    "TimeoutError",
})

#: Bounded exponential backoff before retry attempt ``n`` (1-based):
#: ``min(CAP, BASE * 2**(n-1))`` seconds, slept in whatever process
#: re-executes the job — a worker slot, never the scheduling loop.
RETRY_BACKOFF_BASE = 0.05
RETRY_BACKOFF_CAP = 2.0


def retry_backoff(attempt: int) -> float:
    """Seconds to sleep before retry ``attempt`` (0 for the first run)."""
    if attempt < 1:
        return 0.0
    return min(RETRY_BACKOFF_CAP, RETRY_BACKOFF_BASE * 2 ** (attempt - 1))


def is_retryable(result: JobResult) -> bool:
    """Whether ``result`` is a transient failure worth re-executing.

    Timeouts count: on a loaded machine a budget expiry says more about
    the machine than the job (and an honestly slow job just times out
    again, bounded by ``max_retries``).  Deterministic analysis errors
    never count — see :data:`RETRYABLE_ERROR_TYPES`.
    """
    if result.status == "timeout":
        return True
    return (result.status == "error"
            and result.error_type in RETRYABLE_ERROR_TYPES)


class JobTimeoutError(Exception):
    """Raised inside a worker when the per-job budget expires."""


@dataclass
class ExecutorStats:
    """Counters of one executor run."""

    submitted: int = 0
    completed: int = 0
    errors: int = 0
    timeouts: int = 0
    cancelled: int = 0
    cache_hits: int = 0
    retries: int = 0
    seconds: float = 0.0

    def as_dict(self) -> dict[str, float]:
        return dict(vars(self))


def _job_fault(site: str, job: AnalysisJob, attempt: int):
    """Consult the fault plan for a job-scoped site (cheap fast path:
    one lookup when no plan is active, before any key hashing)."""
    if active_plan() is None:
        return None
    return fault_point(site, name=job.name, key=job.key, kind=job.kind,
                       attempt=attempt)


def execute_job(job: AnalysisJob, timeout: float | None = None,
                attempt: int = 0) -> JobResult:
    """Run one job with structured failure capture and an optional
    wall-clock budget (seconds).  Never raises.

    ``attempt`` is the retry ordinal: retries sleep their exponential
    backoff here — before the budget timer arms, so backoff never eats
    the job's own budget — and fault-injection sites see the attempt
    number (a rule with ``max_attempts=1`` faults the first run and
    lets the retry through).
    """
    if attempt:
        time.sleep(retry_backoff(attempt))
    delay = _job_fault("job.delay", job, attempt)
    if delay is not None:
        time.sleep(delay.seconds)
    start = time.perf_counter()
    try:
        error = _job_fault("job.error", job, attempt)
        if error is not None:
            raise InjectedFaultError(
                "injected transient fault"
                + (f": {error.note}" if error.note else "")
            )
        if timeout is not None:
            result = _run_with_alarm(job, timeout)
        else:
            result = run_job(job)
    except JobTimeoutError:
        result = JobResult(
            job_key=job.key,
            name=job.name,
            kind=job.kind,
            status="timeout",
            error_type="JobTimeoutError",
            message=f"job exceeded its {timeout:g}s budget",
            seconds=time.perf_counter() - start,
        )
        _LOG.warning("job %s (%s) timed out after %.3fs",
                     job.name or job.key[:12], job.kind, result.seconds)
    except Exception as error:  # noqa: BLE001 — structured capture is the point
        result = JobResult(
            job_key=job.key,
            name=job.name,
            kind=job.kind,
            status="error",
            error_type=type(error).__name__,
            message=str(error),
            traceback=traceback_module.format_exc(limit=20),
            seconds=time.perf_counter() - start,
        )
        _LOG.warning("job %s (%s) failed: %s: %s",
                     job.name or job.key[:12], job.kind,
                     result.error_type, result.message)
    registry = get_registry()
    registry.counter(
        "repro_jobs_total", "Analysis jobs executed, by kind and status.",
        ("kind", "status"),
    ).inc(kind=job.kind, status=result.status)
    registry.histogram(
        "repro_job_seconds", "Wall-clock seconds per executed job.",
        ("kind",),
    ).observe(result.seconds, kind=job.kind)
    return result


def _run_with_alarm(job: AnalysisJob, timeout: float) -> JobResult:
    """Run with a ``SIGALRM`` interval timer when the platform allows.

    Pool workers always qualify (the job runs in the worker's main
    thread).  Inline execution from a non-main thread of a host
    application, or a platform without ``SIGALRM``, cannot install the
    timer — there the job runs without an enforced budget rather than
    failing before the analysis starts."""

    armed = True

    def _on_alarm(signum, frame):
        if armed:
            raise JobTimeoutError()
        # A late alarm that fired while the completed result was being
        # returned: swallow it instead of discarding the result.

    try:
        previous = signal.signal(signal.SIGALRM, _on_alarm)
    except (AttributeError, ValueError):
        return run_job(job)
    signal.setitimer(signal.ITIMER_REAL, timeout)
    try:
        result = run_job(job)
        armed = False
        return result
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        # Drain an alarm that was generated before the disarm but not
        # yet delivered — restoring a default disposition while it is
        # pending would kill the process.
        signal.signal(signal.SIGALRM, signal.SIG_IGN)
        signal.signal(signal.SIGALRM, previous)


class ParallelExecutor:
    """Runs batches of :class:`AnalysisJob` with caching and timeouts."""

    def __init__(self, jobs: int = 1, timeout: float | None = None,
                 cache: ResultCache | None = None,
                 mp_context: str | None = None,
                 max_retries: int = 2,
                 hang_timeout: float | None = None,
                 quarantine_after: int = 3):
        if jobs < 1:
            raise AnalysisError("jobs must be at least 1")
        if max_retries < 0:
            raise AnalysisError("max_retries must be >= 0")
        self.jobs = jobs
        self.timeout = timeout
        self.cache = cache
        #: Extra executions granted to a transiently failed job (see
        #: :func:`is_retryable`); 0 disables the retry layer.
        self.max_retries = max_retries
        #: Passed to the pool: kill workers silent for this long
        #: (``None`` = hang detection off) and park a slot after this
        #: many consecutive crashes.
        self.hang_timeout = hang_timeout
        self.quarantine_after = quarantine_after
        #: Multiprocessing start method for pool workers (``None`` =
        #: platform default).  Workers scrub inherited descriptors on
        #: startup either way; the knob exists for host applications
        #: where forking a threaded process is itself unsafe.
        self.mp_context = mp_context
        self.stats = ExecutorStats()
        self._pool: WorkerPool | None = None
        #: How many worker pools this executor ever built — one for a
        #: whole batch, however many pairs it has.
        self.pools_created = 0
        #: Optional observer invoked with every accounted
        #: :class:`JobResult` (completions, cache hits, cancellations,
        #: failures) as it happens.  Batch runners use it to keep a
        #: partial-progress record, so an interrupted run can still
        #: flush everything that finished.
        self.on_result = None

    # -- pool lifecycle ----------------------------------------------------

    @property
    def pool(self) -> WorkerPool | None:
        """The long-lived worker pool (``None`` until first parallel use)."""
        return self._pool

    def _ensure_pool(self) -> WorkerPool:
        if self._pool is None or self._pool.closed:
            self._pool = WorkerPool(
                self.jobs, context=self.mp_context,
                hang_timeout=self.hang_timeout,
                quarantine_after=self.quarantine_after,
            )
            self.pools_created += 1
        return self._pool

    def pool_health(self) -> dict:
        """Supervision snapshot of the worker pool (``/healthz``); a
        zeroed schema-stable dict before the pool exists (or inline)."""
        if self._pool is not None and not self._pool.closed:
            return self._pool.health()
        return WorkerPool.empty_health(0 if self.jobs == 1 else self.jobs)

    def close(self) -> None:
        """Shut down the worker pool (idempotent; the executor stays
        usable — the next parallel run builds a fresh pool)."""
        if self._pool is not None:
            self._pool.shutdown()

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- cache plumbing ----------------------------------------------------

    def _lookup(self, job: AnalysisJob) -> JobResult | None:
        """Probe the cache without touching executor stats — hits are
        only accounted when actually *used* (an escalation may cancel a
        pre-fetched rung, which must not count as a cache hit)."""
        if self.cache is None:
            return None
        hit = self.cache.get(job.key)
        if hit is not None:
            hit.name = job.name  # display name may differ across runs
        return hit

    def _use_hit(self, hit: JobResult) -> JobResult:
        self.stats.cache_hits += 1
        return self._account(hit)

    def _store(self, job: AnalysisJob, result: JobResult) -> None:
        if self.cache is not None:
            self.cache.put(job, result)

    def _account(self, result: JobResult) -> JobResult:
        if result.metrics:
            # The worker's metrics-snapshot delta rides home on the
            # result; fold it into this process's registry exactly once.
            get_registry().merge(result.metrics)
            result.metrics = {}
        if result.status == "error":
            self.stats.errors += 1
        elif result.status == "timeout":
            self.stats.timeouts += 1
        elif result.status == "cancelled":
            self.stats.cancelled += 1
        else:
            self.stats.completed += 1
        if self.on_result is not None:
            self.on_result(result)
        return result

    # -- retry classification ----------------------------------------------

    def _should_retry(self, result: JobResult, attempt: int) -> bool:
        """Whether a finished attempt should be swallowed and re-run."""
        return (self.max_retries > 0
                and attempt < self.max_retries
                and is_retryable(result))

    def _note_retry(self, job: AnalysisJob, result: JobResult,
                    attempt: int) -> None:
        """Account one swallowed transient failure.

        The discarded attempt never reaches :meth:`_finish` /
        :meth:`_account`, so error counters and ``on_result`` records
        stay identical to a fault-free run — only ``stats.retries``
        (volatile, like timings) says anything happened.  Its worker
        metrics delta is still folded in: the attempt really executed.
        """
        if result.metrics:
            get_registry().merge(result.metrics)
            result.metrics = {}
        self.stats.retries += 1
        get_registry().counter(
            "repro_job_retries_total",
            "Transient job failures swallowed by the retry layer.",
            ("error",),
        ).inc(error=result.error_type or result.status)
        _LOG.warning(
            "retrying job %s (%s) after transient %s (attempt %d/%d): %s",
            job.name or job.key[:12], job.kind,
            result.error_type or result.status,
            attempt + 1, self.max_retries, result.message,
        )

    def _execute_with_retry(self, job: AnalysisJob) -> JobResult:
        """Inline (``jobs == 1``) execution with the retry loop."""
        attempt = 0
        while True:
            result = execute_job(job, self.timeout, attempt=attempt)
            if not self._should_retry(result, attempt):
                result.attempts = attempt
                return result
            self._note_retry(job, result, attempt)
            attempt += 1

    # -- execution ---------------------------------------------------------

    def run(self, jobs: list[AnalysisJob]) -> list[JobResult]:
        """Execute all jobs; results come back in submission order."""
        start = time.perf_counter()
        self.stats.submitted += len(jobs)
        results: list[JobResult | None] = [None] * len(jobs)
        pending: list[tuple[int, AnalysisJob]] = []
        for index, job in enumerate(jobs):
            hit = self._lookup(job)
            if hit is not None:
                results[index] = self._use_hit(hit)
            else:
                pending.append((index, job))

        if pending:
            if self.jobs == 1:
                for index, job in pending:
                    results[index] = self._finish(
                        job, self._execute_with_retry(job)
                    )
            else:
                self._run_pool(pending, results)
        self.stats.seconds += time.perf_counter() - start
        return [result for result in results if result is not None]

    def _finish(self, job: AnalysisJob, result: JobResult) -> JobResult:
        self._store(job, result)
        return self._account(result)

    def _run_pool(self, pending: list[tuple[int, AnalysisJob]],
                  results: list[JobResult | None]) -> None:
        pool = self._ensure_pool()
        waiting = {}
        for order, (index, job) in enumerate(pending):
            task = pool.submit(job, timeout=self.timeout, priority=(0, order))
            waiting[task.id] = (index, job)
        while waiting:
            completed = pool.wait()
            if not completed:
                # Nothing running and nothing dispatchable: the pool
                # stalled (it should be impossible with size >= 1, but
                # an infinite wait would be worse than a hard error).
                _LOG.error("worker pool stalled with %d task(s) "
                           "outstanding", len(waiting))
                for index, job in waiting.values():
                    results[index] = self._finish(job, JobResult(
                        job_key=job.key, name=job.name, kind=job.kind,
                        status="error", error_type="SchedulerError",
                        message="worker pool stalled with tasks outstanding",
                    ))
                return
            for task in completed:
                entry = waiting.pop(task.id, None)
                if entry is None:
                    continue
                index, job = entry
                if self._should_retry(task.result, task.attempt):
                    self._note_retry(job, task.result, task.attempt)
                    retry = pool.submit(job, timeout=self.timeout,
                                        priority=task.priority,
                                        attempt=task.attempt + 1)
                    waiting[retry.id] = (index, job)
                    continue
                task.result.attempts = task.attempt
                results[index] = self._finish(job, task.result)

    # -- asynchronous single-job submission --------------------------------

    def submit_job(self, job: AnalysisJob, on_done,
                   priority: tuple = ()) -> "_Submission | None":
        """Submit one job for callback-style completion (the serving
        front-end's entry point).

        A cache hit completes synchronously: ``on_done(result)`` is
        called before this method returns and the return value is
        ``None``.  Otherwise the job goes to the long-lived worker pool
        and the returned handle completes through :meth:`poll` —
        ``on_done`` then fires on the polling thread with the finished
        (cached + accounted) result.  The handle can be withdrawn with
        :meth:`cancel_task`; it stays valid across executor-internal
        retries (the wrapper tracks whichever pool task is live).
        """
        self.stats.submitted += 1
        hit = self._lookup(job)
        if hit is not None:
            on_done(self._use_hit(hit))
            return None
        pool = self._ensure_pool()
        submission = _Submission()

        def _complete(task, job=job, on_done=on_done):
            if self._should_retry(task.result, task.attempt):
                self._note_retry(job, task.result, task.attempt)
                submission.task = pool.submit(
                    job, timeout=self.timeout, priority=task.priority,
                    on_done=_complete, attempt=task.attempt + 1,
                )
                return
            task.result.attempts = task.attempt
            on_done(self._finish(job, task.result))

        submission.task = pool.submit(job, timeout=self.timeout,
                                      priority=priority, on_done=_complete)
        return submission

    def poll(self, timeout: float | None = None) -> int:
        """Drive the pool: wait up to ``timeout`` seconds for
        completions (firing their :meth:`submit_job` callbacks) and
        return how many tasks finished."""
        if self._pool is None or self._pool.closed:
            return 0
        return len(self._pool.wait(timeout))

    def cancel_task(self, handle) -> bool:
        """Withdraw a :meth:`submit_job` handle (or a bare pool task).

        ``True`` means the job will never produce a result (its
        ``on_done`` never fires) and a cancellation was accounted.
        ``False`` means it completed in the race — its result was
        drained and ``on_done`` has already fired (possibly after a
        drained retry ran to completion).
        """
        if self._pool is None:
            return False
        task = getattr(handle, "task", handle)
        while not self._pool.cancel(task):
            live = getattr(handle, "task", handle)
            if live is task:
                # Genuinely completed: the drain fired ``on_done``.
                return False
            # The drained completion was a transient failure and
            # ``_complete`` resubmitted a retry mid-cancel — chase the
            # now-live task so the withdrawn job really stops.
            task = live
        self.stats.cancelled += 1
        return True

    def run_escalating(self, jobs: list[AnalysisJob]) -> list[JobResult]:
        """Run one ordered ladder, stopping at the first success.

        All rungs may execute concurrently, but the *selection* walks
        the ladder in order: once rung ``i`` succeeds, every rung after
        it is cancelled (a rung still running gets exactly its worker
        terminated) and their outcomes never influence the caller, so
        the chosen rung is deterministic regardless of completion
        order.  Completed loser rungs are still harvested into the
        result cache before being dropped from selection.
        """
        return self.run_escalating_many([jobs])[0]

    def run_escalating_many(self, ladders: list[list[AnalysisJob]],
                            max_inflight: int | None = None,
                            ) -> list[list[JobResult]]:
        """Run many escalation ladders, overlapping them on one pool.

        The cross-pair scheduler of ``first``-mode portfolio batches:
        up to ``max_inflight`` ladders (``None`` = auto from the pool
        size) are in flight at once on the executor's long-lived
        worker pool, so pair B's cheap first rung runs while pair A's
        expensive late rung is still solving.  Per-ladder selection is
        the same as :meth:`run_escalating` — chosen rungs are
        byte-identical to a ``jobs == 1`` run.
        """
        start = time.perf_counter()
        if self.jobs == 1:
            results = [self._escalate_inline(jobs) for jobs in ladders]
        else:
            scheduler = EscalationScheduler(
                self, self._ensure_pool(), max_inflight
            )
            results = scheduler.run(ladders)
        self.stats.seconds += time.perf_counter() - start
        return results

    def _escalate_inline(self, jobs: list[AnalysisJob]) -> list[JobResult]:
        """The sequential ladder walk (``jobs == 1``), the behavioral
        reference for the scheduler's parallel selection."""
        if not jobs:
            return []
        self.stats.submitted += len(jobs)
        results: list[JobResult] = []
        stopped = False
        for job in jobs:
            if stopped:
                results.append(self._account(self._cancelled(job)))
                continue
            hit = self._lookup(job)
            if hit is not None:
                result = self._use_hit(hit)
            else:
                result = self._finish(job, self._execute_with_retry(job))
            results.append(result)
            if result.succeeded:
                stopped = True
        return results

    def _cancelled(self, job: AnalysisJob) -> JobResult:
        return JobResult(
            job_key=job.key,
            name=job.name,
            kind=job.kind,
            status="cancelled",
            message="a lower portfolio rung already succeeded",
        )


class _Submission:
    """Handle returned by :meth:`ParallelExecutor.submit_job`.

    ``task`` is whichever pool :class:`Task` currently carries the job;
    executor-internal retries swap it, so cancellation always targets
    the live attempt instead of a dead one.  Opaque to callers.
    """

    __slots__ = ("task",)

    def __init__(self, task: Task | None = None):
        self.task = task
