"""Parallel job execution on a long-lived worker pool.

The executor is the engine's scheduling layer:

- ``jobs == 1`` runs inline (no pool, no serialization round-trip), so
  single-worker runs stay byte-identical to the historical sequential
  path and keep full in-process result objects;
- ``jobs > 1`` fans jobs out to a long-lived
  :class:`~repro.engine.scheduler.WorkerPool` — one pool per executor,
  created on first parallel use and reused across every ``run`` /
  ``run_escalating_many`` call until :meth:`ParallelExecutor.close`.
  Workers receive jobs as plain dicts and return :class:`JobResult`
  dicts, so nothing analyzer-internal crosses process boundaries;
- per-job timeouts are enforced *inside* the worker with an interval
  timer (``SIGALRM``), which turns an overrunning job into a
  structured ``"timeout"`` result without killing the worker slot.
  The alarm fires between Python bytecodes, so multi-phase jobs are
  cut off promptly; one long uninterruptible C-level solve (scipy's
  HiGHS) is only cut off when it returns to Python — the pure-Python
  ``exact`` backend is interruptible throughout;
- every exception is captured as a structured ``"error"`` result with
  the exception type, message and traceback — a poisoned program pair
  cannot take down a batch run.

Results always come back in submission order regardless of completion
order, which keeps ``--jobs N`` output deterministic.
"""

from __future__ import annotations

import signal
import time
import traceback as traceback_module
from dataclasses import dataclass

from repro.engine.cache import ResultCache
from repro.engine.jobs import AnalysisJob, JobResult, run_job
from repro.engine.scheduler import EscalationScheduler, Task, WorkerPool
from repro.errors import AnalysisError
from repro.obs import get_logger, get_registry

_LOG = get_logger("engine.executor")


class JobTimeoutError(Exception):
    """Raised inside a worker when the per-job budget expires."""


@dataclass
class ExecutorStats:
    """Counters of one executor run."""

    submitted: int = 0
    completed: int = 0
    errors: int = 0
    timeouts: int = 0
    cancelled: int = 0
    cache_hits: int = 0
    seconds: float = 0.0

    def as_dict(self) -> dict[str, float]:
        return dict(vars(self))


def execute_job(job: AnalysisJob, timeout: float | None = None) -> JobResult:
    """Run one job with structured failure capture and an optional
    wall-clock budget (seconds).  Never raises."""
    start = time.perf_counter()
    try:
        if timeout is not None:
            result = _run_with_alarm(job, timeout)
        else:
            result = run_job(job)
    except JobTimeoutError:
        result = JobResult(
            job_key=job.key,
            name=job.name,
            kind=job.kind,
            status="timeout",
            error_type="JobTimeoutError",
            message=f"job exceeded its {timeout:g}s budget",
            seconds=time.perf_counter() - start,
        )
        _LOG.warning("job %s (%s) timed out after %.3fs",
                     job.name or job.key[:12], job.kind, result.seconds)
    except Exception as error:  # noqa: BLE001 — structured capture is the point
        result = JobResult(
            job_key=job.key,
            name=job.name,
            kind=job.kind,
            status="error",
            error_type=type(error).__name__,
            message=str(error),
            traceback=traceback_module.format_exc(limit=20),
            seconds=time.perf_counter() - start,
        )
        _LOG.warning("job %s (%s) failed: %s: %s",
                     job.name or job.key[:12], job.kind,
                     result.error_type, result.message)
    registry = get_registry()
    registry.counter(
        "repro_jobs_total", "Analysis jobs executed, by kind and status.",
        ("kind", "status"),
    ).inc(kind=job.kind, status=result.status)
    registry.histogram(
        "repro_job_seconds", "Wall-clock seconds per executed job.",
        ("kind",),
    ).observe(result.seconds, kind=job.kind)
    return result


def _run_with_alarm(job: AnalysisJob, timeout: float) -> JobResult:
    """Run with a ``SIGALRM`` interval timer when the platform allows.

    Pool workers always qualify (the job runs in the worker's main
    thread).  Inline execution from a non-main thread of a host
    application, or a platform without ``SIGALRM``, cannot install the
    timer — there the job runs without an enforced budget rather than
    failing before the analysis starts."""

    armed = True

    def _on_alarm(signum, frame):
        if armed:
            raise JobTimeoutError()
        # A late alarm that fired while the completed result was being
        # returned: swallow it instead of discarding the result.

    try:
        previous = signal.signal(signal.SIGALRM, _on_alarm)
    except (AttributeError, ValueError):
        return run_job(job)
    signal.setitimer(signal.ITIMER_REAL, timeout)
    try:
        result = run_job(job)
        armed = False
        return result
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        # Drain an alarm that was generated before the disarm but not
        # yet delivered — restoring a default disposition while it is
        # pending would kill the process.
        signal.signal(signal.SIGALRM, signal.SIG_IGN)
        signal.signal(signal.SIGALRM, previous)


class ParallelExecutor:
    """Runs batches of :class:`AnalysisJob` with caching and timeouts."""

    def __init__(self, jobs: int = 1, timeout: float | None = None,
                 cache: ResultCache | None = None,
                 mp_context: str | None = None):
        if jobs < 1:
            raise AnalysisError("jobs must be at least 1")
        self.jobs = jobs
        self.timeout = timeout
        self.cache = cache
        #: Multiprocessing start method for pool workers (``None`` =
        #: platform default).  Workers scrub inherited descriptors on
        #: startup either way; the knob exists for host applications
        #: where forking a threaded process is itself unsafe.
        self.mp_context = mp_context
        self.stats = ExecutorStats()
        self._pool: WorkerPool | None = None
        #: How many worker pools this executor ever built — one for a
        #: whole batch, however many pairs it has.
        self.pools_created = 0
        #: Optional observer invoked with every accounted
        #: :class:`JobResult` (completions, cache hits, cancellations,
        #: failures) as it happens.  Batch runners use it to keep a
        #: partial-progress record, so an interrupted run can still
        #: flush everything that finished.
        self.on_result = None

    # -- pool lifecycle ----------------------------------------------------

    @property
    def pool(self) -> WorkerPool | None:
        """The long-lived worker pool (``None`` until first parallel use)."""
        return self._pool

    def _ensure_pool(self) -> WorkerPool:
        if self._pool is None or self._pool.closed:
            self._pool = WorkerPool(self.jobs, context=self.mp_context)
            self.pools_created += 1
        return self._pool

    def close(self) -> None:
        """Shut down the worker pool (idempotent; the executor stays
        usable — the next parallel run builds a fresh pool)."""
        if self._pool is not None:
            self._pool.shutdown()

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- cache plumbing ----------------------------------------------------

    def _lookup(self, job: AnalysisJob) -> JobResult | None:
        """Probe the cache without touching executor stats — hits are
        only accounted when actually *used* (an escalation may cancel a
        pre-fetched rung, which must not count as a cache hit)."""
        if self.cache is None:
            return None
        hit = self.cache.get(job.key)
        if hit is not None:
            hit.name = job.name  # display name may differ across runs
        return hit

    def _use_hit(self, hit: JobResult) -> JobResult:
        self.stats.cache_hits += 1
        return self._account(hit)

    def _store(self, job: AnalysisJob, result: JobResult) -> None:
        if self.cache is not None:
            self.cache.put(job, result)

    def _account(self, result: JobResult) -> JobResult:
        if result.metrics:
            # The worker's metrics-snapshot delta rides home on the
            # result; fold it into this process's registry exactly once.
            get_registry().merge(result.metrics)
            result.metrics = {}
        if result.status == "error":
            self.stats.errors += 1
        elif result.status == "timeout":
            self.stats.timeouts += 1
        elif result.status == "cancelled":
            self.stats.cancelled += 1
        else:
            self.stats.completed += 1
        if self.on_result is not None:
            self.on_result(result)
        return result

    # -- execution ---------------------------------------------------------

    def run(self, jobs: list[AnalysisJob]) -> list[JobResult]:
        """Execute all jobs; results come back in submission order."""
        start = time.perf_counter()
        self.stats.submitted += len(jobs)
        results: list[JobResult | None] = [None] * len(jobs)
        pending: list[tuple[int, AnalysisJob]] = []
        for index, job in enumerate(jobs):
            hit = self._lookup(job)
            if hit is not None:
                results[index] = self._use_hit(hit)
            else:
                pending.append((index, job))

        if pending:
            if self.jobs == 1:
                for index, job in pending:
                    results[index] = self._finish(job, execute_job(
                        job, self.timeout
                    ))
            else:
                self._run_pool(pending, results)
        self.stats.seconds += time.perf_counter() - start
        return [result for result in results if result is not None]

    def _finish(self, job: AnalysisJob, result: JobResult) -> JobResult:
        self._store(job, result)
        return self._account(result)

    def _run_pool(self, pending: list[tuple[int, AnalysisJob]],
                  results: list[JobResult | None]) -> None:
        pool = self._ensure_pool()
        waiting = {}
        for order, (index, job) in enumerate(pending):
            task = pool.submit(job, timeout=self.timeout, priority=(0, order))
            waiting[task.id] = (index, job)
        while waiting:
            completed = pool.wait()
            if not completed:
                # Nothing running and nothing dispatchable: the pool
                # stalled (it should be impossible with size >= 1, but
                # an infinite wait would be worse than a hard error).
                _LOG.error("worker pool stalled with %d task(s) "
                           "outstanding", len(waiting))
                for index, job in waiting.values():
                    results[index] = self._finish(job, JobResult(
                        job_key=job.key, name=job.name, kind=job.kind,
                        status="error", error_type="SchedulerError",
                        message="worker pool stalled with tasks outstanding",
                    ))
                return
            for task in completed:
                entry = waiting.pop(task.id, None)
                if entry is not None:
                    index, job = entry
                    results[index] = self._finish(job, task.result)

    # -- asynchronous single-job submission --------------------------------

    def submit_job(self, job: AnalysisJob, on_done,
                   priority: tuple = ()) -> Task | None:
        """Submit one job for callback-style completion (the serving
        front-end's entry point).

        A cache hit completes synchronously: ``on_done(result)`` is
        called before this method returns and the return value is
        ``None``.  Otherwise the job goes to the long-lived worker pool
        and the returned :class:`~repro.engine.scheduler.Task` handle
        completes through :meth:`poll` — ``on_done`` then fires on the
        polling thread with the finished (cached + accounted) result.
        The handle can be withdrawn with :meth:`cancel_task`.
        """
        self.stats.submitted += 1
        hit = self._lookup(job)
        if hit is not None:
            on_done(self._use_hit(hit))
            return None
        pool = self._ensure_pool()

        def _complete(task, job=job, on_done=on_done):
            on_done(self._finish(job, task.result))

        return pool.submit(job, timeout=self.timeout, priority=priority,
                           on_done=_complete)

    def poll(self, timeout: float | None = None) -> int:
        """Drive the pool: wait up to ``timeout`` seconds for
        completions (firing their :meth:`submit_job` callbacks) and
        return how many tasks finished."""
        if self._pool is None or self._pool.closed:
            return 0
        return len(self._pool.wait(timeout))

    def cancel_task(self, task: Task) -> bool:
        """Withdraw a :meth:`submit_job` handle.

        ``True`` means the task will never produce a result (its
        ``on_done`` never fires) and a cancellation was accounted.
        ``False`` means the task completed in the race — its result was
        drained and ``on_done`` has already fired.
        """
        if self._pool is None or not self._pool.cancel(task):
            return False
        self.stats.cancelled += 1
        return True

    def run_escalating(self, jobs: list[AnalysisJob]) -> list[JobResult]:
        """Run one ordered ladder, stopping at the first success.

        All rungs may execute concurrently, but the *selection* walks
        the ladder in order: once rung ``i`` succeeds, every rung after
        it is cancelled (a rung still running gets exactly its worker
        terminated) and their outcomes never influence the caller, so
        the chosen rung is deterministic regardless of completion
        order.  Completed loser rungs are still harvested into the
        result cache before being dropped from selection.
        """
        return self.run_escalating_many([jobs])[0]

    def run_escalating_many(self, ladders: list[list[AnalysisJob]],
                            max_inflight: int | None = None,
                            ) -> list[list[JobResult]]:
        """Run many escalation ladders, overlapping them on one pool.

        The cross-pair scheduler of ``first``-mode portfolio batches:
        up to ``max_inflight`` ladders (``None`` = auto from the pool
        size) are in flight at once on the executor's long-lived
        worker pool, so pair B's cheap first rung runs while pair A's
        expensive late rung is still solving.  Per-ladder selection is
        the same as :meth:`run_escalating` — chosen rungs are
        byte-identical to a ``jobs == 1`` run.
        """
        start = time.perf_counter()
        if self.jobs == 1:
            results = [self._escalate_inline(jobs) for jobs in ladders]
        else:
            scheduler = EscalationScheduler(
                self, self._ensure_pool(), max_inflight
            )
            results = scheduler.run(ladders)
        self.stats.seconds += time.perf_counter() - start
        return results

    def _escalate_inline(self, jobs: list[AnalysisJob]) -> list[JobResult]:
        """The sequential ladder walk (``jobs == 1``), the behavioral
        reference for the scheduler's parallel selection."""
        if not jobs:
            return []
        self.stats.submitted += len(jobs)
        results: list[JobResult] = []
        stopped = False
        for job in jobs:
            if stopped:
                results.append(self._account(self._cancelled(job)))
                continue
            hit = self._lookup(job)
            if hit is not None:
                result = self._use_hit(hit)
            else:
                result = self._finish(job, execute_job(job, self.timeout))
            results.append(result)
            if result.succeeded:
                stopped = True
        return results

    def _cancelled(self, job: AnalysisJob) -> JobResult:
        return JobResult(
            job_key=job.key,
            name=job.name,
            kind=job.kind,
            status="cancelled",
            message="a lower portfolio rung already succeeded",
        )
