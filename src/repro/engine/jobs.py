"""The engine's job model.

An :class:`AnalysisJob` is one self-contained unit of analysis work: a
program pair (as source text, so jobs cross process boundaries without
pickling analyzer state), an :class:`~repro.config.AnalysisConfig`, and
the kind of analysis to run (``diff``/``bound``/``refute``/``single``).

Every job has a canonical, content-addressed :attr:`AnalysisJob.key`
(a SHA-256 over a canonical JSON rendering of everything that affects
the job's outcome).  Two jobs with the same key are guaranteed to
produce the same result, which is what makes the on-disk result cache
and cross-run deduplication sound.  Presentation-only attributes (the
display ``name``) are excluded from the key.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import asdict, dataclass, field
from fractions import Fraction
from typing import Any

from repro.config import AnalysisConfig
from repro.errors import AnalysisError
from repro.lp.backend import LP_SOLVER_REVISION

#: Bump when the meaning of a job (or the result schema) changes, so
#: stale cache entries are never replayed across incompatible versions.
JOB_SCHEMA_VERSION = 1

JOB_KINDS = ("diff", "bound", "refute", "single")


@dataclass(frozen=True)
class AnalysisJob:
    """One unit of analysis work, addressable by content.

    Attributes
    ----------
    kind:
        ``"diff"`` (threshold synthesis), ``"bound"`` (symbolic bound
        proof), ``"refute"`` (candidate refutation) or ``"single"``
        (single-program bounds; uses only ``old_source``).
    old_source / new_source:
        `imp` source text of the two versions (``new_source`` is
        ``None`` for ``single`` jobs).
    config:
        The analysis configuration; any field change changes the key.
    name:
        Display name (e.g. the benchmark pair name).  Not keyed.
    bound:
        Polynomial text for ``bound`` jobs.
    candidate:
        Candidate threshold for ``refute`` jobs.
    """

    kind: str
    old_source: str
    new_source: str | None = None
    config: AnalysisConfig = field(default_factory=AnalysisConfig)
    name: str = ""
    bound: str | None = None
    candidate: float | None = None

    def __post_init__(self):
        if self.kind not in JOB_KINDS:
            raise AnalysisError(
                f"unknown job kind {self.kind!r} (use one of {JOB_KINDS})"
            )
        if self.kind != "single" and self.new_source is None:
            raise AnalysisError(f"{self.kind} jobs need a new_source")
        if self.kind == "bound" and self.bound is None:
            raise AnalysisError("bound jobs need a bound polynomial")
        if self.kind == "refute" and self.candidate is None:
            raise AnalysisError("refute jobs need a candidate threshold")

    # -- content addressing ------------------------------------------------

    def canonical_payload(self) -> dict[str, Any]:
        """Everything that determines the job's outcome, canonically."""
        from repro import __version__ as analyzer_version

        return {
            "version": JOB_SCHEMA_VERSION,
            # Release upgrades may change analysis results (encoding
            # fixes, invariant improvements); keying on the package
            # version keeps the on-disk cache from replaying them.
            "analyzer": analyzer_version,
            # The backend *name* is keyed through config.lp_backend; the
            # solver revision additionally invalidates cached results
            # when a backend's algorithm changes under an unchanged name
            # (a result computed by the old solver must never be
            # replayed as if produced by the new one).
            "lp_solver": {
                "backend": self.config.lp_backend,
                "revision": LP_SOLVER_REVISION,
            },
            "kind": self.kind,
            "old_source": self.old_source,
            "new_source": self.new_source,
            "config": asdict(self.config),
            "bound": self.bound,
            "candidate": self.candidate,
        }

    @property
    def key(self) -> str:
        """Content-addressed job key (hex SHA-256)."""
        canonical = json.dumps(
            self.canonical_payload(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode()).hexdigest()

    # -- (de)serialization for process transport ---------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "old_source": self.old_source,
            "new_source": self.new_source,
            "config": asdict(self.config),
            "name": self.name,
            "bound": self.bound,
            "candidate": self.candidate,
        }

    @staticmethod
    def from_dict(data: dict[str, Any]) -> "AnalysisJob":
        payload = dict(data)
        payload["config"] = AnalysisConfig(**payload["config"])
        return AnalysisJob(**payload)


@dataclass
class JobResult:
    """Structured outcome of running one job.

    ``status`` describes the *execution*: ``"ok"`` (the analysis ran to
    completion, including a sound "no certificate" answer), ``"error"``
    (a structured failure was captured), ``"timeout"`` (the per-job
    budget expired) or ``"cancelled"`` (a portfolio raced past it).
    ``outcome`` is the analysis-level verdict (the
    :class:`~repro.core.results.AnalysisStatus` value) when the run
    completed.
    """

    job_key: str
    name: str
    kind: str
    status: str
    outcome: str | None = None
    threshold: float | None = None
    threshold_str: str | None = None
    message: str = ""
    error_type: str | None = None
    traceback: str | None = None
    seconds: float = 0.0
    timings: dict[str, float] = field(default_factory=dict)
    config_summary: dict[str, Any] = field(default_factory=dict)
    cached: bool = False
    #: Which execution attempt produced this result (0 = first try).
    #: A volatile machine condition like ``seconds`` — stripped from
    #: canonical reports, never cached (cache entries are attempt 0 by
    #: construction: only the final, successful attempt is stored).
    attempts: int = 0
    #: Metrics-snapshot delta from the worker process that ran the job
    #: (:meth:`repro.obs.metrics.MetricsRegistry.diff`).  Merged into
    #: the parent registry by the executor and cleared afterwards; a
    #: volatile side channel, stripped from canonical reports.
    metrics: dict[str, Any] = field(default_factory=dict)
    #: The full in-process analysis result object (e.g.
    #: :class:`~repro.core.results.DiffCostResult`).  Only populated on
    #: the inline execution path; never serialized.
    analysis: Any = None

    @property
    def succeeded(self) -> bool:
        """True iff the analysis completed with a positive verdict
        (threshold synthesized / bound proved / candidate refuted)."""
        return self.status == "ok" and self.outcome in (
            "threshold", "proved", "refuted"
        )

    @property
    def failed(self) -> bool:
        """True iff execution itself failed (error or timeout)."""
        return self.status in ("error", "timeout")

    def exact_threshold(self) -> Fraction | float | None:
        """The threshold as an exact value when one was recorded."""
        if self.threshold_str is not None:
            return Fraction(self.threshold_str)
        return self.threshold

    def to_dict(self) -> dict[str, Any]:
        # Not asdict(): it would recurse into the in-process `analysis`
        # object, which is deliberately excluded from serialization.
        return {
            "job_key": self.job_key,
            "name": self.name,
            "kind": self.kind,
            "status": self.status,
            "outcome": self.outcome,
            "threshold": self.threshold,
            "threshold_str": self.threshold_str,
            "message": self.message,
            "error_type": self.error_type,
            "traceback": self.traceback,
            "seconds": self.seconds,
            "timings": dict(self.timings),
            "config_summary": dict(self.config_summary),
            "cached": self.cached,
            "attempts": self.attempts,
            "metrics": dict(self.metrics),
        }

    @staticmethod
    def from_dict(data: dict[str, Any]) -> "JobResult":
        payload = {k: v for k, v in data.items() if k != "analysis"}
        return JobResult(**payload)


def _config_summary(config: AnalysisConfig) -> dict[str, Any]:
    return {
        "degree": config.degree,
        "max_products": config.max_products,
        "lp_backend": config.lp_backend,
    }


def run_job(job: AnalysisJob) -> JobResult:
    """Execute ``job`` in-process and return its structured result.

    Analysis-level failures (LP infeasible) are *successful* runs with
    ``outcome == "unknown"``; genuine errors propagate to the caller
    (the executor turns them into structured ``"error"`` results).
    """
    from repro.core import (
        analyze_diffcost,
        analyze_single_program,
        prove_symbolic_bound,
        refute_threshold,
    )
    from repro.lang import load_program
    from repro.obs import span
    from repro.poly import parse_polynomial

    start = time.perf_counter()
    old = load_program(job.old_source, name=f"{job.name or 'job'}_old")
    result = JobResult(
        job_key=job.key,
        name=job.name,
        kind=job.kind,
        status="ok",
        config_summary=_config_summary(job.config),
    )

    with span(f"job:{job.kind}", cat="engine",
              args={"job_key": job.key, "name": job.name,
                    "degree": job.config.degree}):
        if job.kind == "single":
            analysis = analyze_single_program(old, job.config)
            threshold = analysis.precision
        else:
            new = load_program(job.new_source,
                               name=f"{job.name or 'job'}_new")
            if job.kind == "diff":
                analysis = analyze_diffcost(old, new, job.config)
                threshold = analysis.threshold
            elif job.kind == "bound":
                analysis = prove_symbolic_bound(
                    old, new, parse_polynomial(job.bound), job.config
                )
                threshold = None
            else:  # refute
                analysis = refute_threshold(old, new, job.candidate,
                                            job.config)
                threshold = analysis.guaranteed_difference

    result.outcome = analysis.status.value
    result.message = analysis.message
    if threshold is not None:
        result.threshold = float(threshold)
        if isinstance(threshold, Fraction):
            result.threshold_str = str(threshold)
    result.timings = dict(getattr(analysis, "timings", {}) or {})
    result.seconds = time.perf_counter() - start
    result.analysis = analysis
    return result
