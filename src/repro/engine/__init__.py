"""Parallel portfolio analysis engine.

The orchestration layer over the single-pair analyzers of
:mod:`repro.core`:

- :mod:`repro.engine.jobs` — the content-addressed job model
  (:class:`AnalysisJob` / :class:`JobResult`);
- :mod:`repro.engine.scheduler` — the long-lived worker pool with
  per-task process tracking and the cross-pair escalation scheduler
  (:class:`WorkerPool` / :class:`EscalationScheduler`);
- :mod:`repro.engine.executor` — process-pool execution with per-job
  timeouts and structured failure capture
  (:class:`ParallelExecutor`);
- :mod:`repro.engine.cache` — the persistent JSON-on-disk result cache
  (:class:`ResultCache`);
- :mod:`repro.engine.portfolio` — racing an escalating configuration
  ladder per pair (:func:`run_portfolio`);
- :mod:`repro.engine.batch` — directory-level batch runs and reporting
  (:func:`run_batch`).

Every scaling entry point (the ``batch`` CLI, ``suite --jobs``, CI
gates) goes through this package.
"""

from repro.engine.jobs import AnalysisJob, JobResult, run_job
from repro.engine.cache import ResultCache
from repro.engine.scheduler import EscalationScheduler, Task, WorkerPool
from repro.engine.executor import (
    ExecutorStats,
    JobTimeoutError,
    ParallelExecutor,
    execute_job,
)
from repro.engine.portfolio import (
    DEFAULT_LADDER,
    PortfolioResult,
    ladder_configs,
    portfolio_jobs,
    run_portfolio,
    select_result,
)
from repro.engine.batch import (
    BatchReport,
    ProgramPair,
    batch_to_json,
    discover_pairs,
    format_batch_table,
    pair_shard_index,
    run_batch,
    shard_pairs,
)

__all__ = [
    "AnalysisJob",
    "JobResult",
    "run_job",
    "ResultCache",
    "EscalationScheduler",
    "Task",
    "WorkerPool",
    "ExecutorStats",
    "JobTimeoutError",
    "ParallelExecutor",
    "execute_job",
    "DEFAULT_LADDER",
    "PortfolioResult",
    "ladder_configs",
    "portfolio_jobs",
    "run_portfolio",
    "select_result",
    "BatchReport",
    "ProgramPair",
    "batch_to_json",
    "discover_pairs",
    "format_batch_table",
    "pair_shard_index",
    "run_batch",
    "shard_pairs",
]
