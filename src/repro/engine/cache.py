"""Persistent result cache, keyed by content-addressed job hash.

One JSON file per job key, written atomically (temp file + rename), so
concurrent batch runs over the same cache directory cannot corrupt
entries.  Entries carry the schema version and the job's canonical
metadata; a version mismatch or an unreadable file is treated as a miss
(and the entry is rewritten on the next store).

Repeated batch/suite runs therefore skip invariant generation, Handelman
encoding and the LP solve entirely for unchanged (program pair, config)
points — the cache key covers every :class:`~repro.config.AnalysisConfig`
field, so any knob change invalidates exactly the affected entries.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any

from repro.engine.jobs import JOB_SCHEMA_VERSION, AnalysisJob, JobResult

#: Results from failed executions are never cached (a timeout on a busy
#: machine says nothing about the next run); sound analysis answers are,
#: including the paper's ✗ ("unknown": the LP was infeasible).
CACHEABLE_STATUSES = ("ok",)


class ResultCache:
    """JSON-on-disk cache of :class:`JobResult` payloads."""

    def __init__(self, directory: str | os.PathLike):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def path_for(self, key: str) -> Path:
        """The entry file of a job key."""
        return self.directory / f"{key}.json"

    # -- lookup ------------------------------------------------------------

    def get(self, key: str) -> JobResult | None:
        """The cached result of ``key``, or ``None`` on a miss."""
        path = self.path_for(key)
        try:
            with open(path) as handle:
                entry = json.load(handle)
        except (OSError, json.JSONDecodeError):
            self.misses += 1
            return None
        if entry.get("version") != JOB_SCHEMA_VERSION:
            self.misses += 1
            return None
        try:
            result = JobResult.from_dict(entry["result"])
        except (KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        result.cached = True
        # The entry keeps the original run's duration on disk, but the
        # replayed result cost this run nothing — reporting historical
        # seconds as measured time would inflate every consumer's
        # timing column.
        result.seconds = 0.0
        return result

    # -- store -------------------------------------------------------------

    def put(self, job: AnalysisJob, result: JobResult) -> bool:
        """Store ``result`` under ``job``'s key; returns whether stored."""
        if result.status not in CACHEABLE_STATUSES:
            return False
        payload = job.canonical_payload()
        entry = {
            "version": JOB_SCHEMA_VERSION,
            "job": {
                "kind": job.kind,
                "name": job.name,
                "config": payload["config"],
                # Recorded for debuggability; the *key* (file name)
                # already covers both, so entries written by an older
                # solver revision are simply never looked up again.
                "lp_solver": payload["lp_solver"],
            },
            "result": result.to_dict(),
        }
        path = self.path_for(result.job_key)
        fd, temp_path = tempfile.mkstemp(
            dir=self.directory, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(entry, handle, sort_keys=True)
            os.replace(temp_path, path)
        except OSError:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            return False
        return True

    # -- merging -----------------------------------------------------------

    def merge_from(self, source: str | os.PathLike,
                   overwrite: bool = False) -> int:
        """Fold another cache directory's entries into this one.

        The shard-merge primitive: after ``batch --shard k/n`` runs on
        disjoint cache directories, merging them all into one yields
        the cache an unsharded run would have produced (keys are
        content-addressed, so entries never conflict semantically — two
        files with the same name differ only in recorded wall seconds).

        Every copy is written via a temp file in *this* cache's
        directory and published with an atomic ``os.replace``, so any
        number of concurrent mergers and writers can target the same
        destination without ever exposing a torn entry.  Existing
        entries are kept unless ``overwrite`` (first writer wins — the
        cheapest option, and any winner is equally valid).  In-flight
        ``.tmp-*`` files and unreadable entries in ``source`` are
        skipped.  Returns how many entries were copied.
        """
        source_dir = Path(source)
        if source_dir.resolve() == self.directory.resolve():
            return 0
        copied = 0
        for path in sorted(source_dir.glob("[!.]*.json")):
            destination = self.directory / path.name
            if not overwrite and destination.exists():
                continue
            try:
                payload = path.read_bytes()
            except OSError:
                continue
            fd, temp_path = tempfile.mkstemp(
                dir=self.directory, prefix=".tmp-", suffix=".json"
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(payload)
                os.replace(temp_path, destination)
                copied += 1
            except OSError:
                try:
                    os.unlink(temp_path)
                except OSError:
                    pass
        return copied

    # -- maintenance -------------------------------------------------------

    def clear(self) -> int:
        """Delete all entries; returns how many were removed.

        The pattern excludes in-flight ``.tmp-*`` files (pathlib's glob
        matches leading dots): unlinking one would race a concurrent
        writer's ``os.replace`` and silently drop its store.
        """
        removed = 0
        for path in self.directory.glob("[!.]*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("[!.]*.json"))

    def stats(self) -> dict[str, Any]:
        """Hit/miss counters of this cache handle."""
        return {"hits": self.hits, "misses": self.misses, "entries": len(self)}
