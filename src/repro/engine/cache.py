"""Persistent result cache, keyed by content-addressed job hash.

One JSON file per job key, written atomically (temp file + rename), so
concurrent batch runs over the same cache directory cannot corrupt
entries.  Entries carry the schema version and the job's canonical
metadata; a version mismatch or an unreadable file is treated as a miss
(and the entry is rewritten on the next store).

Repeated batch/suite runs therefore skip invariant generation, Handelman
encoding and the LP solve entirely for unchanged (program pair, config)
points — the cache key covers every :class:`~repro.config.AnalysisConfig`
field, so any knob change invalidates exactly the affected entries.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path
from typing import Any

from repro.engine.jobs import JOB_SCHEMA_VERSION, AnalysisJob, JobResult
from repro.obs import get_logger, get_registry

_LOG = get_logger("engine.cache")

#: Results from failed executions are never cached (a timeout on a busy
#: machine says nothing about the next run); sound analysis answers are,
#: including the paper's ✗ ("unknown": the LP was infeasible).
CACHEABLE_STATUSES = ("ok",)

#: Entries older than this (seconds since last write) count as eviction
#: candidates in :meth:`ResultCache.stats` — a capacity-planning signal
#: only; nothing is evicted automatically.
DEFAULT_EVICTION_AGE_S = 7 * 24 * 3600.0


def _percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile of an ascending list (0 when empty)."""
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1,
                int(round(q * (len(sorted_values) - 1))))
    return sorted_values[index]


class ResultCache:
    """JSON-on-disk cache of :class:`JobResult` payloads."""

    def __init__(self, directory: str | os.PathLike,
                 eviction_age_s: float = DEFAULT_EVICTION_AGE_S):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.eviction_age_s = eviction_age_s
        self.hits = 0
        self.misses = 0

    def path_for(self, key: str) -> Path:
        """The entry file of a job key."""
        return self.directory / f"{key}.json"

    # -- lookup ------------------------------------------------------------

    def get(self, key: str) -> JobResult | None:
        """The cached result of ``key``, or ``None`` on a miss."""
        path = self.path_for(key)
        try:
            with open(path) as handle:
                entry = json.load(handle)
        except (OSError, json.JSONDecodeError):
            self._miss()
            return None
        if entry.get("version") != JOB_SCHEMA_VERSION:
            self._miss()
            return None
        try:
            result = JobResult.from_dict(entry["result"])
        except (KeyError, TypeError):
            self._miss()
            return None
        self.hits += 1
        get_registry().counter(
            "repro_cache_hits_total", "Result-cache lookups that hit.",
        ).inc()
        result.cached = True
        # The entry keeps the original run's duration on disk, but the
        # replayed result cost this run nothing — reporting historical
        # seconds as measured time would inflate every consumer's
        # timing column.  The stored metrics delta was the *original*
        # run's work; replaying it would double-count those increments.
        result.seconds = 0.0
        result.metrics = {}
        return result

    def _miss(self) -> None:
        self.misses += 1
        get_registry().counter(
            "repro_cache_misses_total", "Result-cache lookups that missed.",
        ).inc()

    # -- store -------------------------------------------------------------

    def put(self, job: AnalysisJob, result: JobResult) -> bool:
        """Store ``result`` under ``job``'s key; returns whether stored."""
        if result.status not in CACHEABLE_STATUSES:
            return False
        payload = job.canonical_payload()
        entry = {
            "version": JOB_SCHEMA_VERSION,
            "job": {
                "kind": job.kind,
                "name": job.name,
                "config": payload["config"],
                # Recorded for debuggability; the *key* (file name)
                # already covers both, so entries written by an older
                # solver revision are simply never looked up again.
                "lp_solver": payload["lp_solver"],
            },
            "result": result.to_dict(),
        }
        path = self.path_for(result.job_key)
        fd, temp_path = tempfile.mkstemp(
            dir=self.directory, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(entry, handle, sort_keys=True)
            os.replace(temp_path, path)
        except OSError:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            return False
        get_registry().counter(
            "repro_cache_stores_total", "Result-cache entries written.",
        ).inc()
        return True

    # -- merging -----------------------------------------------------------

    def merge_from(self, source: str | os.PathLike,
                   overwrite: bool = False) -> int:
        """Fold another cache directory's entries into this one.

        The shard-merge primitive: after ``batch --shard k/n`` runs on
        disjoint cache directories, merging them all into one yields
        the cache an unsharded run would have produced (keys are
        content-addressed, so entries never conflict semantically — two
        files with the same name differ only in recorded wall seconds).

        Every copy is written via a temp file in *this* cache's
        directory and published with an atomic ``os.replace``, so any
        number of concurrent mergers and writers can target the same
        destination without ever exposing a torn entry.  Existing
        entries are kept unless ``overwrite`` (first writer wins — the
        cheapest option, and any winner is equally valid).  In-flight
        ``.tmp-*`` files and unreadable entries in ``source`` are
        skipped.  Returns how many entries were copied.
        """
        source_dir = Path(source)
        if source_dir.resolve() == self.directory.resolve():
            return 0
        copied = 0
        for path in sorted(source_dir.glob("[!.]*.json")):
            destination = self.directory / path.name
            if not overwrite and destination.exists():
                continue
            try:
                payload = path.read_bytes()
            except OSError:
                continue
            fd, temp_path = tempfile.mkstemp(
                dir=self.directory, prefix=".tmp-", suffix=".json"
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(payload)
                os.replace(temp_path, destination)
                copied += 1
            except OSError:
                try:
                    os.unlink(temp_path)
                except OSError:
                    pass
        if copied:
            _LOG.debug("merged %d entr%s from %s", copied,
                       "y" if copied == 1 else "ies", source_dir)
        return copied

    # -- maintenance -------------------------------------------------------

    def clear(self) -> int:
        """Delete all entries; returns how many were removed.

        The pattern excludes in-flight ``.tmp-*`` files (pathlib's glob
        matches leading dots): unlinking one would race a concurrent
        writer's ``os.replace`` and silently drop its store.
        """
        removed = 0
        for path in self.directory.glob("[!.]*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("[!.]*.json"))

    @staticmethod
    def empty_stats() -> dict[str, Any]:
        """The :meth:`stats` schema with every value zeroed.

        Served by ``/healthz`` before the engine (and therefore the
        cache handle) exists, so scrapers see one stable shape instead
        of special-casing ``null``.
        """
        return {
            "hits": 0,
            "misses": 0,
            "entries": 0,
            "total_bytes": 0,
            "oldest_age_s": 0.0,
            "newest_age_s": 0.0,
            "age_p50_s": 0.0,
            "age_p90_s": 0.0,
            "eviction_candidates": 0,
        }

    def stats(self, now: float | None = None) -> dict[str, Any]:
        """Hit/miss counters of this handle plus on-disk shape: entry
        count, total bytes, and entry-age spread (seconds since last
        write: oldest/newest and p50/p90 percentiles) — the
        capacity-planning view.  ``eviction_candidates`` counts entries
        older than :attr:`eviction_age_s`; nothing is deleted here."""
        data = self.empty_stats()
        data["hits"], data["misses"] = self.hits, self.misses
        if now is None:
            now = time.time()
        ages: list[float] = []
        total_bytes = 0
        for path in self.directory.glob("[!.]*.json"):
            try:
                meta = path.stat()
            except OSError:  # deleted/renamed mid-scan by another writer
                continue
            total_bytes += meta.st_size
            ages.append(max(0.0, now - meta.st_mtime))
        ages.sort()
        data["entries"] = len(ages)
        data["total_bytes"] = total_bytes
        if ages:
            data["oldest_age_s"] = round(ages[-1], 3)
            data["newest_age_s"] = round(ages[0], 3)
            data["age_p50_s"] = round(_percentile(ages, 0.5), 3)
            data["age_p90_s"] = round(_percentile(ages, 0.9), 3)
            data["eviction_candidates"] = sum(
                1 for age in ages if age > self.eviction_age_s
            )
        return data
