"""Persistent result cache, keyed by content-addressed job hash.

One JSON file per job key, written atomically (temp file + rename), so
concurrent batch runs over the same cache directory cannot corrupt
entries.  Entries carry the schema version, the job's canonical
metadata, and a SHA-256 checksum of the result payload; a version
mismatch or an unreadable file is treated as a miss (and the entry is
rewritten on the next store), while a file that exists but fails to
parse or verify — a torn write from a powered-off machine, bit rot —
is *quarantined*: renamed to ``<key>.corrupt`` for post-mortems and
treated as a miss instead of raising.  Opening a cache also sweeps
``.tmp-*`` files a killed writer left behind (older than a grace
period, so live concurrent writers are never raced).

Repeated batch/suite runs therefore skip invariant generation, Handelman
encoding and the LP solve entirely for unchanged (program pair, config)
points — the cache key covers every :class:`~repro.config.AnalysisConfig`
field, so any knob change invalidates exactly the affected entries.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from pathlib import Path
from typing import Any

from repro.engine.jobs import JOB_SCHEMA_VERSION, AnalysisJob, JobResult
from repro.faults import active_plan, fault_point
from repro.obs import get_logger, get_registry

_LOG = get_logger("engine.cache")

#: Results from failed executions are never cached (a timeout on a busy
#: machine says nothing about the next run); sound analysis answers are,
#: including the paper's ✗ ("unknown": the LP was infeasible).
CACHEABLE_STATUSES = ("ok",)

#: Entries older than this (seconds since last write) count as eviction
#: candidates in :meth:`ResultCache.stats` — a capacity-planning signal
#: only; nothing is evicted automatically.
DEFAULT_EVICTION_AGE_S = 7 * 24 * 3600.0

#: ``.tmp-*`` files older than this are removed when a cache opens: a
#: live writer holds its temp for milliseconds between ``mkstemp`` and
#: ``os.replace``, so anything minutes old is the leavings of a killed
#: process.  The generous margin keeps concurrent shard runs (which
#: share a destination directory) un-raceable.
DEFAULT_TEMP_SWEEP_AGE_S = 300.0


def _result_checksum(result_payload: Any) -> str:
    """Hex SHA-256 over the canonical rendering of a result payload."""
    canonical = json.dumps(result_payload, sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def _percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile of an ascending list (0 when empty)."""
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1,
                int(round(q * (len(sorted_values) - 1))))
    return sorted_values[index]


class ResultCache:
    """JSON-on-disk cache of :class:`JobResult` payloads."""

    def __init__(self, directory: str | os.PathLike,
                 eviction_age_s: float = DEFAULT_EVICTION_AGE_S,
                 temp_sweep_age_s: float = DEFAULT_TEMP_SWEEP_AGE_S):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.eviction_age_s = eviction_age_s
        self.temp_sweep_age_s = temp_sweep_age_s
        self.hits = 0
        self.misses = 0
        #: Entries quarantined to ``*.corrupt`` / stale temps removed
        #: by this handle.
        self.corrupted = 0
        self.temp_swept = self._sweep_temps()

    def path_for(self, key: str) -> Path:
        """The entry file of a job key."""
        return self.directory / f"{key}.json"

    def _sweep_temps(self) -> int:
        """Remove ``.tmp-*`` files older than :attr:`temp_sweep_age_s`
        (a killed writer's leavings); returns how many were removed."""
        removed = 0
        now = time.time()
        for path in self.directory.glob(".tmp-*"):
            try:
                if now - path.stat().st_mtime < self.temp_sweep_age_s:
                    continue
                path.unlink()
                removed += 1
            except OSError:  # finished/cleaned by a live writer mid-scan
                continue
        if removed:
            get_registry().counter(
                "repro_cache_temps_swept_total",
                "Stale cache temp files removed at open.",
            ).inc(removed)
            _LOG.warning("swept %d stale temp file(s) from %s",
                         removed, self.directory)
        return removed

    # -- lookup ------------------------------------------------------------

    def get(self, key: str) -> JobResult | None:
        """The cached result of ``key``, or ``None`` on a miss.

        An entry that exists but cannot be trusted — truncated or
        garbage bytes, a checksum mismatch, a malformed result payload —
        is quarantined to ``<key>.corrupt`` and reported as a miss, so
        corruption costs one re-execution instead of a crash.  A
        missing file, a schema-version mismatch, or a pre-checksum
        legacy entry is a plain miss (rewritten on the next store).
        """
        path = self.path_for(key)
        try:
            with open(path, encoding="utf-8") as handle:
                entry = json.load(handle)
        except FileNotFoundError:
            self._miss()
            return None
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            self._quarantine(path, "unreadable or undecodable entry")
            self._miss()
            return None
        if not isinstance(entry, dict):
            self._quarantine(path, "entry is not a JSON object")
            self._miss()
            return None
        if entry.get("version") != JOB_SCHEMA_VERSION:
            self._miss()
            return None
        checksum = entry.get("checksum")
        if checksum is None:
            # A legacy (pre-checksum) entry: re-run rather than trust
            # unverifiable bytes; the store rewrites it with a checksum.
            self._miss()
            return None
        if checksum != _result_checksum(entry.get("result")):
            self._quarantine(path, "checksum mismatch")
            self._miss()
            return None
        try:
            result = JobResult.from_dict(entry["result"])
        except (KeyError, TypeError):
            self._quarantine(path, "malformed result payload")
            self._miss()
            return None
        self.hits += 1
        get_registry().counter(
            "repro_cache_hits_total", "Result-cache lookups that hit.",
        ).inc()
        result.cached = True
        # The entry keeps the original run's duration on disk, but the
        # replayed result cost this run nothing — reporting historical
        # seconds as measured time would inflate every consumer's
        # timing column.  The stored metrics delta was the *original*
        # run's work; replaying it would double-count those increments.
        # Retry attempts are likewise the original run's history.
        result.seconds = 0.0
        result.metrics = {}
        result.attempts = 0
        return result

    def _miss(self) -> None:
        self.misses += 1
        get_registry().counter(
            "repro_cache_misses_total", "Result-cache lookups that missed.",
        ).inc()

    def _quarantine(self, path: Path, why: str) -> None:
        """Move a corrupt entry aside as ``<key>.corrupt`` (best-effort;
        a concurrent writer may have already replaced it)."""
        target = path.with_suffix(".corrupt")
        try:
            os.replace(path, target)
        except OSError:
            return
        self.corrupted += 1
        get_registry().counter(
            "repro_cache_corrupt_total",
            "Cache entries quarantined as corrupt.",
        ).inc()
        _LOG.warning("quarantined corrupt cache entry %s -> %s (%s)",
                     path.name, target.name, why)

    # -- store -------------------------------------------------------------

    def put(self, job: AnalysisJob, result: JobResult) -> bool:
        """Store ``result`` under ``job``'s key; returns whether stored."""
        if result.status not in CACHEABLE_STATUSES:
            return False
        payload = job.canonical_payload()
        result_payload = result.to_dict()
        # The stored result is the entry of record regardless of how
        # many attempts it took this machine to produce it.
        result_payload["attempts"] = 0
        entry = {
            "version": JOB_SCHEMA_VERSION,
            "job": {
                "kind": job.kind,
                "name": job.name,
                "config": payload["config"],
                # Recorded for debuggability; the *key* (file name)
                # already covers both, so entries written by an older
                # solver revision are simply never looked up again.
                "lp_solver": payload["lp_solver"],
            },
            "result": result_payload,
            "checksum": _result_checksum(result_payload),
        }
        path = self.path_for(result.job_key)
        fd, temp_path = tempfile.mkstemp(
            dir=self.directory, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(entry, handle, sort_keys=True)
            os.replace(temp_path, path)
        except OSError:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            return False
        get_registry().counter(
            "repro_cache_stores_total", "Result-cache entries written.",
        ).inc()
        self._apply_write_fault(job, path)
        return True

    def _apply_write_fault(self, job: AnalysisJob, path: Path) -> None:
        """Chaos hook: damage the just-published entry when the active
        fault plan says so (``cache.torn_write`` / ``cache.corrupt``)."""
        if active_plan() is None:
            return
        rule = fault_point("cache.torn_write", name=job.name, key=job.key,
                           kind=job.kind)
        mode = "truncate" if rule is not None else None
        if rule is None:
            rule = fault_point("cache.corrupt", name=job.name, key=job.key,
                               kind=job.kind)
            mode = rule.mode if rule is not None else None
        if rule is None:
            return
        try:
            if mode == "truncate":
                data = path.read_bytes()
                path.write_bytes(data[: len(data) // 2])
            else:
                plan = active_plan()
                path.write_bytes(plan.corruption_bytes(job.key))
        except OSError:  # pragma: no cover — fault on the fault path
            pass

    # -- merging -----------------------------------------------------------

    def merge_from(self, source: str | os.PathLike,
                   overwrite: bool = False) -> int:
        """Fold another cache directory's entries into this one.

        The shard-merge primitive: after ``batch --shard k/n`` runs on
        disjoint cache directories, merging them all into one yields
        the cache an unsharded run would have produced (keys are
        content-addressed, so entries never conflict semantically — two
        files with the same name differ only in recorded wall seconds).

        Every copy is written via a temp file in *this* cache's
        directory and published with an atomic ``os.replace``, so any
        number of concurrent mergers and writers can target the same
        destination without ever exposing a torn entry.  Existing
        entries are kept unless ``overwrite`` (first writer wins — the
        cheapest option, and any winner is equally valid).  In-flight
        ``.tmp-*`` files and unreadable, undecodable or
        checksum-failing entries in ``source`` are skipped — merging a
        shard cache a fault (or a powered-off machine) chewed on must
        not spread the damage.  Returns how many entries were copied.
        """
        source_dir = Path(source)
        if source_dir.resolve() == self.directory.resolve():
            return 0
        copied = 0
        for path in sorted(source_dir.glob("[!.]*.json")):
            destination = self.directory / path.name
            if not overwrite and destination.exists():
                continue
            try:
                payload = path.read_bytes()
            except OSError:
                continue
            try:
                entry = json.loads(payload)
            except (json.JSONDecodeError, UnicodeDecodeError):
                _LOG.warning("skipping corrupt source entry %s", path.name)
                continue
            if (not isinstance(entry, dict)
                    or "checksum" in entry
                    and entry["checksum"]
                    != _result_checksum(entry.get("result"))):
                _LOG.warning("skipping corrupt source entry %s", path.name)
                continue
            fd, temp_path = tempfile.mkstemp(
                dir=self.directory, prefix=".tmp-", suffix=".json"
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(payload)
                os.replace(temp_path, destination)
                copied += 1
            except OSError:
                try:
                    os.unlink(temp_path)
                except OSError:
                    pass
        if copied:
            _LOG.debug("merged %d entr%s from %s", copied,
                       "y" if copied == 1 else "ies", source_dir)
        return copied

    # -- maintenance -------------------------------------------------------

    def clear(self) -> int:
        """Delete all entries; returns how many were removed.

        The pattern excludes in-flight ``.tmp-*`` files (pathlib's glob
        matches leading dots): unlinking one would race a concurrent
        writer's ``os.replace`` and silently drop its store.
        """
        removed = 0
        for path in self.directory.glob("[!.]*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("[!.]*.json"))

    @staticmethod
    def empty_stats() -> dict[str, Any]:
        """The :meth:`stats` schema with every value zeroed.

        Served by ``/healthz`` before the engine (and therefore the
        cache handle) exists, so scrapers see one stable shape instead
        of special-casing ``null``.
        """
        return {
            "hits": 0,
            "misses": 0,
            "corrupted": 0,
            "temp_swept": 0,
            "entries": 0,
            "total_bytes": 0,
            "oldest_age_s": 0.0,
            "newest_age_s": 0.0,
            "age_p50_s": 0.0,
            "age_p90_s": 0.0,
            "eviction_candidates": 0,
        }

    def stats(self, now: float | None = None) -> dict[str, Any]:
        """Hit/miss counters of this handle plus on-disk shape: entry
        count, total bytes, and entry-age spread (seconds since last
        write: oldest/newest and p50/p90 percentiles) — the
        capacity-planning view.  ``eviction_candidates`` counts entries
        older than :attr:`eviction_age_s`; nothing is deleted here."""
        data = self.empty_stats()
        data["hits"], data["misses"] = self.hits, self.misses
        data["corrupted"] = self.corrupted
        data["temp_swept"] = self.temp_swept
        if now is None:
            now = time.time()
        ages: list[float] = []
        total_bytes = 0
        for path in self.directory.glob("[!.]*.json"):
            try:
                meta = path.stat()
            except OSError:  # deleted/renamed mid-scan by another writer
                continue
            total_bytes += meta.st_size
            ages.append(max(0.0, now - meta.st_mtime))
        ages.sort()
        data["entries"] = len(ages)
        data["total_bytes"] = total_bytes
        if ages:
            data["oldest_age_s"] = round(ages[-1], 3)
            data["newest_age_s"] = round(ages[0], 3)
            data["age_p50_s"] = round(_percentile(ages, 0.5), 3)
            data["age_p90_s"] = round(_percentile(ages, 0.9), 3)
            data["eviction_candidates"] = sum(
                1 for age in ages if age > self.eviction_age_s
            )
        return data
