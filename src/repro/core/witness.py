"""Concrete difference witnesses.

:func:`refute_threshold` (Theorem 4.3) produces *certificate-based*
evidence that a threshold can be exceeded.  This module complements it
with *execution-based* evidence: an input plus the exhaustively computed
``CostSup_new`` / ``CostInf_old`` demonstrating the difference on actual
runs.  This is what a developer sees in a code-review comment: "on input
lenA=100, lenB=100 the new version costs 20000 while the old costs
10000".

Execution-based search is exact but only explores the inputs it is
given (box corners by default, optionally randomly sampled interior
points), so it yields a *lower* bound on the maximal difference — the
dual of the analysis' upper bound; the two together bracket the truth.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.diffcost import DiffCostAnalyzer, ProgramLike
from repro.errors import InterpreterError
from repro.invariants.polyhedron import Polyhedron
from repro.ts.interpreter import CostSearch
from repro.ts.system import COST_VAR


@dataclass
class DifferenceWitness:
    """A concrete input and the exact cost difference it exhibits."""

    inputs: dict[str, int]
    old_cost_inf: int
    new_cost_sup: int

    @property
    def difference(self) -> int:
        """``CostSup_new - CostInf_old`` on this input."""
        return self.new_cost_sup - self.old_cost_inf

    def __str__(self) -> str:
        return (
            f"input {self.inputs}: new version costs up to "
            f"{self.new_cost_sup}, old version costs at least "
            f"{self.old_cost_inf} (difference {self.difference})"
        )


def find_difference_witness(old: ProgramLike, new: ProgramLike,
                            exceed: float | int | None = None,
                            extra_samples: int = 16,
                            seed: int = 0,
                            max_states: int = 2_000_000,
                            ) -> DifferenceWitness | None:
    """Search for the input with the largest concrete cost difference.

    Candidate inputs are the Θ0-box corners plus ``extra_samples``
    random interior points.  When ``exceed`` is given, the search stops
    early at the first witness whose difference is strictly greater.
    Returns the best witness found, or ``None`` when no candidate input
    admits terminating runs within ``max_states``.
    """
    analyzer = DiffCostAnalyzer(old, new)
    theta0 = Polyhedron(analyzer.combined_theta0())
    variables = sorted(
        (set(analyzer.old_system.variables)
         | set(analyzer.new_system.variables)) - {COST_VAR}
    )

    rng = random.Random(seed)
    candidates: list[dict[str, int]] = []
    ranges: dict[str, tuple[int, int]] = {}
    for var in variables:
        interval = theta0.var_bounds(var)
        low = 0 if interval.lower is None else int(interval.lower)
        high = low if interval.upper is None else int(interval.upper)
        ranges[var] = (low, high)

    def corners(index: int, current: dict[str, int]) -> None:
        if len(candidates) >= 64:
            return
        if index == len(variables):
            candidates.append(dict(current))
            return
        low, high = ranges[variables[index]]
        for value in {low, high}:
            current[variables[index]] = value
            corners(index + 1, current)

    corners(0, {})
    for _ in range(extra_samples):
        candidates.append({
            var: rng.randint(low, high) for var, (low, high) in ranges.items()
        })

    old_search = CostSearch(analyzer.old_system, max_states=max_states)
    new_search = CostSearch(analyzer.new_system, max_states=max_states)
    best: DifferenceWitness | None = None
    for candidate in candidates:
        if not theta0.contains_point(candidate):
            continue
        old_inputs = {
            v: candidate.get(v, 0) for v in analyzer.old_system.state_variables
        }
        new_inputs = {
            v: candidate.get(v, 0) for v in analyzer.new_system.state_variables
        }
        try:
            old_inf, _ = old_search.cost_bounds(old_inputs)
            _, new_sup = new_search.cost_bounds(new_inputs)
        except InterpreterError:
            continue  # state space too large on this input; skip
        witness = DifferenceWitness(candidate, old_inf, new_sup)
        if best is None or witness.difference > best.difference:
            best = witness
        if exceed is not None and witness.difference > exceed:
            return witness
    return best


def bracket_threshold(old: ProgramLike, new: ProgramLike,
                      computed_threshold: float,
                      extra_samples: int = 16,
                      seed: int = 0) -> tuple[int | None, float]:
    """Bracket the true maximal difference:

    ``lower`` — best concrete difference found by execution (exact but
    input-sampled); ``upper`` — the analysis' computed threshold.  A
    tight analysis has ``upper - lower < 1`` (integer costs).
    """
    witness = find_difference_witness(
        old, new, extra_samples=extra_samples, seed=seed
    )
    lower = None if witness is None else witness.difference
    return lower, computed_threshold
