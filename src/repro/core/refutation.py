"""Threshold refutation via PFs and anti-PFs (Theorem 4.3).

Dual use of the machinery: an *anti*-potential for the **new** version
(lower bound on its cost) and a potential for the **old** version (upper
bound on its cost).  If for some input ``x ∈ Θ0``

    χ_new(ℓ0,x) − φ_old(ℓ0,x) > t

then every pair of runs on ``x`` differs by more than ``t``, so ``t`` is
not a threshold.  For a *fixed* witness input the left-hand side is
linear in the template symbols, so maximizing it is again an LP; we try
a set of witness candidates (box corners and the center of Θ0 by
default) and keep the best certified gap.

Every witness shares the same constraint system — only the objective
(the gap at that witness) changes.  With
``AnalysisConfig.lp_incremental`` (the default) the loop therefore runs
the Handelman expansion and ``encode_implication`` **once** and swaps
objectives: exact backends re-solve through
:class:`~repro.lp.dual.IncrementalLP`, which re-optimizes each witness
from the previous optimal basis (primal phase-2 pivots on one LU/eta
factorization) instead of solving cold — one factorization amortized
over up to 33 witness LPs; float backends re-solve the shared model.
``lp_incremental=False`` restores the original loop verbatim
(re-encode and solve cold per witness), kept as the A/B baseline the
perf harness measures against.  The certified gaps are bit-identical
either way: the optimal value of an LP is unique, whatever basis path
reaches it.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable

from repro.config import AnalysisConfig
from repro.core.constraints import (
    LOWER,
    UPPER,
    TemplateSet,
    collect_certificate_constraints,
)
from repro.core.diffcost import DiffCostAnalyzer, ProgramLike, extract_certificate
from repro.core.potentials import ANTI_POTENTIAL, POTENTIAL
from repro.core.results import AnalysisStatus, RefutationResult
from repro.handelman.encode import encode_implication
from repro.invariants.polyhedron import Polyhedron
from repro.lp.backend import backend_is_exact, get_backend
from repro.lp.dual import IncrementalLP
from repro.lp.model import LPModel
from repro.lp.solution import LPStatus
from repro.ts.system import COST_VAR, TransitionSystem
from repro.utils.naming import FreshNameGenerator
from repro.utils.rationals import Numeric


def default_witnesses(old_system: TransitionSystem,
                      new_system: TransitionSystem,
                      theta0: Polyhedron,
                      limit: int = 33) -> list[dict[str, int]]:
    """Candidate witness inputs: Θ0-box corners plus the box center.

    Variables without finite bounds default to 0.  Points violating Θ0
    (e.g. ordering side constraints) are filtered out.
    """
    variables = sorted(
        (set(old_system.variables) | set(new_system.variables)) - {COST_VAR}
    )
    choices: list[list[int]] = []
    for var in variables:
        interval = theta0.var_bounds(var)
        low = 0 if interval.lower is None else int(interval.lower)
        high = low if interval.upper is None else int(interval.upper)
        choices.append([low] if low == high else [low, high])

    candidates: list[dict[str, int]] = []

    def expand(index: int, current: dict[str, int]) -> None:
        if len(candidates) >= limit - 1:
            return
        if index == len(variables):
            candidates.append(dict(current))
            return
        for value in choices[index]:
            current[variables[index]] = value
            expand(index + 1, current)

    expand(0, {})
    center = {
        var: (values[0] + values[-1]) // 2
        for var, values in zip(variables, choices)
    }
    candidates.append(center)
    # Degenerate boxes (or center == corner along every axis) duplicate
    # candidates; each duplicate would cost a full LP solve downstream.
    seen: set[tuple] = set()
    unique: list[dict[str, int]] = []
    for candidate in candidates:
        key = tuple(sorted(candidate.items()))
        if key not in seen:
            seen.add(key)
            unique.append(candidate)
    return [c for c in unique if theta0.contains_point(c)]


#: Solver counters worth aggregating across the cold per-witness solves
#: (mirrors what IncrementalLP totals on the incremental path).
_LP_COUNTER_KEYS = (
    "pivots", "phase1_pivots", "phase2_pivots", "dual_pivots",
    "degenerate_pivots", "bland_pivots", "refactorizations",
    "factorizations", "eta_pivots", "float_pivots", "float_factorizations",
)


def _accumulate_lp_stats(total: dict, stats: dict) -> None:
    for key in _LP_COUNTER_KEYS:
        value = stats.get(key)
        if value:
            total[key] = total.get(key, 0) + value
    for key, value in stats.items():
        if key.startswith("time_") and isinstance(value, float) and value > 0:
            total[key] = total.get(key, 0.0) + value
    max_eta = stats.get("max_eta", 0)
    if max_eta > total.get("max_eta", 0):
        total["max_eta"] = max_eta


def refute_threshold(old: ProgramLike, new: ProgramLike,
                     candidate: Numeric,
                     config: AnalysisConfig | None = None,
                     witnesses: Iterable[dict[str, int]] | None = None,
                     ) -> RefutationResult:
    """Try to prove that ``candidate`` is *not* a valid threshold.

    Sound for nondeterministic programs; complete only for deterministic
    ones (paper discussion after Theorem 4.3).
    """
    analyzer = DiffCostAnalyzer(old, new, config)
    old_invariants, new_invariants = analyzer.invariants()
    theta0 = Polyhedron(analyzer.combined_theta0())
    if witnesses is None:
        witnesses = default_witnesses(
            analyzer.old_system, analyzer.new_system, theta0
        )
    witnesses = list(witnesses)
    if not witnesses:
        return RefutationResult(
            status=AnalysisStatus.UNKNOWN,
            candidate=candidate,
            message="no witness candidates inside Theta0",
        )

    # Certificate constraints are witness-independent: build them once.
    fresh = FreshNameGenerator()
    new_templates = TemplateSet.build(
        analyzer.new_system, analyzer.config.degree, prefix="refute-new"
    )
    old_templates = TemplateSet.build(
        analyzer.old_system, analyzer.config.degree, prefix="refute-old"
    )
    constraints = collect_certificate_constraints(
        analyzer.new_system, new_invariants, new_templates, LOWER, fresh
    )
    constraints.extend(
        collect_certificate_constraints(
            analyzer.old_system, old_invariants, old_templates, UPPER, fresh
        )
    )

    # One encoding for the whole loop: the Handelman expansion is
    # witness-independent, only the objective changes per witness.
    # With ``lp_incremental`` off the loop reproduces the pre-LU
    # behaviour verbatim — re-encode and solve cold per witness — which
    # is the A/B baseline `BENCH_lp.json`'s refutation section tracks.
    exact = backend_is_exact(analyzer.config.lp_backend)
    incremental = analyzer.config.lp_incremental

    def encode_model() -> LPModel:
        model = LPModel()
        encoding_fresh = FreshNameGenerator()
        for constraint in constraints:
            encode_implication(
                constraint, model, encoding_fresh,
                analyzer.config.max_products,
            )
        return model

    inc = None
    backend = None
    shared_model = None
    if incremental:
        shared_model = encode_model()
        if exact:
            inc = IncrementalLP(shared_model)
        else:
            backend = get_backend(analyzer.config.lp_backend)
    else:
        backend = get_backend(analyzer.config.lp_backend)
    lp_stats: dict = {"incremental": incremental, "solves": 0}

    best_gap: Fraction | float | None = None
    best_witness: dict[str, int] | None = None
    best_solution = None
    for witness in witnesses:
        chi_at_witness = new_templates.at(
            analyzer.new_system.initial_location
        ).evaluate_program_vars(witness)
        phi_at_witness = old_templates.at(
            analyzer.old_system.initial_location
        ).evaluate_program_vars(witness)
        objective = chi_at_witness - phi_at_witness
        if inc is not None:
            solution = inc.maximize(objective)
        else:
            model = shared_model if shared_model is not None else (
                encode_model()
            )
            model.maximize(objective)
            solution = backend.solve(model)
            _accumulate_lp_stats(lp_stats, solution.stats)
        lp_stats["solves"] += 1
        if solution.status is not LPStatus.OPTIMAL:
            continue
        gap = objective.evaluate(
            {name: solution.value(name) for name in objective.symbols}
        ) if exact else -float(  # lint: allow[float-cast] float-LP branch only
            solution.objective_value  # objective was negated by maximize()
        )
        # Exact comparison: Fractions (and mixed Fraction/float) compare
        # exactly in Python; casting exact gaps through float could rank
        # two distinct rationals as equal and mis-pick the witness.
        if best_gap is None or gap > best_gap:
            best_gap = gap
            best_witness = witness
            best_solution = solution
    if inc is not None:
        for key, value in inc.stats.items():
            lp_stats.setdefault(key, value)

    if best_gap is None:
        return RefutationResult(
            status=AnalysisStatus.UNKNOWN,
            candidate=candidate,
            message="no refutation certificate found (LP infeasible)",
            lp_stats=lp_stats,
        )

    refuted = best_gap > candidate
    result = RefutationResult(
        status=AnalysisStatus.REFUTED if refuted else AnalysisStatus.UNKNOWN,
        candidate=candidate,
        witness_input=best_witness,
        guaranteed_difference=best_gap,
        anti_potential_new=extract_certificate(
            new_templates, best_solution, ANTI_POTENTIAL
        ),
        potential_old=extract_certificate(
            old_templates, best_solution, POTENTIAL
        ),
        lp_stats=lp_stats,
    )
    if not refuted:
        result.message = (
            f"best certified difference {best_gap} does not exceed "
            f"candidate {candidate}"
        )
    return result
