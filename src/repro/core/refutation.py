"""Threshold refutation via PFs and anti-PFs (Theorem 4.3).

Dual use of the machinery: an *anti*-potential for the **new** version
(lower bound on its cost) and a potential for the **old** version (upper
bound on its cost).  If for some input ``x ∈ Θ0``

    χ_new(ℓ0,x) − φ_old(ℓ0,x) > t

then every pair of runs on ``x`` differs by more than ``t``, so ``t`` is
not a threshold.  For a *fixed* witness input the left-hand side is
linear in the template symbols, so maximizing it is again an LP; we try
a set of witness candidates (box corners and the center of Θ0 by
default) and keep the best certified gap.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable

from repro.config import AnalysisConfig
from repro.core.constraints import (
    LOWER,
    UPPER,
    TemplateSet,
    collect_certificate_constraints,
)
from repro.core.diffcost import DiffCostAnalyzer, ProgramLike, extract_certificate
from repro.core.potentials import ANTI_POTENTIAL, POTENTIAL
from repro.core.results import AnalysisStatus, RefutationResult
from repro.handelman.encode import encode_implication
from repro.invariants.polyhedron import Polyhedron
from repro.lp.backend import backend_is_exact, get_backend
from repro.lp.model import LPModel
from repro.lp.solution import LPStatus
from repro.ts.system import COST_VAR, TransitionSystem
from repro.utils.naming import FreshNameGenerator
from repro.utils.rationals import Numeric


def default_witnesses(old_system: TransitionSystem,
                      new_system: TransitionSystem,
                      theta0: Polyhedron,
                      limit: int = 33) -> list[dict[str, int]]:
    """Candidate witness inputs: Θ0-box corners plus the box center.

    Variables without finite bounds default to 0.  Points violating Θ0
    (e.g. ordering side constraints) are filtered out.
    """
    variables = sorted(
        (set(old_system.variables) | set(new_system.variables)) - {COST_VAR}
    )
    choices: list[list[int]] = []
    for var in variables:
        interval = theta0.var_bounds(var)
        low = 0 if interval.lower is None else int(interval.lower)
        high = low if interval.upper is None else int(interval.upper)
        choices.append([low] if low == high else [low, high])

    candidates: list[dict[str, int]] = []

    def expand(index: int, current: dict[str, int]) -> None:
        if len(candidates) >= limit - 1:
            return
        if index == len(variables):
            candidates.append(dict(current))
            return
        for value in choices[index]:
            current[variables[index]] = value
            expand(index + 1, current)

    expand(0, {})
    center = {
        var: (values[0] + values[-1]) // 2
        for var, values in zip(variables, choices)
    }
    candidates.append(center)
    return [c for c in candidates if theta0.contains_point(c)]


def refute_threshold(old: ProgramLike, new: ProgramLike,
                     candidate: Numeric,
                     config: AnalysisConfig | None = None,
                     witnesses: Iterable[dict[str, int]] | None = None,
                     ) -> RefutationResult:
    """Try to prove that ``candidate`` is *not* a valid threshold.

    Sound for nondeterministic programs; complete only for deterministic
    ones (paper discussion after Theorem 4.3).
    """
    analyzer = DiffCostAnalyzer(old, new, config)
    old_invariants, new_invariants = analyzer.invariants()
    theta0 = Polyhedron(analyzer.combined_theta0())
    if witnesses is None:
        witnesses = default_witnesses(
            analyzer.old_system, analyzer.new_system, theta0
        )
    witnesses = list(witnesses)
    if not witnesses:
        return RefutationResult(
            status=AnalysisStatus.UNKNOWN,
            candidate=candidate,
            message="no witness candidates inside Theta0",
        )

    # Certificate constraints are witness-independent: build them once.
    fresh = FreshNameGenerator()
    new_templates = TemplateSet.build(
        analyzer.new_system, analyzer.config.degree, prefix="refute-new"
    )
    old_templates = TemplateSet.build(
        analyzer.old_system, analyzer.config.degree, prefix="refute-old"
    )
    constraints = collect_certificate_constraints(
        analyzer.new_system, new_invariants, new_templates, LOWER, fresh
    )
    constraints.extend(
        collect_certificate_constraints(
            analyzer.old_system, old_invariants, old_templates, UPPER, fresh
        )
    )

    backend = get_backend(analyzer.config.lp_backend)
    best_gap: Fraction | float | None = None
    best_witness: dict[str, int] | None = None
    best_solution = None
    for witness in witnesses:
        model = LPModel()
        encoding_fresh = FreshNameGenerator()
        for constraint in constraints:
            encode_implication(
                constraint, model, encoding_fresh, analyzer.config.max_products
            )
        chi_at_witness = new_templates.at(
            analyzer.new_system.initial_location
        ).evaluate_program_vars(witness)
        phi_at_witness = old_templates.at(
            analyzer.old_system.initial_location
        ).evaluate_program_vars(witness)
        model.maximize(chi_at_witness - phi_at_witness)
        solution = backend.solve(model)
        if solution.status is not LPStatus.OPTIMAL:
            continue
        gap = (chi_at_witness - phi_at_witness).evaluate(
            {name: solution.value(name)
             for name in (chi_at_witness - phi_at_witness).symbols}
        ) if backend_is_exact(analyzer.config.lp_backend) else -float(
            solution.objective_value  # objective was negated by maximize()
        )
        if best_gap is None or float(gap) > float(best_gap):
            best_gap = gap
            best_witness = witness
            best_solution = solution

    if best_gap is None:
        return RefutationResult(
            status=AnalysisStatus.UNKNOWN,
            candidate=candidate,
            message="no refutation certificate found (LP infeasible)",
        )

    refuted = float(best_gap) > float(candidate)
    result = RefutationResult(
        status=AnalysisStatus.REFUTED if refuted else AnalysisStatus.UNKNOWN,
        candidate=candidate,
        witness_input=best_witness,
        guaranteed_difference=best_gap,
        anti_potential_new=extract_certificate(
            new_templates, best_solution, ANTI_POTENTIAL
        ),
        potential_old=extract_certificate(
            old_templates, best_solution, POTENTIAL
        ),
    )
    if not refuted:
        result.message = (
            f"best certified difference {best_gap} does not exceed "
            f"candidate {candidate}"
        )
    return result
