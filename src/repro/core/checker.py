"""Independent verification of synthesized certificates.

Two layers of checking:

1. **Run-based** (``check_*``): on concrete inputs sampled from Θ0, the
   exhaustive :class:`~repro.ts.interpreter.CostSearch` computes the true
   ``CostInf``/``CostSup`` and the checker asserts the Theorem 4.1 / 4.2
   claims — ``φ(ℓ0,x) ≥ CostSup``, ``χ(ℓ0,x) ≤ CostInf`` and
   ``φ_new − χ_old ≤ t`` — plus the local preservation conditions along
   sampled runs.
2. **State-based** (``check_conditions_on_states``): the defining PF /
   anti-PF conditions on explicitly enumerated reachable states.

Float-backend certificates carry LP rounding noise, so all comparisons
take a configurable tolerance (0 for the exact backend).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.core.potentials import PotentialFunction
from repro.errors import CertificateError, InterpreterError
from repro.invariants.polyhedron import Polyhedron
from repro.ts.interpreter import CostSearch, Interpreter
from repro.ts.system import COST_VAR, NondetUpdate, TransitionSystem


@dataclass
class CheckReport:
    """Outcome of a certificate check."""

    checked_inputs: int = 0
    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True iff no violation was found."""
        return not self.violations

    def require_ok(self) -> None:
        """Raise :class:`CertificateError` when violations were found."""
        if not self.ok:
            summary = "; ".join(self.violations[:5])
            raise CertificateError(
                f"certificate check failed ({len(self.violations)} "
                f"violations): {summary}"
            )


def sample_inputs(system: TransitionSystem, count: int,
                  rng: random.Random,
                  max_range: int = 6) -> list[dict[str, int]]:
    """Sample inputs from Θ0, shrunk so exhaustive search stays cheap.

    Each variable is drawn from the low end of its Θ0 interval (at most
    ``max_range`` wide); rejection sampling handles non-box Θ0
    constraints such as orderings.
    """
    theta0 = Polyhedron(system.init_constraint)
    variables = [v for v in system.state_variables]
    ranges: dict[str, tuple[int, int]] = {}
    for var in variables:
        interval = theta0.var_bounds(var)
        low = 0 if interval.lower is None else int(interval.lower)
        high = low + max_range if interval.upper is None else int(interval.upper)
        high = min(high, low + max_range)
        ranges[var] = (low, high)

    samples: list[dict[str, int]] = []
    attempts = 0
    while len(samples) < count and attempts < count * 50:
        attempts += 1
        candidate = {
            var: rng.randint(low, high) for var, (low, high) in ranges.items()
        }
        if theta0.contains_point(candidate):
            samples.append(candidate)
    return samples


class CertificateChecker:
    """Checks PFs / anti-PFs and differential results on concrete data."""

    def __init__(self, tolerance: float = 1e-6, max_states: int = 500_000):
        self.tolerance = tolerance
        self.max_states = max_states

    # -- single certificates -------------------------------------------------

    def check_potential(self, certificate: PotentialFunction,
                        inputs: Iterable[Mapping[str, int]]) -> CheckReport:
        """Check the Theorem 4.1 claim and local conditions on inputs."""
        report = CheckReport()
        system = certificate.system
        search = CostSearch(system, max_states=self.max_states)
        for inputs_value in inputs:
            report.checked_inputs += 1
            try:
                cost_inf, cost_sup = search.cost_bounds(inputs_value)
            except InterpreterError as error:
                report.violations.append(f"search failed on {inputs_value}: {error}")
                continue
            initial = float(certificate.initial_value(inputs_value))
            if certificate.kind == "potential":
                if initial < cost_sup - self.tolerance:
                    report.violations.append(
                        f"phi(l0,{dict(inputs_value)}) = {initial} < "
                        f"CostSup = {cost_sup}"
                    )
            else:
                if initial > cost_inf + self.tolerance:
                    report.violations.append(
                        f"chi(l0,{dict(inputs_value)}) = {initial} > "
                        f"CostInf = {cost_inf}"
                    )
            self._check_along_runs(certificate, inputs_value, report)
        return report

    def _check_along_runs(self, certificate: PotentialFunction,
                          inputs_value: Mapping[str, int],
                          report: CheckReport) -> None:
        """Local preservation/termination conditions along concrete runs
        (several nondeterminism resolutions)."""
        system = certificate.system
        interpreter = Interpreter(system)
        rng = random.Random(17)
        choosers = [None, None, None]  # three random resolutions
        for chooser_index in range(len(choosers)):
            state = interpreter.initial_state(inputs_value)
            for _ in range(100_000):
                if interpreter.is_terminal(state):
                    if not certificate.check_terminal(
                            state.values(), self.tolerance):
                        report.violations.append(
                            f"terminal condition fails at {state}"
                        )
                    break
                options = interpreter.enabled(state)
                if not options:
                    break  # blocked run: no condition applies
                transition = rng.choice(options)
                nondet = _random_nondet_values(transition, state.values(), rng)
                successor = interpreter.apply(state, transition, nondet)
                if not certificate.check_transition(
                        state.location, successor.location,
                        state.values(), successor.values(), self.tolerance):
                    report.violations.append(
                        f"preservation fails on {transition.name} at {state}"
                    )
                    break
                state = successor

    # -- differential results ----------------------------------------------------

    def check_diffcost(self, old_system: TransitionSystem,
                       new_system: TransitionSystem,
                       threshold: float,
                       potential_new: PotentialFunction,
                       anti_potential_old: PotentialFunction,
                       inputs: Iterable[Mapping[str, int]]) -> CheckReport:
        """Check the full Theorem 4.2 chain on concrete inputs."""
        report = CheckReport()
        old_search = CostSearch(old_system, max_states=self.max_states)
        new_search = CostSearch(new_system, max_states=self.max_states)
        for inputs_value in inputs:
            report.checked_inputs += 1
            old_inputs = {
                v: inputs_value.get(v, 0) for v in old_system.state_variables
            }
            new_inputs = {
                v: inputs_value.get(v, 0) for v in new_system.state_variables
            }
            try:
                old_inf, _old_sup = old_search.cost_bounds(old_inputs)
                _new_inf, new_sup = new_search.cost_bounds(new_inputs)
            except InterpreterError as error:
                report.violations.append(f"search failed: {error}")
                continue
            phi = float(potential_new.initial_value(new_inputs))
            chi = float(anti_potential_old.initial_value(old_inputs))
            if phi < new_sup - self.tolerance:
                report.violations.append(
                    f"phi_new({new_inputs}) = {phi} < CostSup = {new_sup}"
                )
            if chi > old_inf + self.tolerance:
                report.violations.append(
                    f"chi_old({old_inputs}) = {chi} > CostInf = {old_inf}"
                )
            if phi - chi > float(threshold) + self.tolerance:
                report.violations.append(
                    f"phi - chi = {phi - chi} exceeds threshold {threshold}"
                )
            if new_sup - old_inf > float(threshold) + self.tolerance:
                report.violations.append(
                    f"actual difference {new_sup - old_inf} exceeds "
                    f"threshold {threshold} on {dict(inputs_value)}"
                )
        return report


def certify_implications_exact(constraints, assignment,
                               max_products: int) -> list[str]:
    """Exactly certify instantiated implication constraints.

    ``assignment`` maps every template symbol (including the threshold)
    to a :class:`fractions.Fraction`.  For each implication the
    (now-concrete) consequent polynomial is re-derived and a small exact
    LP searches for nonnegative Handelman multipliers witnessing it.
    Returns the names of implications that could NOT be certified (empty
    list = the whole certificate is exactly verified).

    Note: failure to certify is not a disproof — the rationalized values
    may sit exactly on the feasibility boundary — but success is a
    machine-checked proof independent of the float solver.
    """
    from repro.handelman.encode import encode_implication
    from repro.lp.model import LPModel
    from repro.lp.revised import RevisedSimplexBackend
    from repro.lp.solution import LPStatus
    from repro.poly.template import TemplatePolynomial
    from repro.utils.naming import FreshNameGenerator

    solver = RevisedSimplexBackend()
    failures: list[str] = []
    for constraint in constraints:
        concrete = constraint.consequent.instantiate(
            _total_assignment(constraint.consequent.symbols, assignment)
        )
        instantiated = type(constraint)(
            premise=constraint.premise,
            consequent=TemplatePolynomial.from_polynomial(concrete),
            name=constraint.name,
        )
        model = LPModel()
        encode_implication(
            instantiated, model, FreshNameGenerator(), max_products
        )
        solution = solver.solve(model)
        if solution.status is not LPStatus.OPTIMAL:
            failures.append(constraint.name)
    return failures


def _total_assignment(symbols, assignment):
    from fractions import Fraction

    return {name: assignment.get(name, Fraction(0)) for name in symbols}


def _random_nondet_values(transition, valuation, rng) -> dict[str, int]:
    values: dict[str, int] = {}
    for var, update in transition.updates.items():
        if not isinstance(update, NondetUpdate):
            continue
        low = 0 if update.lower is None else int(update.lower.evaluate(valuation))
        high = low if update.upper is None else int(update.upper.evaluate(valuation))
        if update.lower is None and update.upper is not None:
            low = high
        values[var] = rng.randint(min(low, high), max(low, high))
    return values
