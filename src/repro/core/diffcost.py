"""The simultaneous PF / anti-PF / threshold synthesis (paper Section 5).

:class:`DiffCostAnalyzer` wires the whole pipeline together:

1. affine invariants for both program versions (or user-supplied maps);
2. symbolic templates per location plus the threshold symbol ``t``;
3. PF constraints on the new version, anti-PF constraints on the old
   version, and the differential cost constraint over Θ0;
4. Handelman conversion to an LP and a solve with ``minimize t``.

The analyzer also exposes the machinery reused by the symbolic-bound,
refutation and single-program entry points.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Iterable

from repro.config import DEFAULT_CONFIG, AnalysisConfig
from repro.core.constraints import (
    LOWER,
    UPPER,
    TemplateSet,
    collect_certificate_constraints,
    differential_constraint,
)
from repro.core.potentials import (
    ANTI_POTENTIAL,
    POTENTIAL,
    PotentialFunction,
)
from repro.core.results import AnalysisStatus, DiffCostResult
from repro.errors import AnalysisError
from repro.handelman.encode import ImplicationConstraint, encode_implication
from repro.invariants.generator import InvariantMap, generate_invariants
from repro.lang.lower import LoweredProgram
from repro.lp.backend import get_backend
from repro.lp.dual import IncrementalLP
from repro.lp.model import LPModel
from repro.lp.solution import LPSolution, LPStatus
from repro.poly.linexpr import AffineExpr
from repro.poly.polynomial import Polynomial
from repro.poly.template import TemplatePolynomial
from repro.ts.guards import LinIneq
from repro.ts.system import TransitionSystem
from repro.utils.naming import FreshNameGenerator
from repro.utils.rationals import Numeric, as_fraction, rationalize
from repro.utils.timers import Stopwatch

THRESHOLD_SYMBOL = "t"

ProgramLike = TransitionSystem | LoweredProgram


@dataclass
class ThresholdSearchResult:
    """Outcome of probing a set of threshold caps (see
    :meth:`DiffCostAnalyzer.threshold_search`)."""

    #: The minimized threshold under the loosest probed cap (``None``
    #: when even the loosest cap admits no certificate).
    threshold: Fraction | None
    #: cap -> does a certificate with ``t <= cap`` exist?
    feasible: dict[Fraction, bool] = field(default_factory=dict)
    #: Aggregated :class:`~repro.lp.dual.IncrementalLP` counters.
    lp_stats: dict = field(default_factory=dict)

    def tightest_feasible(self) -> Fraction | None:
        """The smallest cap that still admits a certificate."""
        admitted = [cap for cap, ok in self.feasible.items() if ok]
        return min(admitted) if admitted else None


def _unpack(program: ProgramLike) -> tuple[TransitionSystem, dict]:
    if isinstance(program, LoweredProgram):
        return program.system, dict(program.invariant_hints)
    if isinstance(program, TransitionSystem):
        return program, {}
    raise AnalysisError(
        f"expected a TransitionSystem or LoweredProgram, got {program!r}"
    )


class DiffCostAnalyzer:
    """Synthesizes a differential threshold for a program pair.

    ``old`` and ``new`` may be :class:`TransitionSystem` or
    :class:`~repro.lang.lower.LoweredProgram` (whose ``invariant(...)``
    hints are then used during invariant generation).
    """

    def __init__(self, old: ProgramLike, new: ProgramLike,
                 config: AnalysisConfig | None = None,
                 old_invariants: InvariantMap | None = None,
                 new_invariants: InvariantMap | None = None):
        self.config = config or DEFAULT_CONFIG
        self.old_system, self._old_hints = _unpack(old)
        self.new_system, self._new_hints = _unpack(new)
        self._old_invariants = old_invariants
        self._new_invariants = new_invariants
        self.stopwatch = Stopwatch()

    # -- pipeline pieces -------------------------------------------------

    def invariants(self) -> tuple[InvariantMap, InvariantMap]:
        """Compute (and cache) the invariant maps of both versions."""
        with self.stopwatch.phase("invariants"):
            if self._old_invariants is None:
                self._old_invariants = generate_invariants(
                    self.old_system,
                    hints=self._old_hints,
                    widening_delay=self.config.widening_delay,
                    narrowing_passes=self.config.narrowing_passes,
                )
            if self._new_invariants is None:
                self._new_invariants = generate_invariants(
                    self.new_system,
                    hints=self._new_hints,
                    widening_delay=self.config.widening_delay,
                    narrowing_passes=self.config.narrowing_passes,
                )
        return self._old_invariants, self._new_invariants

    def combined_theta0(self) -> tuple[LinIneq, ...]:
        """Θ0 of the pair: the union of both versions' constraints.

        The paper requires both versions to share Θ0; in practice the
        versions may declare different local variables (zero-initialized
        by the frontend), so the union keeps the shared input box plus
        each side's local facts.
        """
        seen: set[LinIneq] = set()
        combined: list[LinIneq] = []
        for ineq in self.old_system.init_constraint + self.new_system.init_constraint:
            canonical = ineq.normalize()
            if canonical not in seen:
                seen.add(canonical)
                combined.append(canonical)
        return tuple(combined)

    def build_constraints(self, bound: TemplatePolynomial) -> tuple[
            TemplateSet, TemplateSet, list[ImplicationConstraint]]:
        """Steps 1-2: templates plus all implication constraints."""
        old_invariants, new_invariants = self.invariants()
        with self.stopwatch.phase("constraints"):
            fresh = FreshNameGenerator()
            new_templates = TemplateSet.build(
                self.new_system, self.config.degree, prefix="new"
            )
            old_templates = TemplateSet.build(
                self.old_system, self.config.degree, prefix="old"
            )
            constraints = collect_certificate_constraints(
                self.new_system, new_invariants, new_templates, UPPER, fresh
            )
            constraints.extend(
                collect_certificate_constraints(
                    self.old_system, old_invariants, old_templates, LOWER, fresh
                )
            )
            constraints.append(
                differential_constraint(
                    self.combined_theta0(),
                    new_templates.at(self.new_system.initial_location),
                    old_templates.at(self.old_system.initial_location),
                    bound,
                )
            )
        return old_templates, new_templates, constraints

    def encode(self, constraints: list[ImplicationConstraint]) -> LPModel:
        """Step 3: Handelman conversion of every implication."""
        with self.stopwatch.phase("encoding"):
            model = LPModel()
            fresh = FreshNameGenerator()
            for constraint in constraints:
                encode_implication(
                    constraint, model, fresh, self.config.max_products
                )
        return model

    def solve(self, model: LPModel) -> LPSolution:
        """Step 4: LP solve with the configured backend."""
        from repro.obs import span

        with self.stopwatch.phase("lp"):
            backend = get_backend(self.config.lp_backend)
            with span("lp-solve", cat="lp",
                      args={"backend": self.config.lp_backend,
                            "variables": model.num_variables,
                            "constraints": model.num_constraints}):
                return backend.solve(model)

    # -- main entry point -------------------------------------------------------

    def compute_threshold(self) -> DiffCostResult:
        """Synthesize and minimize a differential threshold."""
        bound = TemplatePolynomial.from_symbol(THRESHOLD_SYMBOL)
        old_templates, new_templates, constraints = self.build_constraints(bound)
        model = self.encode(constraints)
        model.minimize(AffineExpr.variable(THRESHOLD_SYMBOL))
        solution = self.solve(model)

        result = DiffCostResult(
            status=AnalysisStatus.UNKNOWN,
            lp_variables=model.num_variables,
            lp_constraints=model.num_constraints,
        )
        if solution.status is not LPStatus.OPTIMAL:
            result.message = (
                f"LP {solution.status.value}: no certificate of the "
                f"requested shape (d={self.config.degree}, "
                f"K={self.config.max_products}); {solution.message}"
            )
            result.timings = self.stopwatch.as_dict()
            return result

        result.status = AnalysisStatus.THRESHOLD
        result.threshold = solution.value(THRESHOLD_SYMBOL)
        result.potential_new = extract_certificate(
            new_templates, solution, POTENTIAL
        )
        result.anti_potential_old = extract_certificate(
            old_templates, solution, ANTI_POTENTIAL
        )
        if self.config.check_certificates:
            self._check_result(result)
        result.timings = self.stopwatch.as_dict()
        return result

    def threshold_search(self, candidates: Iterable[Numeric]
                         ) -> ThresholdSearchResult:
        """Probe which caps ``t <= c`` admit a certificate, sharing one
        encoding and one factorized basis across every probe.

        The loosest candidate solves cold (and yields the minimized
        threshold); each tighter candidate is an rhs patch on the
        threshold variable's bound row followed by a dual-simplex
        re-solve from the previous optimal basis — no re-encoding, no
        fresh factorization (see :class:`~repro.lp.dual.IncrementalLP`).
        Feasibility is monotone in the cap, so probing stops at the
        first infeasible candidate (every tighter cap is recorded
        infeasible without a solve); probed caps are still *verified*
        exactly by the LP rather than inferred from the minimum.

        Always exact — probes go through the incremental exact solver
        regardless of ``config.lp_backend``.
        """
        caps = sorted({as_fraction(c) for c in candidates}, reverse=True)
        if not caps:
            raise AnalysisError("threshold_search needs at least one "
                                "candidate cap")
        bound = TemplatePolynomial.from_symbol(THRESHOLD_SYMBOL)
        _, _, constraints = self.build_constraints(bound)
        model = self.encode(constraints)
        model.add_variable(THRESHOLD_SYMBOL, upper=caps[0])
        model.minimize(AffineExpr.variable(THRESHOLD_SYMBOL))
        feasible: dict[Fraction, bool] = {}
        threshold: Fraction | None = None
        with self.stopwatch.phase("lp"):
            incremental = IncrementalLP(model)
            for index, cap in enumerate(caps):
                solution = (incremental.solve() if index == 0
                            else incremental.update_upper(
                                THRESHOLD_SYMBOL, cap))
                admitted = solution.status is LPStatus.OPTIMAL
                feasible[cap] = admitted
                if admitted and threshold is None:
                    threshold = solution.value(THRESHOLD_SYMBOL)
                if not admitted:
                    for tighter in caps[index + 1:]:
                        feasible[tighter] = False
                    break
        return ThresholdSearchResult(
            threshold=threshold, feasible=feasible,
            lp_stats=dict(incremental.stats),
        )

    def _check_result(self, result: DiffCostResult) -> None:
        """Run-based certificate check on sampled Θ0 inputs (opt-in via
        ``AnalysisConfig.check_certificates``)."""
        import random

        from repro.core.checker import CertificateChecker, sample_inputs

        with self.stopwatch.phase("checking"):
            checker = CertificateChecker(
                tolerance=self.config.check_tolerance
            )
            rng = random.Random(self.config.check_seed)
            inputs = sample_inputs(
                self.new_system, self.config.check_samples, rng,
                max_range=self.config.check_max_range,
            )
            report = checker.check_diffcost(
                self.old_system, self.new_system, float(result.threshold),
                result.potential_new, result.anti_potential_old, inputs,
            )
            result.check_report = report
            if not report.ok:
                result.message = (
                    f"certificate check found {len(report.violations)} "
                    f"violation(s): {report.violations[0]}"
                )


def extract_certificate(templates: TemplateSet, solution: LPSolution,
                        kind: str) -> PotentialFunction:
    """Instantiate a template set with LP solution values.

    Float backend values are rationalized; coefficients smaller than
    1e-9 are snapped to zero to keep certificates readable.
    """
    assignment: dict[str, Fraction] = {}
    for symbol in templates.symbols:
        value = solution.value(symbol)
        if isinstance(value, Fraction):
            assignment[symbol] = value
        else:
            value = float(value)
            assignment[symbol] = (
                Fraction(0) if abs(value) < 1e-9 else rationalize(value)
            )
    mapping = {
        location: template.instantiate(assignment)
        for location, template in templates.templates.items()
    }
    return PotentialFunction(templates.system, mapping, kind)


def analyze_diffcost(old: ProgramLike, new: ProgramLike,
                     config: AnalysisConfig | None = None) -> DiffCostResult:
    """One-call convenience wrapper around :class:`DiffCostAnalyzer`."""
    return DiffCostAnalyzer(old, new, config).compute_threshold()
