"""Proving symbolic polynomial bounds on the cost difference (Section 5).

Instead of a constant threshold ``t``, a polynomial ``p(x)`` over the
program inputs is verified:

    ∀x ∈ Θ0. CostSup_new(ℓ0,x) − CostInf_old(ℓ0,x) ≤ p(x)

This drops the minimization objective (polynomials over a set of inputs
have no canonical optimization order — the paper's motivation for
thresholds) and embeds ``p`` in the differential constraint.
"""

from __future__ import annotations

from repro.config import AnalysisConfig
from repro.core.diffcost import (
    DiffCostAnalyzer,
    ProgramLike,
    extract_certificate,
)
from repro.core.potentials import ANTI_POTENTIAL, POTENTIAL
from repro.core.results import AnalysisStatus, BoundProofResult
from repro.errors import AnalysisError
from repro.lp.solution import LPStatus
from repro.poly.polynomial import Polynomial
from repro.poly.template import TemplatePolynomial


def prove_symbolic_bound(old: ProgramLike, new: ProgramLike,
                         bound: Polynomial,
                         config: AnalysisConfig | None = None) -> BoundProofResult:
    """Attempt to prove ``cost_new − cost_old ≤ bound(x)`` for all
    inputs in Θ0.

    The template degree must be at least ``bound``'s degree (the paper's
    requirement d ≥ deg p); a too-small configured degree is raised as
    an error rather than silently failing.
    """
    analyzer = DiffCostAnalyzer(old, new, config)
    if bound.degree > analyzer.config.degree:
        raise AnalysisError(
            f"template degree {analyzer.config.degree} is smaller than the "
            f"bound's degree {bound.degree}; raise AnalysisConfig.degree"
        )
    unknown_vars = bound.variables - set(analyzer.old_system.variables).union(
        analyzer.new_system.variables
    )
    if unknown_vars:
        raise AnalysisError(
            f"bound mentions unknown variables {sorted(unknown_vars)}"
        )

    embedded = TemplatePolynomial.from_polynomial(bound)
    old_templates, new_templates, constraints = analyzer.build_constraints(embedded)
    model = analyzer.encode(constraints)
    # Pure feasibility: any solution is a proof.
    solution = analyzer.solve(model)

    if solution.status is not LPStatus.OPTIMAL:
        return BoundProofResult(
            status=AnalysisStatus.UNKNOWN,
            bound=bound,
            message=(
                f"LP {solution.status.value}: no certificate of the requested "
                f"shape; the bound may still hold"
            ),
        )
    return BoundProofResult(
        status=AnalysisStatus.PROVED,
        bound=bound,
        potential_new=extract_certificate(new_templates, solution, POTENTIAL),
        anti_potential_old=extract_certificate(
            old_templates, solution, ANTI_POTENTIAL
        ),
    )
