"""Template construction and constraint collection (paper Steps 1-2).

For each location a symbolic polynomial template of degree ≤ d is fixed;
the defining conditions of PFs / anti-PFs are collected as
:class:`~repro.handelman.encode.ImplicationConstraint` objects over the
invariant-guard premises, with nondeterministic updates replaced by
fresh universally quantified variables bounded in the premise.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.handelman.encode import ImplicationConstraint
from repro.invariants.generator import InvariantMap
from repro.invariants.polyhedron import Polyhedron
from repro.poly.polynomial import Polynomial
from repro.poly.template import TemplatePolynomial
from repro.ts.guards import LinIneq
from repro.ts.system import (
    COST_VAR,
    Location,
    NondetUpdate,
    TransitionSystem,
)
from repro.utils.naming import FreshNameGenerator

UPPER = "upper"
LOWER = "lower"


@dataclass
class TemplateSet:
    """Symbolic templates, one per location of a system."""

    system: TransitionSystem
    degree: int
    prefix: str
    templates: dict[Location, TemplatePolynomial] = field(default_factory=dict)

    @staticmethod
    def build(system: TransitionSystem, degree: int,
              prefix: str) -> "TemplateSet":
        """Fix a degree-``degree`` template for every location.

        Template symbols are named ``u[prefix][location][monomial]`` so
        LP instances are self-describing.
        """
        templates: dict[Location, TemplatePolynomial] = {}
        variables = list(system.state_variables)
        for location in system.locations:
            templates[location] = TemplatePolynomial.fresh(
                variables,
                degree,
                name_of=lambda mono, loc=location.name: (
                    f"u[{prefix}][{loc}][{mono}]"
                ),
            )
        return TemplateSet(system, degree, prefix, templates)

    def at(self, location: Location) -> TemplatePolynomial:
        """Template at ``location``."""
        return self.templates[location]

    @property
    def symbols(self) -> frozenset[str]:
        """All template symbols across locations."""
        names: set[str] = set()
        for template in self.templates.values():
            names.update(template.symbols)
        return frozenset(names)


def collect_certificate_constraints(
        system: TransitionSystem,
        invariants: InvariantMap,
        templates: TemplateSet,
        kind: str,
        fresh: FreshNameGenerator) -> list[ImplicationConstraint]:
    """The PF (``kind="upper"``) or anti-PF (``kind="lower"``)
    constraints of the paper's Step 2.

    - Preservation at every transition, with the invariant-plus-guard
      premise; transitions with an infeasible premise (unreachable by
      the invariant) are skipped, which is sound and more permissive
      than encoding a vacuous implication.
    - The termination condition at the terminal location.
    """
    constraints: list[ImplicationConstraint] = []

    for transition in system.transitions:
        if (transition.source == system.terminal_location
                and transition.is_identity()):
            continue  # the paper's terminal self-loop is trivially fine
        source_invariant = invariants.at(transition.source)
        if source_invariant.is_bottom():
            continue  # unreachable source
        premise: list[LinIneq] = list(source_invariant.ineqs)
        premise.extend(transition.guard)
        if Polyhedron(premise).is_empty():
            continue  # guard contradicts the invariant: vacuous

        substitution: dict[str, Polynomial] = {}
        for var, update in transition.updates.items():
            if var == COST_VAR:
                continue
            if isinstance(update, NondetUpdate):
                fresh_var = fresh.fresh(f"nd[{var}]")
                fresh_poly = Polynomial.variable(fresh_var)
                substitution[var] = fresh_poly
                if update.lower is not None:
                    premise.append(LinIneq.geq(fresh_poly, update.lower))
                if update.upper is not None:
                    premise.append(LinIneq.leq(fresh_poly, update.upper))
            else:
                substitution[var] = update

        post_template = templates.at(transition.target).substitute(substitution)
        pre_template = templates.at(transition.source)
        delta = transition.cost_delta()
        if kind == UPPER:
            # φ(ℓ,x) - φ(ℓ',Up(x)) - Δcost >= 0
            consequent = pre_template - post_template - delta
        elif kind == LOWER:
            # χ(ℓ',Up(x)) + Δcost - χ(ℓ,x) >= 0
            consequent = post_template + delta - pre_template
        else:
            raise ValueError(f"unknown certificate kind {kind!r}")
        constraints.append(
            ImplicationConstraint(
                premise=tuple(premise),
                consequent=consequent,
                name=f"{templates.prefix}.{kind}.{transition.name}",
            )
        )

    terminal = system.terminal_location
    terminal_invariant = invariants.at(terminal)
    if not terminal_invariant.is_bottom():
        terminal_template = templates.at(terminal)
        consequent = (
            terminal_template if kind == UPPER else -terminal_template
        )
        constraints.append(
            ImplicationConstraint(
                premise=terminal_invariant.ineqs,
                consequent=consequent,
                name=f"{templates.prefix}.{kind}.terminal",
            )
        )
    return constraints


def differential_constraint(
        theta0: tuple[LinIneq, ...],
        new_initial_template: TemplatePolynomial,
        old_initial_template: TemplatePolynomial,
        bound: TemplatePolynomial,
        name: str = "diffcost") -> ImplicationConstraint:
    """The differential cost constraint of Step 2:

        x ∈ Θ0  ⇒  bound(x) - φ_new(ℓ0,x) + χ_old(ℓ0,x) >= 0

    ``bound`` is the symbolic threshold ``t`` for the DiffCost problem,
    or an arbitrary (embedded) polynomial for symbolic bound proving.
    """
    consequent = bound - new_initial_template + old_initial_template
    return ImplicationConstraint(
        premise=tuple(theta0),
        consequent=consequent,
        name=name,
    )
