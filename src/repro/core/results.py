"""Result dataclasses for the analysis entry points."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from fractions import Fraction

from repro.core.potentials import PotentialFunction
from repro.poly.polynomial import Polynomial
from repro.utils.rationals import snap_to_int


class AnalysisStatus(enum.Enum):
    """Outcome of a synthesis attempt."""

    THRESHOLD = "threshold"    # a value / bound was synthesized
    PROVED = "proved"          # a given bound was verified
    REFUTED = "refuted"        # a candidate threshold was refuted
    UNKNOWN = "unknown"        # the LP was infeasible (paper's ✗)


@dataclass
class DiffCostResult:
    """Result of threshold synthesis for a program pair."""

    status: AnalysisStatus
    threshold: float | Fraction | None = None
    potential_new: PotentialFunction | None = None
    anti_potential_old: PotentialFunction | None = None
    lp_variables: int = 0
    lp_constraints: int = 0
    timings: dict[str, float] = field(default_factory=dict)
    message: str = ""
    # Populated when AnalysisConfig.check_certificates is on: the
    # run-based check report (repro.core.checker.CheckReport).
    check_report: object | None = None

    @property
    def is_threshold(self) -> bool:
        """True iff a threshold was computed."""
        return self.status is AnalysisStatus.THRESHOLD

    @property
    def threshold_display(self) -> float | int | Fraction | None:
        """Threshold snapped to an integer when numerically integral
        (for reporting, mirroring the paper's Table 1 values)."""
        if self.threshold is None:
            return None
        return snap_to_int(self.threshold)

    def __str__(self) -> str:
        if self.is_threshold:
            return f"threshold t = {self.threshold_display}"
        return f"{self.status.value}: {self.message}"


@dataclass
class BoundProofResult:
    """Result of proving a symbolic polynomial bound (Section 5)."""

    status: AnalysisStatus
    bound: Polynomial | None = None
    potential_new: PotentialFunction | None = None
    anti_potential_old: PotentialFunction | None = None
    message: str = ""

    @property
    def is_proved(self) -> bool:
        """True iff the bound was verified."""
        return self.status is AnalysisStatus.PROVED


@dataclass
class RefutationResult:
    """Result of threshold refutation (Theorem 4.3)."""

    status: AnalysisStatus
    candidate: float | Fraction | None = None
    witness_input: dict[str, int] | None = None
    guaranteed_difference: float | Fraction | None = None
    anti_potential_new: PotentialFunction | None = None
    potential_old: PotentialFunction | None = None
    message: str = ""
    #: LP work done across the witness loop (solves, factorizations,
    #: eta/refactor counters, whether the incremental path ran) — what
    #: the perf harness compares between incremental and cold runs.
    lp_stats: dict = field(default_factory=dict)

    @property
    def is_refuted(self) -> bool:
        """True iff the candidate threshold was proven exceedable."""
        return self.status is AnalysisStatus.REFUTED

    def __str__(self) -> str:
        if self.is_refuted:
            return (
                f"t = {self.candidate} refuted: difference >= "
                f"{snap_to_int(self.guaranteed_difference)} on input "
                f"{self.witness_input}"
            )
        return f"{self.status.value}: {self.message}"


@dataclass
class SingleProgramResult:
    """Result of single-program bound synthesis with precision
    guarantees (Section 7, Theorem 7.1)."""

    status: AnalysisStatus
    precision: float | Fraction | None = None
    upper: PotentialFunction | None = None
    lower: PotentialFunction | None = None
    message: str = ""

    @property
    def is_bounded(self) -> bool:
        """True iff bounds with a precision guarantee were computed."""
        return self.status is AnalysisStatus.THRESHOLD

    def bounds_at(self, valuation: dict[str, int]) -> tuple[Fraction, Fraction]:
        """``(lower, upper)`` cost bounds for a concrete input."""
        assert self.lower is not None and self.upper is not None
        return (
            self.lower.initial_value(valuation),
            self.upper.initial_value(valuation),
        )

    def __str__(self) -> str:
        if self.is_bounded:
            return f"bounds with precision gap p = {snap_to_int(self.precision)}"
        return f"{self.status.value}: {self.message}"
