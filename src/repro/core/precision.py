"""Single-program cost bounds with precision guarantees (Section 7).

Simultaneously synthesize a PF ``φ`` (upper bound) and an anti-PF ``χ``
(lower bound) for *one* program, together with a value ``p`` minimized
subject to

    ∀x ∈ Θ0.  φ(ℓ0,x) − χ(ℓ0,x) ≤ p

By Theorem 7.1, ``p`` bounds the distance of either bound from the true
cost of any run — a precision guarantee no prior unary cost analysis
provides.
"""

from __future__ import annotations

from repro.config import DEFAULT_CONFIG, AnalysisConfig
from repro.core.constraints import (
    LOWER,
    UPPER,
    TemplateSet,
    collect_certificate_constraints,
    differential_constraint,
)
from repro.core.diffcost import ProgramLike, _unpack, extract_certificate
from repro.core.potentials import ANTI_POTENTIAL, POTENTIAL
from repro.core.results import AnalysisStatus, SingleProgramResult
from repro.handelman.encode import encode_implication
from repro.invariants.generator import InvariantMap, generate_invariants
from repro.lp.backend import get_backend
from repro.lp.model import LPModel
from repro.lp.solution import LPStatus
from repro.poly.linexpr import AffineExpr
from repro.poly.template import TemplatePolynomial
from repro.utils.naming import FreshNameGenerator

PRECISION_SYMBOL = "p"


def analyze_single_program(program: ProgramLike,
                           config: AnalysisConfig | None = None,
                           invariants: InvariantMap | None = None,
                           ) -> SingleProgramResult:
    """Compute upper/lower cost bounds with a minimized precision gap."""
    config = config or DEFAULT_CONFIG
    system, hints = _unpack(program)
    if invariants is None:
        invariants = generate_invariants(
            system,
            hints=hints,
            widening_delay=config.widening_delay,
            narrowing_passes=config.narrowing_passes,
        )

    fresh = FreshNameGenerator()
    upper_templates = TemplateSet.build(system, config.degree, prefix="ub")
    lower_templates = TemplateSet.build(system, config.degree, prefix="lb")
    constraints = collect_certificate_constraints(
        system, invariants, upper_templates, UPPER, fresh
    )
    constraints.extend(
        collect_certificate_constraints(
            system, invariants, lower_templates, LOWER, fresh
        )
    )
    # Precision constraint: x ∈ Θ0 ⇒ p − φ(ℓ0,x) + χ(ℓ0,x) >= 0.  This
    # is the differential constraint applied to the program against
    # itself, which is exactly how Section 7 derives it.
    constraints.append(
        differential_constraint(
            tuple(system.init_constraint),
            upper_templates.at(system.initial_location),
            lower_templates.at(system.initial_location),
            TemplatePolynomial.from_symbol(PRECISION_SYMBOL),
            name="precision",
        )
    )

    model = LPModel()
    encoding_fresh = FreshNameGenerator()
    for constraint in constraints:
        encode_implication(constraint, model, encoding_fresh, config.max_products)
    model.minimize(AffineExpr.variable(PRECISION_SYMBOL))

    solution = get_backend(config.lp_backend).solve(model)
    if solution.status is not LPStatus.OPTIMAL:
        return SingleProgramResult(
            status=AnalysisStatus.UNKNOWN,
            message=(
                f"LP {solution.status.value}: no certificate of the "
                f"requested shape (d={config.degree}, K={config.max_products})"
            ),
        )
    return SingleProgramResult(
        status=AnalysisStatus.THRESHOLD,
        precision=solution.value(PRECISION_SYMBOL),
        upper=extract_certificate(upper_templates, solution, POTENTIAL),
        lower=extract_certificate(lower_templates, solution, ANTI_POTENTIAL),
    )
