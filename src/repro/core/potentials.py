"""Concrete potential / anti-potential certificates (paper Section 4.1).

A :class:`PotentialFunction` maps each location to a concrete polynomial
over the program's state variables.  ``kind`` distinguishes potentials
(upper bounds; sufficiency conditions) from anti-potentials (lower
bounds; the dual insufficiency conditions).  The class can evaluate
itself on states and check its defining conditions on concrete
transitions — the building block of the certificate checker.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Mapping

from repro.errors import CertificateError
from repro.poly.polynomial import Polynomial
from repro.ts.system import COST_VAR, Location, TransitionSystem

POTENTIAL = "potential"
ANTI_POTENTIAL = "anti-potential"


@dataclass
class PotentialFunction:
    """A location-indexed polynomial certificate.

    ``kind`` is :data:`POTENTIAL` (φ: upper bounds on cost-to-go) or
    :data:`ANTI_POTENTIAL` (χ: lower bounds on cost-to-go).
    """

    system: TransitionSystem
    mapping: dict[Location, Polynomial] = field(default_factory=dict)
    kind: str = POTENTIAL

    def __post_init__(self):
        if self.kind not in (POTENTIAL, ANTI_POTENTIAL):
            raise CertificateError(f"unknown certificate kind {self.kind!r}")
        for location, poly in self.mapping.items():
            if COST_VAR in poly.variables:
                raise CertificateError(
                    f"certificate at {location} mentions {COST_VAR!r}: {poly}"
                )

    def at(self, location: Location) -> Polynomial:
        """The polynomial at ``location`` (0 if absent)."""
        return self.mapping.get(location, Polynomial.zero())

    def value(self, location: Location,
              valuation: Mapping[str, int]) -> Fraction:
        """Evaluate the certificate on a concrete state."""
        return self.at(location).evaluate(valuation)

    def initial_value(self, valuation: Mapping[str, int]) -> Fraction:
        """Evaluate at the initial location."""
        return self.value(self.system.initial_location, valuation)

    # -- condition checking on concrete data -------------------------------

    def check_transition(self, source: Location, target: Location,
                         pre: Mapping[str, int], post: Mapping[str, int],
                         tolerance: float = 0.0) -> bool:
        """Check the preservation condition on one concrete step.

        For potentials: ``φ(ℓ,x) >= φ(ℓ',x') + Δcost``; for
        anti-potentials the reversed inequality.
        """
        delta_cost = post[COST_VAR] - pre[COST_VAR]
        before = self.value(source, pre)
        after = self.value(target, post)
        if self.kind == POTENTIAL:
            return float(before - after - delta_cost) >= -tolerance
        return float(after + delta_cost - before) >= -tolerance

    def check_terminal(self, valuation: Mapping[str, int],
                       tolerance: float = 0.0) -> bool:
        """Check the termination condition on a terminal state."""
        value = self.value(self.system.terminal_location, valuation)
        if self.kind == POTENTIAL:
            return float(value) >= -tolerance
        return float(value) <= tolerance

    def __str__(self) -> str:
        lines = [f"{self.kind} for {self.system.name}:"]
        for location in self.system.locations:
            lines.append(f"  {location}: {self.at(location)}")
        return "\n".join(lines)
