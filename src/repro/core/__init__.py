"""The paper's primary contribution: differential cost analysis with
simultaneous potentials and anti-potentials.

Public entry points:

- :class:`~repro.core.diffcost.DiffCostAnalyzer` /
  :func:`~repro.core.diffcost.analyze_diffcost` — compute and minimize a
  differential threshold (Sections 4-5);
- :func:`~repro.core.symbolic.prove_symbolic_bound` — verify a symbolic
  polynomial bound on the cost difference (Section 5);
- :func:`~repro.core.refutation.refute_threshold` — prove a candidate
  threshold can be exceeded (Theorem 4.3);
- :func:`~repro.core.precision.analyze_single_program` — single-program
  upper/lower bounds with a precision guarantee (Section 7);
- :func:`~repro.core.naive.naive_diffcost` — the two-pass baseline the
  paper argues against (Section 1);
- :class:`~repro.core.checker.CertificateChecker` — independent
  verification of synthesized certificates.
"""

from repro.core.potentials import PotentialFunction
from repro.core.results import (
    AnalysisStatus,
    BoundProofResult,
    DiffCostResult,
    RefutationResult,
    SingleProgramResult,
)
from repro.core.diffcost import (
    DiffCostAnalyzer,
    ThresholdSearchResult,
    analyze_diffcost,
)
from repro.core.symbolic import prove_symbolic_bound
from repro.core.refutation import refute_threshold
from repro.core.precision import analyze_single_program
from repro.core.naive import naive_diffcost
from repro.core.checker import CertificateChecker
from repro.core.witness import DifferenceWitness, bracket_threshold, find_difference_witness

__all__ = [
    "PotentialFunction",
    "AnalysisStatus",
    "DiffCostResult",
    "BoundProofResult",
    "RefutationResult",
    "SingleProgramResult",
    "DiffCostAnalyzer",
    "ThresholdSearchResult",
    "analyze_diffcost",
    "prove_symbolic_bound",
    "refute_threshold",
    "analyze_single_program",
    "naive_diffcost",
    "CertificateChecker",
    "DifferenceWitness",
    "find_difference_witness",
    "bracket_threshold",
]
