"""The naive two-pass baseline the paper argues against (Section 1/8).

"A naive approach would be to compute a PF for the new program and an
anti-PF for the old program separately, and then to compute a threshold
for them.  However, such computations ... would not take each other into
account, which might lead to imprecision."

This module implements exactly that baseline, for the comparison
benchmark:

1. LP A: synthesize a PF for the new version alone, minimizing its value
   at a representative input (the Θ0 box center) — the natural unary
   objective for a tight *upper* bound;
2. LP B: synthesize an anti-PF for the old version alone, maximizing its
   value at the same input;
3. LP C: with both certificates now fixed, compute the smallest ``s``
   with ``x ∈ Θ0 ⇒ s − φ_new(ℓ0,x) + χ_old(ℓ0,x) >= 0`` (a Handelman
   feasibility problem in ``s`` alone).
"""

from __future__ import annotations

from repro.config import DEFAULT_CONFIG, AnalysisConfig
from repro.core.constraints import (
    LOWER,
    UPPER,
    TemplateSet,
    collect_certificate_constraints,
)
from repro.core.diffcost import DiffCostAnalyzer, ProgramLike, extract_certificate
from repro.core.potentials import ANTI_POTENTIAL, POTENTIAL, PotentialFunction
from repro.core.results import AnalysisStatus, DiffCostResult
from repro.handelman.encode import ImplicationConstraint, encode_implication
from repro.invariants.polyhedron import Polyhedron
from repro.lp.backend import get_backend
from repro.lp.model import LPModel
from repro.lp.solution import LPStatus
from repro.poly.linexpr import AffineExpr
from repro.poly.template import TemplatePolynomial
from repro.ts.system import COST_VAR, TransitionSystem
from repro.utils.naming import FreshNameGenerator

NAIVE_THRESHOLD_SYMBOL = "s"


def _box_center(theta0: Polyhedron, system: TransitionSystem) -> dict[str, int]:
    center: dict[str, int] = {}
    for var in system.state_variables:
        if var == COST_VAR:
            continue
        interval = theta0.var_bounds(var)
        low = 0 if interval.lower is None else int(interval.lower)
        high = low if interval.upper is None else int(interval.upper)
        center[var] = (low + high) // 2
    return center


def _solve_unary(analyzer: DiffCostAnalyzer, system: TransitionSystem,
                 invariants, kind: str, prefix: str,
                 anchor: dict[str, int]) -> PotentialFunction | None:
    """One independent unary synthesis (LP A or LP B)."""
    config = analyzer.config
    fresh = FreshNameGenerator()
    templates = TemplateSet.build(system, config.degree, prefix=prefix)
    constraints = collect_certificate_constraints(
        system, invariants, templates, kind, fresh
    )
    model = LPModel()
    encoding_fresh = FreshNameGenerator()
    for constraint in constraints:
        encode_implication(constraint, model, encoding_fresh, config.max_products)
    anchor_value = templates.at(system.initial_location).evaluate_program_vars(
        anchor
    )
    if kind == UPPER:
        model.minimize(anchor_value)
    else:
        model.maximize(anchor_value)
    solution = get_backend(config.lp_backend).solve(model)
    if solution.status is not LPStatus.OPTIMAL:
        return None
    certificate_kind = POTENTIAL if kind == UPPER else ANTI_POTENTIAL
    return extract_certificate(templates, solution, certificate_kind)


def naive_diffcost(old: ProgramLike, new: ProgramLike,
                   config: AnalysisConfig | None = None) -> DiffCostResult:
    """Two-pass baseline: unary bounds first, threshold second."""
    analyzer = DiffCostAnalyzer(old, new, config or DEFAULT_CONFIG)
    old_invariants, new_invariants = analyzer.invariants()
    theta0 = Polyhedron(analyzer.combined_theta0())

    potential_new = _solve_unary(
        analyzer, analyzer.new_system, new_invariants, UPPER, "naive-new",
        _box_center(theta0, analyzer.new_system),
    )
    anti_potential_old = _solve_unary(
        analyzer, analyzer.old_system, old_invariants, LOWER, "naive-old",
        _box_center(theta0, analyzer.old_system),
    )
    if potential_new is None or anti_potential_old is None:
        return DiffCostResult(
            status=AnalysisStatus.UNKNOWN,
            message="naive baseline: a unary synthesis failed",
        )

    # LP C: smallest s dominating the now-fixed difference over Θ0.
    phi = potential_new.at(analyzer.new_system.initial_location)
    chi = anti_potential_old.at(analyzer.old_system.initial_location)
    difference = phi - chi
    consequent = (
        TemplatePolynomial.from_symbol(NAIVE_THRESHOLD_SYMBOL)
        - TemplatePolynomial.from_polynomial(difference)
    )
    constraint = ImplicationConstraint(
        premise=analyzer.combined_theta0(),
        consequent=consequent,
        name="naive-threshold",
    )
    model = LPModel()
    encode_implication(
        constraint, model, FreshNameGenerator(), analyzer.config.max_products
    )
    model.minimize(AffineExpr.variable(NAIVE_THRESHOLD_SYMBOL))
    solution = get_backend(analyzer.config.lp_backend).solve(model)
    if solution.status is not LPStatus.OPTIMAL:
        return DiffCostResult(
            status=AnalysisStatus.UNKNOWN,
            potential_new=potential_new,
            anti_potential_old=anti_potential_old,
            message="naive baseline: threshold LP failed",
        )
    return DiffCostResult(
        status=AnalysisStatus.THRESHOLD,
        threshold=solution.value(NAIVE_THRESHOLD_SYMBOL),
        potential_new=potential_new,
        anti_potential_old=anti_potential_old,
        message="naive two-pass baseline",
    )
