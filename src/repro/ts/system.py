"""The transition-system data model (paper Section 3).

``T = (L, V, →, ℓ0, Θ0)`` with a distinguished ``cost`` variable that is
0 initially and updated whenever cost is incurred.  Updates map each
variable either to a polynomial over ``V`` or to a
:class:`NondetUpdate` (nondeterministic assignment, optionally bounded
by affine polynomials so that Handelman premises stay compact).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.errors import TransitionSystemError
from repro.poly.polynomial import Polynomial
from repro.ts.guards import LinIneq

COST_VAR = "cost"


@dataclass(frozen=True)
class Location:
    """A program location (a node of the control-flow graph)."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class NondetUpdate:
    """A nondeterministic assignment ``v := *`` with optional affine
    bounds ``lower <= v' <= upper``.

    Unbounded havoc (both bounds ``None``) is allowed by the model but
    makes the Handelman premise non-compact, so synthesis typically
    requires bounds (the paper likewise bounds all inputs).
    """

    lower: Polynomial | None = None
    upper: Polynomial | None = None

    def __post_init__(self):
        for bound in (self.lower, self.upper):
            if bound is not None and not bound.is_affine():
                raise TransitionSystemError(
                    f"nondet bound must be affine, got {bound}"
                )

    def __str__(self) -> str:
        low = "-oo" if self.lower is None else str(self.lower)
        high = "+oo" if self.upper is None else str(self.upper)
        return f"nondet[{low}, {high}]"


UpdateExpr = Polynomial | NondetUpdate


@dataclass(frozen=True)
class Transition:
    """A guarded transition ``τ = (ℓ, ℓ', G_τ, Up_τ)``.

    ``guard`` is a conjunction of affine inequalities; ``updates`` maps
    the variables changed by the transition (identity elsewhere).
    """

    source: Location
    target: Location
    guard: tuple[LinIneq, ...] = ()
    updates: Mapping[str, UpdateExpr] = field(default_factory=dict)
    name: str = ""

    def update_of(self, var: str) -> UpdateExpr:
        """Update expression for ``var`` (identity if unchanged)."""
        update = self.updates.get(var)
        if update is None:
            return Polynomial.variable(var)
        return update

    def is_identity(self) -> bool:
        """True iff the transition changes no variable."""
        return all(
            isinstance(up, Polynomial) and up == Polynomial.variable(var)
            for var, up in self.updates.items()
        )

    def cost_delta(self) -> Polynomial:
        """The polynomial ``Up(cost) - cost`` (0 when cost unchanged).

        Validation guarantees this polynomial never mentions ``cost``.
        """
        update = self.updates.get(COST_VAR)
        if update is None:
            return Polynomial.zero()
        if isinstance(update, NondetUpdate):
            raise TransitionSystemError(
                f"transition {self.name or self.source}->{self.target} "
                "has a nondeterministic cost update"
            )
        return update - Polynomial.variable(COST_VAR)

    def __str__(self) -> str:
        guard = " and ".join(str(g) for g in self.guard) or "true"
        ups = ", ".join(
            f"{var}' = {up}" for var, up in sorted(self.updates.items())
        ) or "identity"
        label = f"{self.name}: " if self.name else ""
        return f"{label}{self.source} -> {self.target} [{guard}] {{{ups}}}"


class TransitionSystem:
    """An immutable transition system.

    Use :class:`~repro.ts.builder.TransitionSystemBuilder` or the `imp`
    frontend (:func:`repro.lang.load_program`) to construct instances.
    """

    def __init__(self, name: str, variables: Iterable[str],
                 locations: Iterable[Location],
                 transitions: Iterable[Transition],
                 initial_location: Location,
                 terminal_location: Location,
                 init_constraint: Iterable[LinIneq] = ()):
        self.name = name
        self.variables: tuple[str, ...] = tuple(variables)
        self.locations: tuple[Location, ...] = tuple(locations)
        self.transitions: tuple[Transition, ...] = tuple(transitions)
        self.initial_location = initial_location
        self.terminal_location = terminal_location
        self.init_constraint: tuple[LinIneq, ...] = tuple(init_constraint)
        self._outgoing: dict[Location, tuple[Transition, ...]] = {}
        by_source: dict[Location, list[Transition]] = {
            loc: [] for loc in self.locations
        }
        for transition in self.transitions:
            by_source[transition.source].append(transition)
        self._outgoing = {
            loc: tuple(transitions) for loc, transitions in by_source.items()
        }

    @property
    def state_variables(self) -> tuple[str, ...]:
        """Variables excluding the distinguished ``cost`` variable."""
        return tuple(v for v in self.variables if v != COST_VAR)

    def outgoing(self, location: Location) -> tuple[Transition, ...]:
        """Transitions whose source is ``location``."""
        return self._outgoing.get(location, ())

    def location_by_name(self, name: str) -> Location:
        """Look up a location by name (raises on unknown names)."""
        for location in self.locations:
            if location.name == name:
                return location
        raise TransitionSystemError(f"no location named {name!r} in {self.name}")

    def rename_variables(self, mapping: Mapping[str, str]) -> "TransitionSystem":
        """A copy with variables renamed (used to align variable sets of
        two program versions before a differential analysis)."""
        if COST_VAR in mapping and mapping[COST_VAR] != COST_VAR:
            raise TransitionSystemError("the cost variable cannot be renamed")

        def rename_update(update: UpdateExpr) -> UpdateExpr:
            if isinstance(update, NondetUpdate):
                return NondetUpdate(
                    None if update.lower is None else update.lower.rename(mapping),
                    None if update.upper is None else update.upper.rename(mapping),
                )
            return update.rename(mapping)

        transitions = [
            Transition(
                source=t.source,
                target=t.target,
                guard=tuple(g.rename(mapping) for g in t.guard),
                updates={
                    mapping.get(var, var): rename_update(up)
                    for var, up in t.updates.items()
                },
                name=t.name,
            )
            for t in self.transitions
        ]
        return TransitionSystem(
            name=self.name,
            variables=[mapping.get(v, v) for v in self.variables],
            locations=self.locations,
            transitions=transitions,
            initial_location=self.initial_location,
            terminal_location=self.terminal_location,
            init_constraint=[g.rename(mapping) for g in self.init_constraint],
        )

    def __str__(self) -> str:
        lines = [
            f"transition system {self.name}",
            f"  variables: {', '.join(self.variables)}",
            f"  initial: {self.initial_location}, terminal: {self.terminal_location}",
            "  Theta0: " + (
                " and ".join(str(g) for g in self.init_constraint) or "true"
            ),
        ]
        lines.extend(f"  {t}" for t in self.transitions)
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"<TransitionSystem {self.name}: {len(self.locations)} locations, "
            f"{len(self.transitions)} transitions>"
        )
