"""Transition systems: the program model of the paper (Section 3).

A transition system is ``T = (L, V, →, ℓ0, Θ0)`` with a distinguished
``cost`` variable.  This package provides the data model
(:mod:`~repro.ts.system`), guard inequalities (:mod:`~repro.ts.guards`),
a fluent builder (:mod:`~repro.ts.builder`), structural validation
(:mod:`~repro.ts.validate`), a concrete interpreter with exhaustive
min/max cost search (:mod:`~repro.ts.interpreter`), cost-relevance
slicing (:mod:`~repro.ts.slicing`) and pretty-printing
(:mod:`~repro.ts.pretty`).
"""

from repro.ts.guards import LinIneq
from repro.ts.system import (
    COST_VAR,
    Location,
    NondetUpdate,
    Transition,
    TransitionSystem,
)
from repro.ts.builder import TransitionSystemBuilder
from repro.ts.interpreter import Interpreter, CostSearch, Run
from repro.ts.validate import validate_system
from repro.ts.slicing import slice_cost_relevant

__all__ = [
    "COST_VAR",
    "LinIneq",
    "Location",
    "NondetUpdate",
    "Transition",
    "TransitionSystem",
    "TransitionSystemBuilder",
    "Interpreter",
    "CostSearch",
    "Run",
    "validate_system",
    "slice_cost_relevant",
]
