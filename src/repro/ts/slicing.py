"""Cost-relevance slicing of transition systems.

The paper notes (Appendix A) that variables not contributing to cost —
such as array contents — are removed before analysis, "automated through
program slicing".  This module implements that step: a variable is
*cost-relevant* if it (transitively) flows into a guard, a nondet bound,
or a cost update.  Irrelevant variables and their updates are dropped.
"""

from __future__ import annotations

from repro.ts.system import (
    COST_VAR,
    NondetUpdate,
    Transition,
    TransitionSystem,
)
from repro.ts.validate import validate_system


def cost_relevant_variables(system: TransitionSystem) -> frozenset[str]:
    """The least set of variables closed under backward dependency from
    guards, nondet bounds and cost updates."""
    relevant: set[str] = {COST_VAR}
    for transition in system.transitions:
        for ineq in transition.guard:
            relevant.update(ineq.variables)
    for ineq in system.init_constraint:
        relevant.update(ineq.variables)

    changed = True
    while changed:
        changed = False
        for transition in system.transitions:
            for var, update in transition.updates.items():
                if var not in relevant:
                    continue
                if isinstance(update, NondetUpdate):
                    sources: set[str] = set()
                    for bound in (update.lower, update.upper):
                        if bound is not None:
                            sources.update(bound.variables)
                else:
                    sources = set(update.variables)
                new = sources - relevant
                if new:
                    relevant.update(new)
                    changed = True
    return frozenset(relevant)


def slice_cost_relevant(system: TransitionSystem) -> TransitionSystem:
    """A copy of ``system`` with cost-irrelevant variables removed.

    Sound for differential cost analysis: removed variables influence
    neither control flow nor cost, so ``CostInf``/``CostSup`` of every
    state are preserved.
    """
    relevant = cost_relevant_variables(system)
    if relevant.issuperset(system.variables):
        return system

    transitions = [
        Transition(
            source=t.source,
            target=t.target,
            guard=t.guard,
            updates={
                var: up for var, up in t.updates.items() if var in relevant
            },
            name=t.name,
        )
        for t in system.transitions
    ]
    sliced = TransitionSystem(
        name=system.name,
        variables=[v for v in system.variables if v in relevant],
        locations=system.locations,
        transitions=transitions,
        initial_location=system.initial_location,
        terminal_location=system.terminal_location,
        init_constraint=system.init_constraint,
    )
    validate_system(sliced)
    return sliced
