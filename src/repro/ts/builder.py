"""A fluent builder for transition systems.

The frontend lowers `imp` programs to transition systems automatically;
the builder exists for tests, examples and for transcribing systems given
explicitly in papers (such as the paper's Fig. 2).
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.errors import TransitionSystemError
from repro.poly.polynomial import Polynomial
from repro.ts.guards import LinIneq
from repro.ts.system import (
    COST_VAR,
    Location,
    NondetUpdate,
    Transition,
    TransitionSystem,
    UpdateExpr,
)
from repro.ts.validate import validate_system
from repro.utils.rationals import Numeric


class TransitionSystemBuilder:
    """Accumulates locations and transitions, then builds a validated
    :class:`TransitionSystem`.

    >>> b = TransitionSystemBuilder("demo", ["x"])
    >>> l0, lout = b.location("l0"), b.location("l_out")
    >>> b.transition(l0, lout, cost=Polynomial.variable("x"))
    >>> ts = b.build(initial="l0", terminal="l_out")
    """

    def __init__(self, name: str, variables: Iterable[str]):
        self._name = name
        variables = list(variables)
        if COST_VAR not in variables:
            variables.append(COST_VAR)
        self._variables = tuple(variables)
        self._locations: dict[str, Location] = {}
        self._transitions: list[Transition] = []
        self._init_constraint: list[LinIneq] = []
        self._transition_counter = 0

    def location(self, name: str) -> Location:
        """Declare (or fetch) a location by name."""
        if name not in self._locations:
            self._locations[name] = Location(name)
        return self._locations[name]

    def assume_init(self, *ineqs: LinIneq) -> None:
        """Conjoin inequalities to Θ0."""
        self._init_constraint.extend(ineqs)

    def assume_init_box(self, bounds: Mapping[str, tuple[Numeric, Numeric]]) -> None:
        """Conjoin box constraints ``lo <= v <= hi`` to Θ0."""
        from repro.ts.guards import box

        self._init_constraint.extend(box(bounds))

    def transition(self, source: Location | str, target: Location | str,
                   guard: Iterable[LinIneq] = (),
                   updates: Mapping[str, UpdateExpr] | None = None,
                   cost: Polynomial | Numeric | None = None,
                   name: str = "") -> Transition:
        """Add a transition.

        ``cost`` is a convenience: ``cost=delta`` adds the update
        ``cost' = cost + delta``.  Explicit cost updates in ``updates``
        and the ``cost`` shorthand are mutually exclusive.
        """
        source = self.location(source) if isinstance(source, str) else source
        target = self.location(target) if isinstance(target, str) else target
        updates = dict(updates or {})
        if cost is not None:
            if COST_VAR in updates:
                raise TransitionSystemError(
                    "pass either cost= or an explicit cost update, not both"
                )
            delta = cost if isinstance(cost, Polynomial) else Polynomial.constant(cost)
            updates[COST_VAR] = Polynomial.variable(COST_VAR) + delta
        if not name:
            name = f"t{self._transition_counter}"
        self._transition_counter += 1
        transition = Transition(source, target, tuple(guard), updates, name)
        self._transitions.append(transition)
        return transition

    def havoc(self, var: str, lower: Polynomial | Numeric | None = None,
              upper: Polynomial | Numeric | None = None) -> NondetUpdate:
        """Convenience constructor for a bounded nondet update."""
        def as_poly(value):
            if value is None or isinstance(value, Polynomial):
                return value
            return Polynomial.constant(value)

        if var == COST_VAR:
            raise TransitionSystemError("cost cannot be assigned nondeterministically")
        return NondetUpdate(as_poly(lower), as_poly(upper))

    def build(self, initial: Location | str, terminal: Location | str,
              validate: bool = True) -> TransitionSystem:
        """Finalize the system; validation is on by default."""
        initial = self.location(initial) if isinstance(initial, str) else initial
        terminal = self.location(terminal) if isinstance(terminal, str) else terminal
        system = TransitionSystem(
            name=self._name,
            variables=self._variables,
            locations=list(self._locations.values()),
            transitions=self._transitions,
            initial_location=initial,
            terminal_location=terminal,
            init_constraint=self._init_constraint,
        )
        if validate:
            validate_system(system)
        return system
