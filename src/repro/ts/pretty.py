"""Pretty-printing of transition systems.

``render_text`` produces the tabular form used throughout the test suite
and examples; ``render_dot`` emits Graphviz source mirroring the paper's
Fig. 2 (locations as circles, transitions as guarded arrows).
"""

from __future__ import annotations

from repro.ts.system import TransitionSystem


def render_text(system: TransitionSystem) -> str:
    """A readable multi-line description of ``system``."""
    return str(system)


def render_dot(system: TransitionSystem) -> str:
    """Graphviz dot source for ``system`` (Fig. 2 style)."""
    lines = [
        f'digraph "{system.name}" {{',
        "  rankdir=LR;",
        '  node [shape=circle, fontsize=11];',
    ]
    for location in system.locations:
        shape = "doublecircle" if location == system.terminal_location else "circle"
        lines.append(f'  "{location.name}" [shape={shape}];')
    init = " and ".join(str(g) for g in system.init_constraint) or "true"
    lines.append(f'  "__init" [shape=point, label=""];')
    lines.append(
        f'  "__init" -> "{system.initial_location.name}" '
        f'[label="Theta0: {init}"];'
    )
    for transition in system.transitions:
        guard = " and ".join(str(g) for g in transition.guard) or "true"
        updates = "; ".join(
            f"{var}' = {up}" for var, up in sorted(transition.updates.items())
        )
        label = guard if not updates else f"{guard}\\n{updates}"
        lines.append(
            f'  "{transition.source.name}" -> "{transition.target.name}" '
            f'[label="{label}", fontsize=9];'
        )
    lines.append("}")
    return "\n".join(lines)
