"""Concrete execution of transition systems.

Two services are provided:

- :class:`Interpreter` — run a transition system from a concrete input
  under a pluggable nondeterminism-resolution strategy, producing a
  :class:`Run` with its incurred cost.  This models the paper's concrete
  semantics (Section 3).
- :class:`CostSearch` — exhaustive memoized search over all
  nondeterministic choices computing ``CostInf`` and ``CostSup`` of a
  state exactly.  This is the ground truth that tests and the benchmark
  harness use for the "Tight" column of Table 1 (on small input boxes).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Iterator, Mapping

from repro.errors import InterpreterError, NonTerminationError
from repro.poly.polynomial import Polynomial
from repro.ts.guards import all_hold
from repro.ts.system import (
    COST_VAR,
    Location,
    NondetUpdate,
    Transition,
    TransitionSystem,
)

Valuation = dict[str, int]


@dataclass(frozen=True)
class State:
    """A concrete state: a location plus an integer valuation."""

    location: Location
    valuation: tuple[tuple[str, int], ...]

    @staticmethod
    def make(location: Location, valuation: Mapping[str, int]) -> "State":
        return State(location, tuple(sorted(valuation.items())))

    def values(self) -> Valuation:
        """The valuation as a mutable dict."""
        return dict(self.valuation)

    def __getitem__(self, var: str) -> int:
        for name, value in self.valuation:
            if name == var:
                return value
        raise KeyError(var)

    def __str__(self) -> str:
        vals = ", ".join(f"{k}={v}" for k, v in self.valuation)
        return f"({self.location}, {vals})"


@dataclass
class Run:
    """A terminated execution: the visited states and the incurred cost."""

    states: list[State]

    @property
    def cost(self) -> int:
        """Terminal minus initial value of ``cost`` (paper's Cost_T(ρ))."""
        return self.states[-1][COST_VAR] - self.states[0][COST_VAR]

    @property
    def length(self) -> int:
        """Number of steps taken."""
        return len(self.states) - 1

    def locations(self) -> list[str]:
        """Names of the visited locations, in order."""
        return [state.location.name for state in self.states]


Chooser = Callable[[State, list[Transition]], Transition]


def first_choice(state: State, options: list[Transition]) -> Transition:
    """Deterministic strategy: always the first enabled transition."""
    return options[0]


def random_choice(rng: random.Random) -> Chooser:
    """Strategy picking uniformly among enabled transitions."""

    def choose(state: State, options: list[Transition]) -> Transition:
        return rng.choice(options)

    return choose


class Interpreter:
    """Executes a transition system concretely."""

    def __init__(self, system: TransitionSystem, max_steps: int = 1_000_000):
        self.system = system
        self.max_steps = max_steps

    # -- state construction ---------------------------------------------

    def initial_state(self, inputs: Mapping[str, int]) -> State:
        """Build the initial state from input values; ``cost`` starts at 0.

        Raises if inputs violate Θ0 or leave variables unset.
        """
        valuation: Valuation = dict(inputs)
        valuation[COST_VAR] = 0
        missing = set(self.system.variables) - set(valuation)
        if missing:
            raise InterpreterError(
                f"missing initial values for {sorted(missing)}"
            )
        if not all_hold(self.system.init_constraint, valuation):
            raise InterpreterError(
                f"inputs {dict(inputs)} violate Theta0 of {self.system.name}"
            )
        return State.make(self.system.initial_location, valuation)

    # -- stepping ---------------------------------------------------------

    def enabled(self, state: State) -> list[Transition]:
        """Transitions whose guard holds at ``state``."""
        valuation = state.values()
        return [
            t for t in self.system.outgoing(state.location)
            if all_hold(t.guard, valuation)
        ]

    def apply(self, state: State, transition: Transition,
              nondet: Mapping[str, int] | None = None) -> State:
        """Apply ``transition``; nondet updates take values from
        ``nondet`` (or their lower bound / 0 when absent)."""
        valuation = state.values()
        updated: Valuation = dict(valuation)
        for var, update in transition.updates.items():
            if isinstance(update, NondetUpdate):
                updated[var] = self._resolve_nondet(var, update, valuation, nondet)
            else:
                value = update.evaluate(valuation)
                if value.denominator != 1:
                    raise InterpreterError(
                        f"update of {var} produced non-integer {value}"
                    )
                updated[var] = int(value)
        return State.make(transition.target, updated)

    def _resolve_nondet(self, var: str, update: NondetUpdate,
                        valuation: Valuation,
                        nondet: Mapping[str, int] | None) -> int:
        low = None if update.lower is None else _as_int(
            update.lower.evaluate(valuation), f"lower bound of {var}"
        )
        high = None if update.upper is None else _as_int(
            update.upper.evaluate(valuation), f"upper bound of {var}"
        )
        if nondet is not None and var in nondet:
            value = nondet[var]
            if (low is not None and value < low) or (high is not None and value > high):
                raise InterpreterError(
                    f"nondet choice {var}={value} outside [{low}, {high}]"
                )
            return value
        if low is not None:
            return low
        if high is not None:
            return high
        return 0

    def is_terminal(self, state: State) -> bool:
        """True iff the state is at the terminal location."""
        return state.location == self.system.terminal_location

    # -- whole runs ---------------------------------------------------------

    def run(self, inputs: Mapping[str, int],
            chooser: Chooser = first_choice,
            nondet_values: Mapping[str, int] | None = None) -> Run:
        """Execute until the terminal location; raises
        :class:`NonTerminationError` past ``max_steps``."""
        state = self.initial_state(inputs)
        states = [state]
        for _ in range(self.max_steps):
            if self.is_terminal(state):
                return Run(states)
            options = self.enabled(state)
            if not options:
                raise InterpreterError(f"stuck at {state} (no enabled transition)")
            transition = chooser(state, options)
            state = self.apply(state, transition, nondet_values)
            states.append(state)
        raise NonTerminationError(
            f"{self.system.name} did not terminate within {self.max_steps} steps"
        )


def _as_int(value: Fraction, what: str) -> int:
    if value.denominator != 1:
        raise InterpreterError(f"{what} evaluated to non-integer {value}")
    return int(value)


class CostSearch:
    """Exhaustive min/max cost search with memoization.

    Costs are additive along runs, so the search memoizes the *future*
    minimal/maximal cost of each ``(location, valuation-without-cost)``
    pair.  Nondeterministic updates must have finite evaluated bounds.

    ``max_states`` caps the memo size; exceeding it raises
    :class:`InterpreterError` (the caller should shrink the input box).
    """

    def __init__(self, system: TransitionSystem, max_states: int = 2_000_000):
        self.system = system
        self.max_states = max_states
        self._memo: dict[tuple[Location, tuple[tuple[str, int], ...]],
                         tuple[int, int]] = {}

    def cost_bounds(self, inputs: Mapping[str, int]) -> tuple[int, int]:
        """``(CostInf, CostSup)`` from the initial state on ``inputs``."""
        interpreter = Interpreter(self.system)
        state = interpreter.initial_state(inputs)
        valuation = state.values()
        valuation.pop(COST_VAR)
        bounds = self._future(self.system.initial_location, valuation, set())
        if bounds is None:
            raise InterpreterError(
                f"no terminating run of {self.system.name} from {dict(inputs)}"
            )
        return bounds

    def _future(self, location: Location, valuation: Valuation,
                on_stack: set) -> tuple[int, int] | None:
        key = (location, tuple(sorted(valuation.items())))
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        if key in on_stack:
            raise NonTerminationError(
                f"cycle without progress at {location} {valuation} "
                f"in {self.system.name} (program not terminating?)"
            )
        if location == self.system.terminal_location:
            self._memo[key] = (0, 0)
            return (0, 0)
        if len(self._memo) >= self.max_states:
            raise InterpreterError(
                f"state space of {self.system.name} exceeds {self.max_states}"
            )

        on_stack.add(key)
        full_valuation = dict(valuation)
        full_valuation[COST_VAR] = 0
        minimum: int | None = None
        maximum: int | None = None
        for transition in self.system.outgoing(location):
            if not all_hold(transition.guard, full_valuation):
                continue
            delta = _as_int(
                transition.cost_delta().evaluate(full_valuation),
                "cost delta",
            )
            for successor in self._successor_valuations(transition, full_valuation):
                future = self._future(transition.target, successor, on_stack)
                if future is None:
                    continue
                low = future[0] + delta
                high = future[1] + delta
                minimum = low if minimum is None else min(minimum, low)
                maximum = high if maximum is None else max(maximum, high)
        on_stack.discard(key)
        if minimum is None or maximum is None:
            # Blocked state (e.g. a failed assume): contributes no run.
            result = None
        else:
            result = (minimum, maximum)
        self._memo[key] = result
        return result

    def _successor_valuations(self, transition: Transition,
                              valuation: Valuation) -> Iterator[Valuation]:
        """All post-states of a transition (cartesian over nondet ranges),
        with ``cost`` projected away."""
        deterministic: Valuation = {}
        ranges: list[tuple[str, int, int]] = []
        for var in self.system.variables:
            if var == COST_VAR:
                continue
            update = transition.update_of(var)
            if isinstance(update, NondetUpdate):
                if update.lower is None or update.upper is None:
                    raise InterpreterError(
                        f"exhaustive search needs bounded nondet for {var}"
                    )
                low = _as_int(update.lower.evaluate(valuation), f"bound of {var}")
                high = _as_int(update.upper.evaluate(valuation), f"bound of {var}")
                if low > high:
                    return  # empty nondet range: transition blocks
                ranges.append((var, low, high))
            else:
                deterministic[var] = _as_int(
                    update.evaluate(valuation), f"update of {var}"
                )

        def expand(index: int, current: Valuation) -> Iterator[Valuation]:
            if index == len(ranges):
                yield dict(current)
                return
            var, low, high = ranges[index]
            for value in range(low, high + 1):
                current[var] = value
                yield from expand(index + 1, current)

        yield from expand(0, deterministic)
