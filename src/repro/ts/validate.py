"""Structural validation of transition systems.

Checks the well-formedness conditions the analysis relies on:

- all transition endpoints are declared locations;
- updates only mention declared variables and are polynomial (or
  properly bounded nondet);
- the ``cost`` variable is updated only as ``cost + δ(x)`` with ``δ``
  not mentioning ``cost`` and never nondeterministically;
- Θ0 and guards only mention declared variables and never ``cost``;
- the terminal location has no outgoing non-identity transition.
"""

from __future__ import annotations

from repro.errors import TransitionSystemError
from repro.poly.polynomial import Polynomial
from repro.ts.system import COST_VAR, NondetUpdate, TransitionSystem


def validate_system(system: TransitionSystem) -> None:
    """Raise :class:`TransitionSystemError` on the first violation."""
    declared = set(system.variables)
    if COST_VAR not in declared:
        raise TransitionSystemError(
            f"{system.name}: the distinguished variable {COST_VAR!r} is missing"
        )
    locations = set(system.locations)
    if system.initial_location not in locations:
        raise TransitionSystemError(
            f"{system.name}: initial location {system.initial_location} undeclared"
        )
    if system.terminal_location not in locations:
        raise TransitionSystemError(
            f"{system.name}: terminal location {system.terminal_location} undeclared"
        )

    for ineq in system.init_constraint:
        unknown = ineq.variables - declared
        if unknown:
            raise TransitionSystemError(
                f"{system.name}: Theta0 mentions undeclared variables {sorted(unknown)}"
            )
        if COST_VAR in ineq.variables:
            raise TransitionSystemError(
                f"{system.name}: Theta0 must not constrain {COST_VAR!r} "
                "(it is implicitly 0 initially)"
            )

    for transition in system.transitions:
        label = transition.name or f"{transition.source}->{transition.target}"
        if transition.source not in locations or transition.target not in locations:
            raise TransitionSystemError(
                f"{system.name}: transition {label} has undeclared endpoints"
            )
        for ineq in transition.guard:
            unknown = ineq.variables - declared
            if unknown:
                raise TransitionSystemError(
                    f"{system.name}: guard of {label} mentions undeclared "
                    f"variables {sorted(unknown)}"
                )
            if COST_VAR in ineq.variables:
                raise TransitionSystemError(
                    f"{system.name}: guard of {label} mentions {COST_VAR!r}"
                )
        for var, update in transition.updates.items():
            if var not in declared:
                raise TransitionSystemError(
                    f"{system.name}: transition {label} updates undeclared "
                    f"variable {var!r}"
                )
            if isinstance(update, NondetUpdate):
                if var == COST_VAR:
                    raise TransitionSystemError(
                        f"{system.name}: transition {label} assigns "
                        f"{COST_VAR!r} nondeterministically"
                    )
                for bound in (update.lower, update.upper):
                    if bound is None:
                        continue
                    unknown = bound.variables - declared
                    if unknown:
                        raise TransitionSystemError(
                            f"{system.name}: nondet bound of {var!r} in {label} "
                            f"mentions undeclared variables {sorted(unknown)}"
                        )
                continue
            if not isinstance(update, Polynomial):
                raise TransitionSystemError(
                    f"{system.name}: update of {var!r} in {label} is neither "
                    "polynomial nor nondet"
                )
            unknown = update.variables - declared
            if unknown:
                raise TransitionSystemError(
                    f"{system.name}: update of {var!r} in {label} mentions "
                    f"undeclared variables {sorted(unknown)}"
                )
            if var == COST_VAR:
                _validate_cost_update(system.name, label, update)

    for transition in system.outgoing(system.terminal_location):
        if not transition.is_identity() or transition.target != system.terminal_location:
            raise TransitionSystemError(
                f"{system.name}: terminal location has a non-identity outgoing "
                f"transition {transition.name}"
            )


def _validate_cost_update(system_name: str, label: str, update: Polynomial) -> None:
    """Enforce ``cost' = cost + δ(x)`` with ``δ`` free of ``cost``."""
    delta = update - Polynomial.variable(COST_VAR)
    if COST_VAR in delta.variables:
        raise TransitionSystemError(
            f"{system_name}: cost update in {label} is not of the form "
            f"cost + delta(x): {update}"
        )
