"""Affine inequalities used in guards, Θ0 and invariants.

A :class:`LinIneq` represents ``expr >= 0`` for an affine expression over
program variables.  The paper assumes all transition guards, Θ0 and
invariants are conjunctions of such inequalities (assumptions 1-3 of the
algorithm); keeping one normal form everywhere simplifies the Handelman
step, which consumes exactly these ``aff_i >= 0`` premises.

Because program variables range over integers, strict inequalities
normalize exactly: ``a < b`` becomes ``b - a - 1 >= 0``.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Mapping

from repro.errors import PolynomialError
from repro.poly.linexpr import AffineExpr
from repro.poly.polynomial import Polynomial
from repro.utils.rationals import Numeric, as_fraction


class LinIneq:
    """The constraint ``expr >= 0`` for an affine ``expr``.

    >>> x = Polynomial.variable("x")
    >>> str(LinIneq.less_than(x, 10))
    '-x + 9 >= 0'
    """

    __slots__ = ("_expr",)

    def __init__(self, expr: AffineExpr):
        self._expr = expr

    # -- constructors ---------------------------------------------------

    @staticmethod
    def _affine(value: Polynomial | AffineExpr | Numeric) -> AffineExpr:
        if isinstance(value, AffineExpr):
            return value
        if isinstance(value, Polynomial):
            return AffineExpr.from_polynomial(value)
        if isinstance(value, (int, float, Fraction)):
            return AffineExpr.constant(value)
        raise PolynomialError(f"not an affine expression: {value!r}")

    @classmethod
    def geq(cls, lhs, rhs) -> "LinIneq":
        """``lhs >= rhs``."""
        return cls(cls._affine(lhs) - cls._affine(rhs))

    @classmethod
    def leq(cls, lhs, rhs) -> "LinIneq":
        """``lhs <= rhs``."""
        return cls(cls._affine(rhs) - cls._affine(lhs))

    @classmethod
    def greater_than(cls, lhs, rhs) -> "LinIneq":
        """``lhs > rhs`` over the integers (``lhs - rhs - 1 >= 0``)."""
        return cls(cls._affine(lhs) - cls._affine(rhs) - 1)

    @classmethod
    def less_than(cls, lhs, rhs) -> "LinIneq":
        """``lhs < rhs`` over the integers (``rhs - lhs - 1 >= 0``)."""
        return cls(cls._affine(rhs) - cls._affine(lhs) - 1)

    @classmethod
    def equals(cls, lhs, rhs) -> tuple["LinIneq", "LinIneq"]:
        """``lhs == rhs`` as a pair of opposite inequalities."""
        return (cls.geq(lhs, rhs), cls.leq(lhs, rhs))

    @staticmethod
    def always_true() -> "LinIneq":
        """The trivially satisfied inequality ``0 >= 0``."""
        return LinIneq(AffineExpr.zero())

    # -- inspection -----------------------------------------------------

    @property
    def expr(self) -> AffineExpr:
        """The affine expression constrained to be nonnegative."""
        return self._expr

    @property
    def variables(self) -> frozenset[str]:
        """Variables mentioned by the inequality."""
        return self._expr.symbols

    def is_trivial(self) -> bool:
        """True iff the inequality is variable-free and satisfied."""
        return self._expr.is_constant() and self._expr.constant_term >= 0

    def is_contradiction(self) -> bool:
        """True iff the inequality is variable-free and violated."""
        return self._expr.is_constant() and self._expr.constant_term < 0

    # -- logic ----------------------------------------------------------

    def negate(self) -> "LinIneq":
        """Integer negation: ``¬(e >= 0)`` is ``-e - 1 >= 0``.

        Sound and complete for integer-valued variables with rational
        coefficients scaled to integers; our frontend produces integer
        coefficients so the ``-1`` slack is exact.
        """
        return LinIneq(-self._expr - 1)

    def holds(self, valuation: Mapping[str, Numeric]) -> bool:
        """Evaluate at an (integer) valuation."""
        return self._expr.evaluate(valuation) >= 0

    def substitute(self, mapping: Mapping[str, Polynomial]) -> "LinIneq":
        """Substitute affine polynomials for variables.

        Raises if the result would not be affine.
        """
        substituted = self._expr.to_polynomial().substitute(mapping)
        return LinIneq(AffineExpr.from_polynomial(substituted))

    def rename(self, mapping: Mapping[str, str]) -> "LinIneq":
        """Rename variables."""
        return LinIneq(self._expr.rename(mapping))

    def normalize(self) -> "LinIneq":
        """Scale so coefficients are coprime integers (canonical form).

        Useful for deduplication in invariants: ``2x - 4 >= 0`` and
        ``x - 2 >= 0`` normalize identically.
        """
        coeffs = [coeff for _, coeff in self._expr.coefficients()]
        coeffs.append(self._expr.constant_term)
        nonzero = [c for c in coeffs if c != 0]
        if not nonzero:
            return self
        from math import gcd

        denominator_lcm = 1
        for c in nonzero:
            denominator_lcm = denominator_lcm * c.denominator // gcd(
                denominator_lcm, c.denominator
            )
        scaled = self._expr.scale(denominator_lcm)
        numerators = [coeff.numerator for _, coeff in scaled.coefficients()]
        numerators.append(scaled.constant_term.numerator)
        divisor = 0
        for n in numerators:
            divisor = gcd(divisor, abs(n))
        if divisor > 1:
            scaled = scaled.scale(Fraction(1, divisor))
        return LinIneq(scaled)

    # -- dunder plumbing --------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LinIneq):
            return NotImplemented
        return self._expr == other._expr

    def __hash__(self) -> int:
        return hash(("LinIneq", self._expr))

    def __str__(self) -> str:
        return f"{self._expr} >= 0"

    def __repr__(self) -> str:
        return f"LinIneq({self._expr!r})"


def all_hold(ineqs: Iterable[LinIneq], valuation: Mapping[str, Numeric]) -> bool:
    """True iff every inequality holds at ``valuation``."""
    return all(ineq.holds(valuation) for ineq in ineqs)


def box(bounds: Mapping[str, tuple[Numeric, Numeric]]) -> tuple[LinIneq, ...]:
    """Inequalities for a box ``lo <= v <= hi`` per variable.

    Convenience for Θ0 sets such as the paper's ``1 <= lenA <= 100``.
    """
    ineqs: list[LinIneq] = []
    for var in sorted(bounds):
        low, high = bounds[var]
        poly = Polynomial.variable(var)
        ineqs.append(LinIneq.geq(poly, as_fraction(low)))
        ineqs.append(LinIneq.leq(poly, as_fraction(high)))
    return tuple(ineqs)
