"""Lint driver: file walking, pragma resolution, baseline, rendering.

:func:`lint_file` parses one file, runs the three checker families
scoped by the contract registry, and resolves pragma suppression;
:func:`lint_paths` walks directories (skipping the deliberate-violation
fixture modules under ``repro/lint/fixtures``).  Baselines support
ratchet-style adoption: findings fingerprinted in the baseline file are
tolerated, anything new fails the run.
"""

from __future__ import annotations

import ast
import json
from pathlib import Path
from typing import Iterable

from repro.lint import determinism, floats, forksafety
from repro.lint.contracts import DEFAULT_CONTRACTS, Contracts
from repro.lint.model import FAMILY_OF_RULE, Finding, RawFinding
from repro.lint.pragmas import pragma_index

#: Path fragments excluded from directory scans (fixture modules are
#: deliberate rule violations; caches are not source).
_SKIP_FRAGMENTS = ("repro/lint/fixtures/", "/__pycache__/")

BASELINE_VERSION = 1


def module_key(path: Path) -> str:
    """Contract-registry key of a file: the posix path from the last
    ``repro``/``tests`` component (``repro/lp/basis.py``), or the bare
    file name when neither anchors it."""
    parts = path.as_posix().split("/")
    for anchor in ("repro", "tests"):
        if anchor in parts:
            index = len(parts) - 1 - parts[::-1].index(anchor)
            return "/".join(parts[index:])
    return path.name


def lint_file(path: Path | str, contracts: Contracts = DEFAULT_CONTRACTS,
              *, source: str | None = None,
              module: str | None = None) -> list[Finding]:
    """Lint one file.  ``source``/``module`` override what would be
    read from / derived of ``path`` (used by tests to lint synthetic
    content under a real module's contracts)."""
    path = Path(path)
    if source is None:
        source = path.read_text(encoding="utf-8")
    if module is None:
        module = module_key(path)
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as error:
        return [Finding(
            path=str(path), module=module, rule="syntax-error",
            family="lint", line=error.lineno or 1, col=error.offset or 0,
            message=f"file does not parse: {error.msg}", suppressed=False,
        )]

    raw: list[RawFinding] = []
    raw.extend(floats.check(tree, module, contracts))
    raw.extend(determinism.check(tree, module, contracts))
    raw.extend(forksafety.check(tree, module, contracts))

    pragmas = pragma_index(source)
    spans = [
        (node.lineno, node.end_lineno or node.lineno)
        for node in ast.walk(tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]

    findings: list[Finding] = []
    for item in sorted(raw, key=lambda f: (f.line, f.col, f.rule)):
        allowed: frozenset[str] = pragmas.get(item.line, frozenset())
        for start, end in spans:
            if start <= item.line <= end:
                allowed = allowed | pragmas.get(start, frozenset())
        family = FAMILY_OF_RULE.get(item.rule, "lint")
        suppressed = item.rule in allowed or family in allowed
        findings.append(Finding(
            path=str(path), module=module, rule=item.rule, family=family,
            line=item.line, col=item.col, message=item.message,
            suppressed=suppressed,
        ))
    return findings


def iter_source_files(paths: Iterable[Path | str]) -> list[Path]:
    files: list[Path] = []
    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            candidates = sorted(entry.rglob("*.py"))
        else:
            candidates = [entry]
        for candidate in candidates:
            posix = candidate.as_posix()
            if any(fragment in posix for fragment in _SKIP_FRAGMENTS):
                continue
            files.append(candidate)
    return files


def lint_paths(paths: Iterable[Path | str],
               contracts: Contracts = DEFAULT_CONTRACTS) -> list[Finding]:
    findings: list[Finding] = []
    for path in iter_source_files(paths):
        findings.extend(lint_file(path, contracts))
    return findings


# -- baseline ratchet ------------------------------------------------------

def fingerprint(finding: Finding) -> str:
    """Stable identity of a finding for baseline matching.  Keyed on
    the module (not the filesystem path), so ``src/repro/...`` and an
    installed ``repro/...`` agree."""
    return f"{finding.module}:{finding.rule}:{finding.line}"


def load_baseline(path: Path | str) -> frozenset[str]:
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    return frozenset(data.get("fingerprints", ()))


def write_baseline(findings: Iterable[Finding], path: Path | str) -> None:
    prints = sorted({
        fingerprint(f) for f in findings if not f.suppressed
    })
    payload = {"version": BASELINE_VERSION, "fingerprints": prints}
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


def unsuppressed(findings: Iterable[Finding],
                 baseline: frozenset[str] = frozenset()) -> list[Finding]:
    """Findings that should fail the run: not pragma-suppressed and not
    tolerated by the baseline."""
    return [
        f for f in findings
        if not f.suppressed and fingerprint(f) not in baseline
    ]


# -- rendering -------------------------------------------------------------

def render_text(findings: list[Finding], *,
                baseline: frozenset[str] = frozenset(),
                show_suppressed: bool = False) -> str:
    active = unsuppressed(findings, baseline)
    lines = [
        f"{f.path}:{f.line}:{f.col}: {f.rule}: {f.message}"
        for f in active
    ]
    if show_suppressed:
        lines.extend(
            f"{f.path}:{f.line}:{f.col}: {f.rule}: {f.message} "
            "[suppressed]"
            for f in findings if f.suppressed
        )
    suppressed_count = sum(1 for f in findings if f.suppressed)
    baselined_count = len(findings) - suppressed_count - len(active)
    summary = (
        f"{len(active)} finding(s), {suppressed_count} suppressed by "
        f"pragma, {baselined_count} tolerated by baseline"
    )
    lines.append(summary)
    return "\n".join(lines)


def render_json(findings: list[Finding], *,
                baseline: frozenset[str] = frozenset()) -> str:
    active = unsuppressed(findings, baseline)
    payload = {
        "findings": [f.to_dict() for f in findings],
        "summary": {
            "active": len(active),
            "suppressed": sum(1 for f in findings if f.suppressed),
            "baselined": (
                len(findings) - len(active)
                - sum(1 for f in findings if f.suppressed)
            ),
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True)
