"""Module-contract registry: which invariants each module promises.

The checkers are scoped by *contract*, not heuristics: a module is
checked for float taint only when it is declared exact here, for
determinism only in its registered canonical-output functions, and for
fork safety only when pool workers can reach it.  Keeping the registry
in one literal makes a contract change reviewable as a one-line diff.

Module keys are source-tree-relative posix paths starting at the
package root — ``repro/lp/basis.py``, ``tests/test_lint.py`` — and
registry entries may use :mod:`fnmatch` globs (``repro/handelman/*``).
"""

from __future__ import annotations

from dataclasses import dataclass
from fnmatch import fnmatch


def _matches(module: str, pattern: str) -> bool:
    return module == pattern or fnmatch(module, pattern)


@dataclass(frozen=True)
class Contracts:
    """One repo's (or one test fixture set's) module contracts.

    Attributes
    ----------
    exact_modules:
        Glob patterns of modules whose arithmetic must stay on
        ``Fraction``/``int``; the float-taint checker runs here.
    determinism:
        ``(pattern, function_names)`` pairs registering canonical-output
        / cache-key producing functions.  ``("*",)`` registers every
        function of the module.  Unsorted ``set`` iteration is flagged
        module-wide in these modules (hash randomization makes it
        nondeterministic wherever it feeds anything); the remaining
        determinism rules apply inside the registered functions only.
    worker_modules:
        Glob patterns of modules importable by pool worker processes;
        the fork-safety mutable-global rule runs here.
    approved_signal_sites:
        ``(pattern, function_name)`` pairs where ``signal.signal``
        registration is part of the design (``"*"`` approves the whole
        module).  The rule itself applies to *every* linted module.
    approved_global_writers:
        ``(pattern, function_name)`` pairs allowed to write
        module-level mutable globals (deliberate registries).
    """

    exact_modules: tuple[str, ...] = ()
    determinism: tuple[tuple[str, tuple[str, ...]], ...] = ()
    worker_modules: tuple[str, ...] = ()
    approved_signal_sites: tuple[tuple[str, str], ...] = ()
    approved_global_writers: tuple[tuple[str, str], ...] = ()

    def is_exact(self, module: str) -> bool:
        return any(_matches(module, p) for p in self.exact_modules)

    def canonical_functions(self, module: str) -> tuple[str, ...] | None:
        """Registered function names for a determinism module, or
        ``None`` when the module carries no determinism contract."""
        names: list[str] = []
        found = False
        for pattern, functions in self.determinism:
            if _matches(module, pattern):
                found = True
                names.extend(functions)
        if not found:
            return None
        return tuple(names)

    def is_worker(self, module: str) -> bool:
        return any(_matches(module, p) for p in self.worker_modules)

    def _approved(self, table: tuple[tuple[str, str], ...],
                  module: str, function: str) -> bool:
        return any(
            _matches(module, pattern) and (name == "*" or name == function)
            for pattern, name in table
        )

    def signal_approved(self, module: str, function: str) -> bool:
        return self._approved(self.approved_signal_sites, module, function)

    def global_writer_approved(self, module: str, function: str) -> bool:
        return self._approved(self.approved_global_writers, module, function)


#: The repository's own contracts.  Scope notes:
#:
#: - ``lp/revised.py`` and ``lp/certify.py`` are declared exact even
#:   though both host the float warm-start stage: that stage *is* the
#:   declared boundary, carried by ``# lint: allow[float-stage]``
#:   pragmas at the stage functions (and by
#:   :func:`repro.lint.sanitizer.float_stage` at run time).
#: - Determinism functions are exactly the producers of canonical
#:   reports, cache entries and content-addressed keys; volatile stats
#:   paths (timers, cache hit counters) deliberately stay unregistered.
#: - ``repro/serve/*`` runs only in the parent/server process and is
#:   not worker-reachable; ``repro/lp/backend.py`` keeps its lazily
#:   populated backend registry (per-process, deterministic content),
#:   approved below.
DEFAULT_CONTRACTS = Contracts(
    exact_modules=(
        "repro/lp/basis.py",
        "repro/lp/revised.py",
        "repro/lp/dual.py",
        "repro/lp/certify.py",
        "repro/handelman/*",
        "repro/poly/*",
        "repro/core/refutation.py",
        "repro/utils/rationals.py",
    ),
    determinism=(
        ("repro/engine/jobs.py", ("canonical_payload", "key", "to_dict")),
        ("repro/serve/shard.py", (
            "_canonical_result", "_canonical_portfolio", "canonical_report",
            "canonical_json", "merge_reports", "report_ok",
        )),
        # The tiered cache package: entry/record/index serialization
        # feeds content-addressed bytes (checksums, the warm log and
        # its sidecar, federation deltas), so every producer must be
        # canonical-byte deterministic.
        ("repro/engine/cache/__init__.py", (
            "put", "_put_dir", "_put_warm", "merge_from", "apply_delta",
            "delta_since",
        )),
        ("repro/engine/cache/entry.py", (
            "result_checksum", "build_entry", "entry_json",
        )),
        ("repro/engine/cache/warm.py", (
            "_header_line", "_record_line", "write_sidecar", "compact",
        )),
        ("repro/engine/cache/federation.py", ("merge_deltas",)),
        ("repro/engine/batch.py", (
            "discover_pairs", "pair_shard_index", "shard_pairs", "to_dict",
            "batch_to_json",
        )),
        ("repro/bench/reporting.py", (
            "format_table", "format_markdown", "format_csv",
        )),
        # The coordinator's report-synthesis path: per-shard report
        # dicts and ownership assignment feed merge_reports, so their
        # output must be canonical-byte deterministic.
        ("repro/coord/dispatch.py", ("shard_report", "reports")),
    ),
    worker_modules=(
        "repro/core/*",
        "repro/lp/*",
        "repro/handelman/*",
        "repro/poly/*",
        "repro/invariants/*",
        "repro/lang/*",
        "repro/ts/*",
        "repro/utils/*",
        "repro/engine/*",
        "repro/obs/*",
        # Fault injection is consulted inside workers (crash/hang/delay
        # sites), so its globals must obey the fork-safety contract.
        "repro/faults/*",
    ),
    approved_signal_sites=(
        # The executor's SIGALRM job-timeout path (worker side) and the
        # CLI's SIGTERM-as-interrupt context manager (parent side).
        ("repro/engine/executor.py", "*"),
        ("repro/cli.py", "_sigterm_as_interrupt"),
    ),
    approved_global_writers=(
        # The LP backend registry: populated lazily per process before
        # any answer-producing work, deterministic content.
        ("repro/lp/backend.py", "register_backend"),
        ("repro/lp/backend.py", "_ensure_builtins"),
    ),
)
