"""Suppression pragmas: ``# lint: allow[<family-or-rule>, ...]``.

A pragma on the line of a finding suppresses that finding; a pragma on
the ``def`` line of an enclosing function suppresses every matching
finding inside the function.  Tokens name either a rule
(``float-cast``) or a whole family (``float-stage``).

The scan is textual (per source line), which keeps it trivially robust
to partial parses; a pragma-shaped string *literal* would also match,
which is acceptable for a repo-internal linter and exercised nowhere.
"""

from __future__ import annotations

import re

_PRAGMA_RE = re.compile(r"#\s*lint:\s*allow\[([A-Za-z0-9_\-, ]+)\]")


def pragma_index(source: str) -> dict[int, frozenset[str]]:
    """Map 1-based line numbers to the set of allowed tokens there."""
    index: dict[int, frozenset[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _PRAGMA_RE.search(line)
        if match is None:
            continue
        tokens = frozenset(
            token.strip() for token in match.group(1).split(",")
            if token.strip()
        )
        if tokens:
            index[lineno] = tokens
    return index
