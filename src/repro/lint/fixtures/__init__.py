"""Deliberate rule violations used by ``tests/test_lint.py``.

Every module here pairs at least one true positive per rule with a
pragma-suppressed twin.  The lint driver skips this package when
scanning directories; the tests lint the files explicitly under a
fixture contract registry.
"""
