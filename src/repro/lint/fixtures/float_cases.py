"""Float-taint fixture: declared-exact module with violations."""

from fractions import Fraction
import math


def cast_positive(x):
    return float(x)


def cast_suppressed(x):
    return float(x)  # lint: allow[float-cast]


def math_positive(x):
    return math.sqrt(x)


def math_suppressed(x):
    return math.sqrt(x)  # lint: allow[math-call]


def literal_into_return(x):
    scale = 0.5
    return scale * x


def literal_into_fraction(x):
    eps = 1e-9
    return Fraction(eps)


def literal_suppressed(x):
    scale = 0.5  # lint: allow[float-literal]
    return scale * x


def literal_not_a_sink(x):
    # A float literal that never reaches a return/Fraction sink is
    # fine (timer thresholds, log formatting, ...).
    threshold = 0.25
    print(threshold)
    return x


def division_positive(xs):
    ratio = len(xs) / 2
    return ratio


def division_suppressed(xs):
    ratio = len(xs) / 2  # lint: allow[int-division]
    return ratio


def division_unknown_operands(a, b):
    # Operand types unknown: the taint pass stays conservative and
    # does not flag (could be Fraction / Fraction).
    ratio = a / b
    return ratio


def division_exact(a, b):
    # Fraction-valued division is the sanctioned exact idiom.
    ratio = Fraction(a) / b
    return ratio


def indirect_cast(x):
    convert = float
    return convert(x)


def laundered(x):
    # int() re-enters the exact domain; no finding.
    approx = 0.5 * x
    return int(approx)


def whole_function_allowed(x):  # lint: allow[float-stage]
    scale = 0.5
    return float(scale * x) + math.floor(x)
