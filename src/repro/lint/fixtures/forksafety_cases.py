"""Fork-safety fixture: worker-reachable module with violations."""

import signal

_CACHE = {}
_SEEN = set()
_LIMIT = 10  # immutable global: writes through `global` are still a
             # rebind but _LIMIT is not tracked (not a mutable literal)


def remember(key, value):
    _CACHE[key] = value


def remember_allowed(key, value):
    _CACHE[key] = value  # lint: allow[mutable-global-write]


def note(item):
    _SEEN.add(item)


def rebind():
    global _CACHE
    _CACHE = {}


def forget(key):
    del _CACHE[key]


def local_shadow(key, value):
    # A local named like the global shadows it; no finding.
    _CACHE = {}
    _CACHE[key] = value
    return _CACHE


def read_only(key):
    return _CACHE.get(key)


def install_handler(handler):
    signal.signal(signal.SIGTERM, handler)


def install_handler_allowed(handler):
    signal.signal(signal.SIGTERM, handler)  # lint: allow[signal-registration]


def approved_handler(handler):
    # Approved via the fixture contract registry in tests.
    signal.signal(signal.SIGTERM, handler)
