"""Determinism fixture: canonical-output module with violations."""

import os
import random
import time
from time import perf_counter


def set_iter_positive(values):
    return [v for v in {1, 2, 3} if v in values]


def set_iter_suppressed(values):
    return [v for v in {1, 2, 3} if v in values]  # lint: allow[unsorted-set-iter]


def set_iter_sorted(values):
    return [v for v in sorted({1, 2, 3}) if v in values]


def dict_iter_positive(mapping):
    out = []
    for key, value in mapping.items():
        out.append((key, value))
    return out


def dict_iter_suppressed(mapping):
    out = []
    for key, value in mapping.items():  # lint: allow[unsorted-dict-iter]
        out.append((key, value))
    return out


def dict_iter_sorted(mapping):
    return [(k, v) for k, v in sorted(mapping.items())]


def glob_positive(root):
    return [p.name for p in root.glob("*.json")]


def glob_suppressed(root):
    return [p.name for p in root.glob("*.json")]  # lint: allow[unsorted-glob]


def listdir_positive(root):
    return [name for name in os.listdir(root)]


def time_positive():
    return time.time()


def time_bare_positive():
    return perf_counter()


def time_suppressed():
    return time.time()  # lint: allow[time-call]


def random_positive():
    return random.random()


def random_seeded_ok():
    return random.Random(7).random()


def random_suppressed():
    return random.random()  # lint: allow[random-call]


def id_positive(obj):
    return id(obj)


def id_suppressed(obj):
    return id(obj)  # lint: allow[id-call]


def urandom_positive():
    return os.urandom(8)


def urandom_suppressed():
    return os.urandom(8)  # lint: allow[determinism]
