"""Float-taint checker for declared-exact modules.

Two layers, both intraprocedural and deliberately simple enough to
read in one sitting:

1. **Strict rules.**  In an exact module, every literal ``float(...)``
   cast and every ``math.*`` call is flagged outright (``float-cast``,
   ``math-call``) — these modules promise ``Fraction``/``int``
   arithmetic, so a cast is wrong until a pragma says it is the
   declared float warm-start boundary.

2. **Taint rules.**  A forward dataflow pass over each function tracks
   where float *values* originate — float literals
   (``float-literal``), true division of two integer-kinded operands
   (``int-division``), and indirect float construction through a
   variable bound to ``float`` — and reports a source only when its
   value reaches an exactness sink: a ``return``/``yield`` value or a
   ``Fraction(...)`` argument.  This keeps float-valued *plumbing*
   (phase timers, tolerances compared against and dropped) quiet
   while catching values that leak into answers.

The taint pass is a heuristic, not an abstract interpreter: branches
are walked sequentially, container/attribute stores drop taint (weak
updates), and the function body is walked twice so loop-carried taint
stabilizes.  ``int()``/``round()``/``str()`` launder taint — they are
exactly the legitimate float→exact crossings.
"""

from __future__ import annotations

import ast

from repro.lint.contracts import Contracts
from repro.lint.model import RawFinding

#: Calls whose result is integer-kinded and taint-free.
_LAUNDER_INT = frozenset({"int", "round", "len", "ord", "hash"})
#: Calls whose result is non-numeric and taint-free.
_LAUNDER_OTHER = frozenset({"str", "repr", "bool", "format", "sorted",
                            "tuple", "list", "set", "dict", "frozenset"})
#: Constructors producing exact rationals.
_FRACTION_MAKERS = frozenset({"Fraction", "as_fraction", "rationalize"})

_UNKNOWN = ("unknown", frozenset())

_NOUN = {
    "float-literal": "float literal",
    "int-division": "int/int true-division result",
    "float-cast": "float(...) result",
}


def _join_kind(left: str, right: str) -> str:
    if left == right:
        return left
    if "float" in (left, right):
        return "float"
    return "unknown"


def _math_aliases(tree: ast.Module) -> tuple[frozenset[str], frozenset[str]]:
    """``(module aliases, imported member names)`` of ``math``."""
    modules: set[str] = set()
    members: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "math":
                    modules.add(alias.asname or "math")
        elif isinstance(node, ast.ImportFrom) and node.module == "math":
            for alias in node.names:
                members.add(alias.asname or alias.name)
    return frozenset(modules), frozenset(members)


def check(tree: ast.Module, module: str,
          contracts: Contracts) -> list[RawFinding]:
    if not contracts.is_exact(module):
        return []
    findings: list[RawFinding] = []
    emitted: set[tuple[str, int, int]] = set()
    math_modules, math_members = _math_aliases(tree)

    def emit(rule: str, line: int, col: int, message: str) -> None:
        key = (rule, line, col)
        if key in emitted:
            return
        emitted.add(key)
        findings.append(RawFinding(rule, line, col, message))

    # Strict pass: every float(...) cast / math call, sink or not.
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        fn = node.func
        if isinstance(fn, ast.Name) and fn.id == "float":
            emit("float-cast", node.lineno, node.col_offset,
                 "float(...) cast in a declared-exact module")
        elif (isinstance(fn, ast.Attribute)
                and isinstance(fn.value, ast.Name)
                and fn.value.id in math_modules):
            emit("math-call", node.lineno, node.col_offset,
                 f"math.{fn.attr}(...) in a declared-exact module")
        elif isinstance(fn, ast.Name) and fn.id in math_members:
            emit("math-call", node.lineno, node.col_offset,
                 f"{fn.id}(...) (imported from math) in a "
                 "declared-exact module")

    # Taint pass, one function at a time (ast.walk reaches nested and
    # method definitions individually).
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            _TaintPass(node, emit).run()
    return findings


class _TaintPass:
    """Forward taint over one function body."""

    def __init__(self, func, emit) -> None:
        self.func = func
        self.emit = emit
        self.env: dict[str, tuple[str, frozenset]] = {}

    def run(self) -> None:
        # Two sweeps: the second sees loop-carried taint bound on the
        # first; `emit` dedupes repeated reports.
        for _ in range(2):
            for stmt in self.func.body:
                self.exec_stmt(stmt)

    # -- sinks -------------------------------------------------------------

    def sink(self, taints: frozenset, context: str) -> None:
        for rule, line, col, detail in sorted(taints):
            noun = _NOUN.get(rule, rule)
            self.emit(rule, line, col, f"{noun} ({detail}) {context}")

    # -- statements --------------------------------------------------------

    def exec_stmt(self, stmt: ast.stmt) -> None:
        kind = type(stmt)
        if kind is ast.Assign:
            value = self.eval(stmt.value)
            for target in stmt.targets:
                self.bind(target, value)
        elif kind is ast.AnnAssign:
            if stmt.value is not None:
                self.bind(stmt.target, self.eval(stmt.value))
        elif kind is ast.AugAssign:
            value = self.eval(stmt.value)
            if isinstance(stmt.target, ast.Name):
                old = self.env.get(stmt.target.id, _UNKNOWN)
                self.env[stmt.target.id] = (
                    _join_kind(old[0], value[0]), old[1] | value[1]
                )
        elif kind is ast.Return:
            if stmt.value is not None:
                _, taints = self.eval(stmt.value)
                self.sink(
                    taints,
                    f"flows into the value returned at line {stmt.lineno}",
                )
        elif kind is ast.Expr:
            self.eval(stmt.value)
        elif kind in (ast.For, ast.AsyncFor):
            _, taints = self.eval(stmt.iter)
            self.bind(stmt.target, ("unknown", taints))
            for inner in stmt.body:
                self.exec_stmt(inner)
            for inner in stmt.orelse:
                self.exec_stmt(inner)
        elif kind is ast.While:
            self.eval(stmt.test)
            for inner in stmt.body:
                self.exec_stmt(inner)
            for inner in stmt.orelse:
                self.exec_stmt(inner)
        elif kind is ast.If:
            self.eval(stmt.test)
            for inner in stmt.body:
                self.exec_stmt(inner)
            for inner in stmt.orelse:
                self.exec_stmt(inner)
        elif kind in (ast.With, ast.AsyncWith):
            for item in stmt.items:
                self.eval(item.context_expr)
                if item.optional_vars is not None:
                    self.bind(item.optional_vars, _UNKNOWN)
            for inner in stmt.body:
                self.exec_stmt(inner)
        elif kind is ast.Try:
            for inner in stmt.body:
                self.exec_stmt(inner)
            for handler in stmt.handlers:
                for inner in handler.body:
                    self.exec_stmt(inner)
            for inner in stmt.orelse:
                self.exec_stmt(inner)
            for inner in stmt.finalbody:
                self.exec_stmt(inner)
        elif kind in (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef):
            self.env[stmt.name] = _UNKNOWN  # analyzed separately
        elif kind is ast.Raise:
            if stmt.exc is not None:
                self.eval(stmt.exc)
        elif kind is ast.Assert:
            self.eval(stmt.test)
        # Pass/Break/Continue/Import/Global/Nonlocal/Delete: no effect.

    def bind(self, target: ast.expr, value: tuple[str, frozenset]) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = value
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self.bind(element, ("unknown", value[1]))
        elif isinstance(target, ast.Starred):
            self.bind(target.value, value)
        # Subscript/Attribute stores: weak update, taint dropped.

    # -- expressions -------------------------------------------------------

    def eval(self, node: ast.expr | None) -> tuple[str, frozenset]:
        if node is None:
            return _UNKNOWN
        method = getattr(self, f"eval_{type(node).__name__}", None)
        if method is not None:
            return method(node)
        taints: frozenset = frozenset()
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                taints |= self.eval(child)[1]
        return ("unknown", taints)

    def eval_Constant(self, node: ast.Constant) -> tuple[str, frozenset]:
        value = node.value
        if isinstance(value, float):
            taint = ("float-literal", node.lineno, node.col_offset,
                     repr(value))
            return ("float", frozenset({taint}))
        if isinstance(value, (bool, int)):
            return ("int", frozenset())
        return ("other", frozenset())

    def eval_Name(self, node: ast.Name) -> tuple[str, frozenset]:
        if node.id == "float":
            return ("float-ctor", frozenset())
        return self.env.get(node.id, _UNKNOWN)

    def eval_BinOp(self, node: ast.BinOp) -> tuple[str, frozenset]:
        left_kind, left_taints = self.eval(node.left)
        right_kind, right_taints = self.eval(node.right)
        taints = left_taints | right_taints
        if isinstance(node.op, ast.Div):
            if "fraction" in (left_kind, right_kind):
                return ("fraction", taints)
            if left_kind == "int" and right_kind == "int":
                taint = ("int-division", node.lineno, node.col_offset,
                         "int / int")
                return ("float", taints | frozenset({taint}))
            if "float" in (left_kind, right_kind):
                return ("float", taints)
            return ("unknown", taints)
        return (_join_kind(left_kind, right_kind), taints)

    def eval_UnaryOp(self, node: ast.UnaryOp) -> tuple[str, frozenset]:
        return self.eval(node.operand)

    def eval_BoolOp(self, node: ast.BoolOp) -> tuple[str, frozenset]:
        kind, taints = _UNKNOWN
        for value in node.values:
            value_kind, value_taints = self.eval(value)
            kind = _join_kind(kind, value_kind)
            taints = taints | value_taints
        return (kind, taints)

    def eval_IfExp(self, node: ast.IfExp) -> tuple[str, frozenset]:
        self.eval(node.test)
        body_kind, body_taints = self.eval(node.body)
        else_kind, else_taints = self.eval(node.orelse)
        return (_join_kind(body_kind, else_kind), body_taints | else_taints)

    def eval_Compare(self, node: ast.Compare) -> tuple[str, frozenset]:
        self.eval(node.left)
        for comparator in node.comparators:
            self.eval(comparator)
        return ("int", frozenset())

    def eval_Call(self, node: ast.Call) -> tuple[str, frozenset]:
        arg_taints: frozenset = frozenset()
        for arg in node.args:
            arg_taints |= self.eval(arg)[1]
        for keyword in node.keywords:
            arg_taints |= self.eval(keyword.value)[1]
        fn = node.func
        if isinstance(fn, ast.Name):
            name = fn.id
            if name == "float":
                taint = ("float-cast", node.lineno, node.col_offset,
                         "float(...)")
                return ("float", arg_taints | frozenset({taint}))
            if name in _FRACTION_MAKERS:
                if name == "Fraction":
                    self.sink(
                        arg_taints,
                        f"flows into Fraction(...) at line {node.lineno}",
                    )
                return ("fraction", frozenset())
            if name in _LAUNDER_INT:
                return ("int", frozenset())
            if name in _LAUNDER_OTHER:
                return ("other", frozenset())
            if name == "abs" and len(node.args) == 1:
                return self.eval(node.args[0])  # same type as its arg
            bound_kind, _ = self.env.get(name, _UNKNOWN)
            if bound_kind == "float-ctor":
                taint = ("float-cast", node.lineno, node.col_offset,
                         f"{name}(...) where {name} is bound to float")
                return ("float", arg_taints | frozenset({taint}))
            return ("unknown", arg_taints)
        _, fn_taints = self.eval(fn)
        return ("unknown", fn_taints | arg_taints)

    def eval_Attribute(self, node: ast.Attribute) -> tuple[str, frozenset]:
        _, taints = self.eval(node.value)
        return ("unknown", taints)

    def eval_Subscript(self, node: ast.Subscript) -> tuple[str, frozenset]:
        _, taints = self.eval(node.value)
        self.eval(node.slice)
        return ("unknown", taints)

    def eval_Tuple(self, node: ast.Tuple) -> tuple[str, frozenset]:
        taints: frozenset = frozenset()
        for element in node.elts:
            taints |= self.eval(element)[1]
        return ("unknown", taints)

    eval_List = eval_Tuple
    eval_Set = eval_Tuple

    def eval_Dict(self, node: ast.Dict) -> tuple[str, frozenset]:
        taints: frozenset = frozenset()
        for key in node.keys:
            if key is not None:
                taints |= self.eval(key)[1]
        for value in node.values:
            taints |= self.eval(value)[1]
        return ("unknown", taints)

    def _eval_comprehension(self, node) -> frozenset:
        taints: frozenset = frozenset()
        for generator in node.generators:
            taints |= self.eval(generator.iter)[1]
            self.bind(generator.target, _UNKNOWN)
            for condition in generator.ifs:
                self.eval(condition)
        return taints

    def eval_ListComp(self, node: ast.ListComp) -> tuple[str, frozenset]:
        taints = self._eval_comprehension(node)
        taints |= self.eval(node.elt)[1]
        return ("unknown", taints)

    eval_SetComp = eval_ListComp
    eval_GeneratorExp = eval_ListComp

    def eval_DictComp(self, node: ast.DictComp) -> tuple[str, frozenset]:
        taints = self._eval_comprehension(node)
        taints |= self.eval(node.key)[1]
        taints |= self.eval(node.value)[1]
        return ("unknown", taints)

    def eval_JoinedStr(self, node: ast.JoinedStr) -> tuple[str, frozenset]:
        for value in node.values:
            self.eval(value)
        return ("other", frozenset())

    def eval_Lambda(self, node: ast.Lambda) -> tuple[str, frozenset]:
        return ("other", frozenset())  # bodies analyzed nowhere: tiny

    def eval_NamedExpr(self, node: ast.NamedExpr) -> tuple[str, frozenset]:
        value = self.eval(node.value)
        self.bind(node.target, value)
        return value

    def eval_Yield(self, node: ast.Yield) -> tuple[str, frozenset]:
        if node.value is not None:
            _, taints = self.eval(node.value)
            self.sink(
                taints,
                f"flows into the value yielded at line {node.lineno}",
            )
        return _UNKNOWN

    def eval_YieldFrom(self, node: ast.YieldFrom) -> tuple[str, frozenset]:
        self.eval(node.value)
        return _UNKNOWN

    def eval_Slice(self, node: ast.Slice) -> tuple[str, frozenset]:
        self.eval(node.lower)
        self.eval(node.upper)
        self.eval(node.step)
        return ("other", frozenset())

    def eval_Starred(self, node: ast.Starred) -> tuple[str, frozenset]:
        return self.eval(node.value)
