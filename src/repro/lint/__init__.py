"""Repo-native static analysis and runtime sanitizers (``repro.lint``).

The reproduction rests on contracts that ordinary tests only check
after the fact: bit-identical ``Fraction`` thresholds from the exact LP
core, content-addressed cache keys, byte-identical shard merges, and
fork-safe worker code.  This package enforces them *before* the fact:

- :mod:`repro.lint.engine` — AST-based analyzer (stdlib ``ast``, no
  dependencies) with three checker families driven by the
  module-contract registry in :mod:`repro.lint.contracts`:

  * **float-taint** (:mod:`repro.lint.floats`) — no float arithmetic
    leaking into declared-exact modules;
  * **determinism** (:mod:`repro.lint.determinism`) — no
    order-unstable iteration or volatile values in canonical-output /
    cache-key producing functions;
  * **fork-safety** (:mod:`repro.lint.forksafety`) — no mutable
    module globals written from worker-reachable code, no stray
    ``signal.signal`` registrations.

  Findings are suppressed line- or function-wide with
  ``# lint: allow[<family-or-rule>]`` pragmas
  (:mod:`repro.lint.pragmas`), and a ``--baseline`` file supports
  ratchet-style adoption.  Exposed as ``repro-diffcost lint``.

- :mod:`repro.lint.sanitizer` — the runtime companion: with
  ``REPRO_SANITIZE=1``, :func:`~repro.lint.sanitizer.exact_region`
  traps any ``float(...)`` construction inside exact LP solves and
  raises :class:`~repro.lint.sanitizer.ExactnessViolation` with the
  offending call site, while
  :func:`~repro.lint.sanitizer.float_stage` re-opens the declared
  float warm-start boundary.
"""

from repro.lint.contracts import DEFAULT_CONTRACTS, Contracts
from repro.lint.engine import (
    Finding,
    fingerprint,
    lint_file,
    lint_paths,
    load_baseline,
    render_json,
    render_text,
    unsuppressed,
    write_baseline,
)
from repro.lint.sanitizer import (
    ExactnessViolation,
    exact_region,
    float_stage,
    sanitizer_enabled,
)

__all__ = [
    "Contracts",
    "DEFAULT_CONTRACTS",
    "ExactnessViolation",
    "Finding",
    "exact_region",
    "fingerprint",
    "float_stage",
    "lint_file",
    "lint_paths",
    "load_baseline",
    "render_json",
    "render_text",
    "sanitizer_enabled",
    "unsuppressed",
    "write_baseline",
]
