"""Runtime float-construction trap for exact LP regions.

With ``REPRO_SANITIZE=1``, entering an :func:`exact_region` replaces
``builtins.float`` with a trap whose *construction* raises
:class:`ExactnessViolation` naming the offending call site, while
``isinstance(x, float)`` / ``issubclass(cls, float)`` keep answering
against the real ``float`` type.  :func:`float_stage` re-opens the
declared float warm-start boundary inside a region (scipy/float
simplex candidate generation).  Without the environment switch both
context managers are no-ops costing one dict lookup.

Scope and caveats:

- Only *name lookups* of ``float`` are intercepted.  C-level float
  arithmetic (and e.g. ``json``'s float parsing) is untouched — the
  trap targets exactly the failure mode the static checker polices,
  a ``float(...)`` cast reached from an exact solve.
- The trap swaps a process-wide builtin, so regions are meaningful
  per process (workers inherit ``REPRO_SANITIZE`` through the
  environment and arm their own regions).  It is not thread-safe;
  the exact solvers run on one thread per process.
"""

from __future__ import annotations

import builtins
import os
import sys

SANITIZE_ENV = "REPRO_SANITIZE"

_REAL_FLOAT = float


class ExactnessViolation(AssertionError):
    """A float was constructed inside an exact LP region."""


def sanitizer_enabled() -> bool:
    """True iff ``REPRO_SANITIZE`` is set to a non-empty, non-zero
    value (checked dynamically, so tests can flip it per case)."""
    return os.environ.get(SANITIZE_ENV, "") not in ("", "0")


#: regions: labels of active exact regions (stack); suspended: nesting
#: depth of float_stage escapes.  The trap is armed iff regions is
#: non-empty and suspended == 0.
_STATE = {"regions": [], "suspended": 0}


def _call_site() -> str:
    frame = sys._getframe(1)
    while frame is not None and frame.f_globals.get("__name__") == __name__:
        frame = frame.f_back
    if frame is None:  # pragma: no cover - the caller always has a frame
        return "<unknown>"
    return (f"{frame.f_code.co_filename}:{frame.f_lineno} "
            f"in {frame.f_code.co_name}")


class _FloatTrapMeta(type):
    def __instancecheck__(cls, instance) -> bool:
        return isinstance(instance, _REAL_FLOAT)

    def __subclasscheck__(cls, subclass) -> bool:
        return issubclass(subclass, _REAL_FLOAT)

    def __call__(cls, *args, **kwargs):
        region = _STATE["regions"][-1] if _STATE["regions"] else "<?>"
        shown = ", ".join(repr(a) for a in args[:3])
        raise ExactnessViolation(
            f"float({shown}) constructed inside exact region "
            f"{region!r} at {_call_site()}; exact LP paths must stay on "
            "Fraction (wrap a declared float stage in float_stage())"
        )


class _FloatTrap(metaclass=_FloatTrapMeta):
    """Stand-in bound to ``builtins.float`` while a region is armed."""


def _arm() -> None:
    builtins.float = _FloatTrap


def _disarm() -> None:
    builtins.float = _REAL_FLOAT


class exact_region:
    """Context manager marking an exact LP solve.  ``active=False``
    (e.g. a float-mode solver sharing the code path) degrades to a
    no-op, as does an unset ``REPRO_SANITIZE``."""

    __slots__ = ("label", "active")

    def __init__(self, label: str, active: bool = True):
        self.label = label
        self.active = active and sanitizer_enabled()

    def __enter__(self) -> "exact_region":
        if self.active:
            _STATE["regions"].append(self.label)
            if len(_STATE["regions"]) == 1 and not _STATE["suspended"]:
                _arm()
        return self

    def __exit__(self, *exc) -> bool:
        if self.active:
            _STATE["regions"].pop()
            if not _STATE["regions"]:
                _disarm()
        return False


class float_stage:
    """Re-open the declared float warm-start boundary inside an exact
    region (no-op outside one).  Must wrap *complete* float-stage
    calls, never a generator that suspends mid-stage."""

    __slots__ = ("label", "_suspending")

    def __init__(self, label: str = "float-stage"):
        self.label = label
        self._suspending = False

    def __enter__(self) -> "float_stage":
        if _STATE["regions"]:
            self._suspending = True
            _STATE["suspended"] += 1
            if _STATE["suspended"] == 1:
                _disarm()
        return self

    def __exit__(self, *exc) -> bool:
        if self._suspending:
            self._suspending = False
            _STATE["suspended"] -= 1
            if not _STATE["suspended"] and _STATE["regions"]:
                _arm()
        return False


def exact_method(label: str):
    """Decorator wrapping a method in an :class:`exact_region`;
    instances with a truthy ``float_mode`` attribute deactivate it
    (the float solver deliberately shares these code paths)."""
    import functools

    def decorate(method):
        @functools.wraps(method)
        def wrapper(self, *args, **kwargs):
            with exact_region(label,
                              active=not getattr(self, "float_mode", False)):
                return method(self, *args, **kwargs)
        return wrapper
    return decorate


def _reset() -> None:
    """Restore the real builtin unconditionally (test teardown)."""
    _STATE["regions"].clear()
    _STATE["suspended"] = 0
    _disarm()
