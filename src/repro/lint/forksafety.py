"""Worker/fork-safety checker.

Two rules:

- ``mutable-global-write`` — in worker-reachable modules, a function
  that mutates (or rebinds via ``global``) a module-level mutable
  literal (``dict``/``list``/``set`` displays, comprehensions, or
  ``dict()``-style constructor calls).  Worker processes each carry
  their own copy of such state; writes silently diverge between parent
  and workers and between fork and spawn start methods.  Deliberate
  registries are approved in the contract registry or carry a
  ``# lint: allow[fork-safety]`` pragma.
- ``signal-registration`` — ``signal.signal(...)`` outside the
  approved executor/CLI sites, checked in *every* linted module:
  handler registration composes globally, so a stray registration in
  library code can clobber the executor's SIGALRM timeout path or the
  CLI's SIGTERM flush.
"""

from __future__ import annotations

import ast

from repro.lint.contracts import Contracts
from repro.lint.model import RawFinding

_MUTABLE_LITERALS = (ast.Dict, ast.List, ast.Set, ast.DictComp,
                     ast.ListComp, ast.SetComp)
_MUTABLE_CONSTRUCTORS = frozenset({
    "dict", "list", "set", "defaultdict", "OrderedDict", "Counter",
    "deque",
})
_MUTATORS = frozenset({
    "append", "add", "update", "extend", "insert", "setdefault", "pop",
    "popitem", "remove", "discard", "clear",
})


def _mutable_global_names(tree: ast.Module) -> frozenset[str]:
    names: set[str] = set()
    for node in tree.body:
        if isinstance(node, ast.Assign):
            value, targets = node.value, node.targets
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            value, targets = node.value, [node.target]
        else:
            continue
        mutable = isinstance(value, _MUTABLE_LITERALS) or (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id in _MUTABLE_CONSTRUCTORS
        )
        if not mutable:
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
    return frozenset(names)


def _signal_aliases(tree: ast.Module) -> frozenset[str]:
    """Names under which ``signal.signal`` is callable bare."""
    names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == "signal":
            for alias in node.names:
                if alias.name == "signal":
                    names.add(alias.asname or "signal")
    return frozenset(names)


def check(tree: ast.Module, module: str,
          contracts: Contracts) -> list[RawFinding]:
    findings: list[RawFinding] = []
    worker = contracts.is_worker(module)
    globals_ = _mutable_global_names(tree) if worker else frozenset()
    bare_signal = _signal_aliases(tree)

    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            _check_function(node, module, contracts, globals_,
                            bare_signal, findings)

    # Module/class-level statements outside any function: still police
    # signal registration (import-time handler installation).
    if not contracts.signal_approved(module, "<module>"):
        stack = list(tree.body)
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if _is_signal_call(node, bare_signal):
                findings.append(RawFinding(
                    "signal-registration", node.lineno, node.col_offset,
                    "signal.signal(...) at import time, outside the "
                    "approved executor/CLI sites",
                ))
            stack.extend(ast.iter_child_nodes(node))
    return findings


def _is_signal_call(node: ast.AST, bare_signal: frozenset[str]) -> bool:
    if not isinstance(node, ast.Call):
        return False
    fn = node.func
    if (isinstance(fn, ast.Attribute) and fn.attr == "signal"
            and isinstance(fn.value, ast.Name)
            and fn.value.id == "signal"):
        return True
    return isinstance(fn, ast.Name) and fn.id in bare_signal


def _check_function(func, module, contracts, globals_, bare_signal,
                    findings) -> None:
    # signal.signal registrations (rule applies in every module).
    if not contracts.signal_approved(module, func.name):
        for node in _direct_body_walk(func):
            if _is_signal_call(node, bare_signal):
                findings.append(RawFinding(
                    "signal-registration", node.lineno, node.col_offset,
                    f"signal.signal(...) registered in {func.name!r}, "
                    "outside the approved executor/CLI sites",
                ))

    if not globals_ or contracts.global_writer_approved(module, func.name):
        return

    declared_global: set[str] = set()
    local_stores: set[str] = set()
    for node in _direct_body_walk(func):
        if isinstance(node, ast.Global):
            declared_global.update(node.names)
        elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            local_stores.add(node.id)

    def is_module_global(name: str) -> bool:
        if name not in globals_:
            return False
        if name in declared_global:
            return True
        return name not in local_stores  # locally rebound names shadow

    def emit(name: str, node: ast.AST, how: str) -> None:
        findings.append(RawFinding(
            "mutable-global-write", node.lineno, node.col_offset,
            f"{how} module-level mutable global {name!r} from "
            f"worker-reachable function {func.name!r}",
        ))

    for node in _direct_body_walk(func):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for target in targets:
                if (isinstance(target, ast.Name)
                        and target.id in declared_global
                        and target.id in globals_):
                    emit(target.id, node, "rebinds")
                elif (isinstance(target, ast.Subscript)
                        and isinstance(target.value, ast.Name)
                        and is_module_global(target.value.id)):
                    emit(target.value.id, node, "writes an item of")
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if (isinstance(target, ast.Subscript)
                        and isinstance(target.value, ast.Name)
                        and is_module_global(target.value.id)):
                    emit(target.value.id, node, "deletes an item of")
        elif isinstance(node, ast.Call):
            fn = node.func
            if (isinstance(fn, ast.Attribute) and fn.attr in _MUTATORS
                    and isinstance(fn.value, ast.Name)
                    and is_module_global(fn.value.id)):
                emit(fn.value.id, node, f"calls .{fn.attr}() on")


def _direct_body_walk(func):
    """Walk a function body without descending into nested function
    definitions (they get their own scope analysis)."""
    stack = list(func.body)
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            stack.append(child)
