"""Determinism checker for canonical-output / cache-key producers.

Scoped by the contract registry: in a module carrying a determinism
contract, iteration over ``set`` values is flagged everywhere (string
hash randomization makes its order vary per process, wherever it
feeds), while the remaining rules apply inside the registered
canonical functions only:

- iterating ``.items()`` / ``.keys()`` / ``.values()`` without a
  ``sorted(...)`` wrapper (``unsorted-dict-iter``) — dict insertion
  order is deterministic per process but *not* guaranteed equal
  between the sharded and unsharded construction paths, which is
  exactly the byte-identity contract;
- iterating filesystem listings (``glob``/``rglob``/``iterdir``/
  ``os.listdir``/``os.scandir``) unsorted (``unsorted-glob``);
- ``time.*`` calls (``time-call``), ``random.*`` without an explicit
  seed argument (``random-call``; ``random.Random(seed)`` is fine),
  ``id(...)`` (``id-call``) and ``os.urandom`` (``urandom-call``).
"""

from __future__ import annotations

import ast

from repro.lint.contracts import Contracts
from repro.lint.model import RawFinding

_DICT_VIEWS = frozenset({"items", "keys", "values"})
_FS_LISTING_METHODS = frozenset({"glob", "rglob", "iterdir"})
_OS_LISTINGS = frozenset({"listdir", "scandir"})


def _imported_names(tree: ast.Module, module: str) -> frozenset[str]:
    names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == module:
            for alias in node.names:
                names.add(alias.asname or alias.name)
    return frozenset(names)


def _is_sorted_wrapped(node: ast.expr) -> bool:
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "sorted")


def _is_set_expr(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset"))


def _is_dict_view(node: ast.expr) -> bool:
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _DICT_VIEWS
            and not node.args and not node.keywords)


def _is_fs_listing(node: ast.expr) -> bool:
    if not isinstance(node, ast.Call):
        return False
    fn = node.func
    if isinstance(fn, ast.Attribute):
        if fn.attr in _FS_LISTING_METHODS:
            return True
        if (isinstance(fn.value, ast.Name) and fn.value.id == "os"
                and fn.attr in _OS_LISTINGS):
            return True
    return False


def check(tree: ast.Module, module: str,
          contracts: Contracts) -> list[RawFinding]:
    functions = contracts.canonical_functions(module)
    if functions is None:
        return []
    findings: list[RawFinding] = []
    time_names = _imported_names(tree, "time")
    random_names = _imported_names(tree, "random")

    visitor = _Visitor(functions, findings, time_names, random_names)
    visitor.visit(tree)
    return findings


class _Visitor(ast.NodeVisitor):
    def __init__(self, functions, findings, time_names, random_names):
        self.functions = functions
        self.findings = findings
        self.time_names = time_names
        self.random_names = random_names
        self.canonical_stack: list[bool] = []

    def _emit(self, rule: str, node: ast.AST, message: str) -> None:
        self.findings.append(
            RawFinding(rule, node.lineno, node.col_offset, message)
        )

    @property
    def in_canonical(self) -> bool:
        return bool(self.canonical_stack) and self.canonical_stack[-1]

    # -- scope tracking ----------------------------------------------------

    def visit_FunctionDef(self, node):
        canonical = (
            "*" in self.functions
            or node.name in self.functions
            or self.in_canonical  # nested helper of a canonical function
        )
        self.canonical_stack.append(canonical)
        self.generic_visit(node)
        self.canonical_stack.pop()

    visit_AsyncFunctionDef = visit_FunctionDef

    # -- iteration rules ---------------------------------------------------

    def _check_iter(self, iter_node: ast.expr) -> None:
        if _is_sorted_wrapped(iter_node):
            return
        if _is_set_expr(iter_node):
            self._emit(
                "unsorted-set-iter", iter_node,
                "iteration over a set without sorted(): order varies "
                "with hash randomization",
            )
        elif self.in_canonical and _is_dict_view(iter_node):
            view = iter_node.func.attr  # type: ignore[union-attr]
            self._emit(
                "unsorted-dict-iter", iter_node,
                f"iteration over .{view}() without sorted() in a "
                "canonical-output function",
            )
        elif self.in_canonical and _is_fs_listing(iter_node):
            self._emit(
                "unsorted-glob", iter_node,
                "iteration over a filesystem listing without sorted() "
                "in a canonical-output function",
            )

    def visit_For(self, node):
        self._check_iter(node.iter)
        self.generic_visit(node)

    visit_AsyncFor = visit_For

    def _visit_comp(self, node):
        for generator in node.generators:
            self._check_iter(generator.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comp
    visit_SetComp = _visit_comp
    visit_GeneratorExp = _visit_comp
    visit_DictComp = _visit_comp

    # -- volatile-value rules ----------------------------------------------

    def visit_Call(self, node):
        if self.in_canonical:
            fn = node.func
            if isinstance(fn, ast.Attribute) and isinstance(fn.value,
                                                            ast.Name):
                base = fn.value.id
                if base == "time":
                    self._emit(
                        "time-call", node,
                        f"time.{fn.attr}(...) in a canonical-output "
                        "function",
                    )
                elif base == "random":
                    seeded = (fn.attr == "Random"
                              and bool(node.args or node.keywords))
                    if not seeded:
                        self._emit(
                            "random-call", node,
                            f"random.{fn.attr}(...) without an explicit "
                            "seed in a canonical-output function",
                        )
                elif base == "os" and fn.attr == "urandom":
                    self._emit(
                        "urandom-call", node,
                        "os.urandom(...) in a canonical-output function",
                    )
            elif isinstance(fn, ast.Name):
                if fn.id == "id":
                    self._emit(
                        "id-call", node,
                        "id(...) in a canonical-output function "
                        "(per-process addresses)",
                    )
                elif fn.id in self.time_names:
                    self._emit(
                        "time-call", node,
                        f"{fn.id}(...) (imported from time) in a "
                        "canonical-output function",
                    )
                elif fn.id in self.random_names:
                    seeded = (fn.id == "Random"
                              and bool(node.args or node.keywords))
                    if not seeded:
                        self._emit(
                            "random-call", node,
                            f"{fn.id}(...) (imported from random) without "
                            "an explicit seed in a canonical-output "
                            "function",
                        )
        self.generic_visit(node)
