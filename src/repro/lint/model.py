"""Finding model and the rule → checker-family mapping."""

from __future__ import annotations

from dataclasses import dataclass

#: Every rule belongs to exactly one family; a pragma naming either the
#: rule or its family suppresses the finding.
FAMILY_OF_RULE: dict[str, str] = {
    # float-taint checker (repro.lint.floats)
    "float-cast": "float-stage",
    "math-call": "float-stage",
    "float-literal": "float-stage",
    "int-division": "float-stage",
    # determinism checker (repro.lint.determinism)
    "unsorted-set-iter": "determinism",
    "unsorted-dict-iter": "determinism",
    "unsorted-glob": "determinism",
    "time-call": "determinism",
    "random-call": "determinism",
    "id-call": "determinism",
    "urandom-call": "determinism",
    # fork-safety checker (repro.lint.forksafety)
    "mutable-global-write": "fork-safety",
    "signal-registration": "fork-safety",
    # analyzer self-diagnostics (never suppressible by family)
    "syntax-error": "lint",
}

#: Pragma-recognized family names.
FAMILIES = ("float-stage", "determinism", "fork-safety")


@dataclass(frozen=True)
class RawFinding:
    """A checker-produced finding, before path/pragma resolution."""

    rule: str
    line: int
    col: int
    message: str


@dataclass(frozen=True)
class Finding:
    """A fully resolved finding of one lint run.

    ``suppressed`` marks findings covered by a
    ``# lint: allow[...]`` pragma on the finding line or on the
    ``def`` line of an enclosing function.
    """

    path: str
    module: str
    rule: str
    family: str
    line: int
    col: int
    message: str
    suppressed: bool

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "module": self.module,
            "rule": self.rule,
            "family": self.family,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "suppressed": self.suppressed,
        }
