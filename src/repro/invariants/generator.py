"""Top-level invariant generation API."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.invariants.engine import EngineConfig, FixpointEngine
from repro.invariants.polyhedron import Polyhedron
from repro.ts.guards import LinIneq
from repro.ts.system import Location, TransitionSystem


@dataclass
class InvariantMap:
    """Invariants per location, as consumed by constraint collection."""

    system: TransitionSystem
    invariants: dict[Location, Polyhedron] = field(default_factory=dict)

    def at(self, location: Location) -> Polyhedron:
        """Invariant at ``location`` (top when the engine proved
        nothing; bottom for unreachable locations)."""
        return self.invariants.get(location, Polyhedron.top())

    def ineqs_at(self, location: Location) -> tuple[LinIneq, ...]:
        """The invariant's inequalities (empty tuple for top/bottom)."""
        return self.at(location).ineqs

    def check_state(self, location: Location,
                    valuation: dict[str, int]) -> bool:
        """Does a concrete state satisfy the claimed invariant?  Used by
        property tests for soundness checking."""
        polyhedron = self.at(location)
        if polyhedron.is_bottom():
            return False
        return polyhedron.contains_point(valuation)

    def __str__(self) -> str:
        lines = [f"invariants for {self.system.name}:"]
        for location in self.system.locations:
            lines.append(f"  {location}: {self.at(location)}")
        return "\n".join(lines)


def generate_invariants(system: TransitionSystem,
                        hints: dict[str, tuple[LinIneq, ...]] | None = None,
                        widening_delay: int = 3,
                        narrowing_passes: int = 2) -> InvariantMap:
    """Generate affine invariants for ``system``.

    ``hints`` maps location names to *trusted* inequality conjunctions
    (frontend ``invariant(...)`` annotations end up here); they are
    conjoined during propagation, exactly like the paper's manual
    strengthening of Aspic/Sting output (the ``*`` rows of Table 1).
    """
    config = EngineConfig(
        widening_delay=widening_delay,
        narrowing_passes=narrowing_passes,
    )
    engine = FixpointEngine(system, config, hints)
    values = engine.run()
    return InvariantMap(system, values)
