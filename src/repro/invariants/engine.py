"""Worklist fixpoint engine for forward invariant generation.

Standard Cousot-style analysis: start from Θ0 at the initial location,
propagate through transitions with the polyhedral transfer function,
join at merge points, widen at widening points (targets of back edges)
after a configurable delay, then run a few narrowing (descending)
passes to recover precision lost to widening.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.invariants.polyhedron import Polyhedron
from repro.ts.system import Location, TransitionSystem


@dataclass
class EngineConfig:
    """Tuning knobs of the fixpoint engine."""

    widening_delay: int = 3
    narrowing_passes: int = 2
    max_iterations: int = 10_000


class FixpointEngine:
    """Computes one polyhedron per location over-approximating
    reachability."""

    def __init__(self, system: TransitionSystem,
                 config: EngineConfig | None = None,
                 hints: dict[str, tuple] | None = None):
        self.system = system
        self.config = config or EngineConfig()
        # Hints (trusted annotations) are conjoined at their location on
        # every propagation, mirroring the paper's manual strengthening.
        self.hints = {
            name: tuple(ineqs) for name, ineqs in (hints or {}).items()
        }

    def _apply_hints(self, location: Location,
                     polyhedron: Polyhedron) -> Polyhedron:
        hint = self.hints.get(location.name)
        if hint and not polyhedron.is_bottom():
            return polyhedron.meet(hint)
        return polyhedron

    def _widening_points(self) -> set[Location]:
        """Locations that are targets of back edges (DFS on transitions).

        Widening at these locations guarantees termination of the
        ascending iteration.
        """
        color: dict[Location, int] = {}
        back_targets: set[Location] = set()

        def visit(location: Location) -> None:
            color[location] = 1
            for transition in self.system.outgoing(location):
                target = transition.target
                state = color.get(target, 0)
                if state == 0:
                    visit(target)
                elif state == 1:
                    back_targets.add(target)
            color[location] = 2

        visit(self.system.initial_location)
        return back_targets

    def run(self) -> dict[Location, Polyhedron]:
        """Compute the invariant map."""
        state_vars = self.system.state_variables
        initial = self._apply_hints(
            self.system.initial_location,
            Polyhedron(self.system.init_constraint),
        )
        values: dict[Location, Polyhedron] = {
            location: Polyhedron.bottom() for location in self.system.locations
        }
        values[self.system.initial_location] = initial

        widening_points = self._widening_points()
        visits: dict[Location, int] = {}
        worklist: list[Location] = [self.system.initial_location]
        iterations = 0

        while worklist and iterations < self.config.max_iterations:
            iterations += 1
            location = worklist.pop(0)
            current = values[location]
            if current.is_bottom():
                continue
            for transition in self.system.outgoing(location):
                target = transition.target
                post = current.transfer(transition, state_vars)
                post = self._apply_hints(target, post)
                if post.is_bottom():
                    continue
                old = values[target]
                if post.entails_all(old) and not old.is_bottom():
                    continue  # no new information
                joined = old.join(post)
                visits[target] = visits.get(target, 0) + 1
                if (target in widening_points
                        and visits[target] > self.config.widening_delay):
                    joined = old.widen(joined)
                # No reduce() here: redundant-but-stable constraints
                # (e.g. i <= n+1 alongside a transient i <= 1) must stay
                # so widening can keep them; reduction happens once at
                # the end.
                values[target] = joined
                if target not in worklist:
                    worklist.append(target)

        # Narrowing: re-propagate without widening; interseect with the
        # computed post to claw back precision (finitely many passes).
        for _ in range(self.config.narrowing_passes):
            changed = False
            for location in self.system.locations:
                if location == self.system.initial_location:
                    continue
                posts: list[Polyhedron] = []
                for transition in self.system.transitions:
                    if transition.target != location:
                        continue
                    source_value = values[transition.source]
                    if source_value.is_bottom():
                        continue
                    posts.append(source_value.transfer(transition, state_vars))
                posts = [p for p in posts if not p.is_bottom()]
                if not posts:
                    continue
                refined = posts[0]
                for post in posts[1:]:
                    refined = refined.join(post)
                refined = self._apply_hints(location, refined)
                # Sound descending step: the new value must stay above
                # the eventual fixpoint; intersecting the current value
                # with the recomputed post is the classic narrowing.
                narrowed = values[location].meet(refined)
                if narrowed != values[location]:
                    values[location] = narrowed
                    changed = True
            if not changed:
                break

        return {
            location: polyhedron.reduce()
            for location, polyhedron in values.items()
        }
