"""A polyhedra-lite abstract domain: conjunctions of affine inequalities.

Operations are implemented with exact rational LPs
(:class:`~repro.lp.revised.RevisedSimplexBackend`), so the domain is
sound by construction — no floating-point tolerance enters invariant
generation.  The join is the *weak join* (mutual entailment filter),
which over-approximates the convex hull; widening is the standard
constraint-dropping widening.  Existential projection uses
Fourier-Motzkin elimination with eager redundancy pruning.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Mapping, Sequence

from repro.invariants.intervals import Interval, polynomial_range
from repro.lp.model import LPModel
from repro.lp.scipy_backend import ScipyBackend
from repro.lp.revised import RevisedSimplexBackend
from repro.lp.solution import LPStatus
from repro.poly.polynomial import Polynomial
from repro.ts.guards import LinIneq
from repro.ts.system import COST_VAR, NondetUpdate, Transition

_SOLVER = RevisedSimplexBackend()
_FLOAT_SOLVER = ScipyBackend()
_POST_SUFFIX = "!post"

# Hybrid solving: HiGHS answers the (tiny) entailment/emptiness LPs fast;
# verdicts within _MARGIN of the decision boundary — and every verdict
# whose error would make the abstract domain *unsound* (claimed
# entailment, claimed emptiness) that is not clear-cut — are re-decided
# with the exact rational simplex.
_MARGIN = 1e-6

# Memo tables (polyhedra are immutable value objects, so results are
# shared freely across instances with equal constraint sets).
_ENTAILS_CACHE: dict[tuple, bool] = {}
_EMPTY_CACHE: dict[frozenset, bool] = {}
_CACHE_LIMIT = 200_000


class Polyhedron:
    """An immutable conjunction of :class:`LinIneq` (or bottom)."""

    __slots__ = ("_ineqs", "_bottom")

    def __init__(self, ineqs: Iterable[LinIneq] = (), bottom: bool = False):
        normalized: list[LinIneq] = []
        seen: set[LinIneq] = set()
        for ineq in ineqs:
            canonical = ineq.normalize()
            if canonical.is_trivial() or canonical in seen:
                continue
            if canonical.is_contradiction():
                bottom = True
                break
            seen.add(canonical)
            normalized.append(canonical)
        self._bottom = bottom
        self._ineqs: tuple[LinIneq, ...] = () if bottom else tuple(normalized)

    # -- constructors ---------------------------------------------------

    @staticmethod
    def top() -> "Polyhedron":
        """The universe (no constraints)."""
        return Polyhedron()

    @staticmethod
    def bottom() -> "Polyhedron":
        """The empty polyhedron."""
        return Polyhedron(bottom=True)

    # -- inspection -----------------------------------------------------

    @property
    def ineqs(self) -> tuple[LinIneq, ...]:
        """The constraint conjunction (empty for top and bottom)."""
        return self._ineqs

    def is_bottom(self) -> bool:
        """True iff the polyhedron is (known) empty.

        The constructor only detects syntactic contradictions; call
        :meth:`reduce` to decide emptiness semantically.
        """
        return self._bottom

    @property
    def variables(self) -> frozenset[str]:
        """Variables mentioned by any constraint."""
        names: set[str] = set()
        for ineq in self._ineqs:
            names.update(ineq.variables)
        return frozenset(names)

    def contains_point(self, valuation: Mapping[str, int]) -> bool:
        """Membership test for a concrete valuation."""
        if self._bottom:
            return False
        return all(ineq.holds(valuation) for ineq in self._ineqs)

    # -- LP-backed queries ------------------------------------------------

    def _feasibility_model(self) -> LPModel:
        model = LPModel()
        for ineq in self._ineqs:
            model.add_inequality(ineq.expr)
        return model

    def is_empty(self) -> bool:
        """Semantic emptiness (hybrid float/exact feasibility LP).

        A "feasible" float verdict is accepted (erring on the sound,
        larger-polyhedron side); an "infeasible" verdict is confirmed by
        the exact simplex before bottom is reported, because wrongly
        declaring emptiness would make the abstract domain unsound.
        """
        if self._bottom:
            return True
        if not self._ineqs:
            return False
        key = frozenset(self._ineqs)
        cached = _EMPTY_CACHE.get(key)
        if cached is not None:
            return cached
        float_solution = _FLOAT_SOLVER.solve(self._feasibility_model())
        if float_solution.status is LPStatus.INFEASIBLE:
            exact = _SOLVER.solve(self._feasibility_model())
            result = exact.status is LPStatus.INFEASIBLE
        else:
            result = False
        if len(_EMPTY_CACHE) < _CACHE_LIMIT:
            _EMPTY_CACHE[key] = result  # lint: allow[mutable-global-write] pure memo cache; worker divergence is perf-only
        return result

    def minimize(self, expr) -> Fraction | None:
        """Exact minimum of an affine expression over the polyhedron.

        Returns ``None`` when unbounded below; raises nothing on bottom
        (callers should check).  ``expr`` is an
        :class:`~repro.poly.linexpr.AffineExpr`.
        """
        model = self._feasibility_model()
        model.minimize(expr)
        solution = _SOLVER.solve(model)
        if solution.status is LPStatus.UNBOUNDED:
            return None
        if solution.status is LPStatus.INFEASIBLE:
            raise ValueError("minimize called on an empty polyhedron")
        return solution.objective_value

    def entails(self, ineq: LinIneq) -> bool:
        """Does every point of the polyhedron satisfy ``ineq``?

        Hybrid: a clearly positive float minimum accepts entailment, a
        clearly negative one rejects it; borderline values (and the
        degenerate solver statuses) fall back to the exact simplex.
        Positive verdicts are the soundness-critical direction, so the
        acceptance margin is applied to them as well.
        """
        if self._bottom:
            return True
        canonical = ineq.normalize()
        if canonical.is_trivial():
            return True
        if not self._ineqs:
            return False
        if canonical in self._ineqs:
            return True
        key = (frozenset(self._ineqs), canonical)
        cached = _ENTAILS_CACHE.get(key)
        if cached is not None:
            return cached
        result = self._entails_uncached(ineq)
        if len(_ENTAILS_CACHE) < _CACHE_LIMIT:
            _ENTAILS_CACHE[key] = result  # lint: allow[mutable-global-write] pure memo cache; worker divergence is perf-only
        return result

    def _entails_uncached(self, ineq: LinIneq) -> bool:
        model = self._feasibility_model()
        model.minimize(ineq.expr)
        float_solution = _FLOAT_SOLVER.solve(model)
        if float_solution.status is LPStatus.OPTIMAL:
            value = float(float_solution.objective_value)
            scale = 1.0 + abs(value)
            if value >= _MARGIN * scale:
                # Clear-cut positive: accepted without exact replay.  On
                # these tiny LPs HiGHS is accurate to ~1e-9, far inside
                # the margin; end-to-end soundness is additionally
                # monitored by the run-based certificate checker.
                return True
            if value <= -_MARGIN * scale:
                return False
        elif float_solution.status is LPStatus.UNBOUNDED:
            return False
        return self._entails_exact(ineq)

    def _entails_exact(self, ineq: LinIneq) -> bool:
        """Exact decision with the rational simplex (borderline cases)."""
        model = self._feasibility_model()
        model.minimize(ineq.expr)
        solution = _SOLVER.solve(model)
        if solution.status is LPStatus.INFEASIBLE:
            return True
        if solution.status is LPStatus.UNBOUNDED:
            return False
        return solution.objective_value >= 0

    def _entails_for_pruning(self, ineq: LinIneq) -> bool:
        """Float-only entailment used by redundancy *pruning*.

        Dropping a constraint always enlarges the polyhedron, so a wrong
        "entailed" verdict here costs precision, never soundness; an
        ambiguous verdict defaults to "not entailed" (keep).  This
        avoids the exact simplex entirely on the hot Fourier-Motzkin
        pruning path.
        """
        if self._bottom:
            return True
        canonical = ineq.normalize()
        if canonical.is_trivial():
            return True
        if not self._ineqs:
            return False
        if canonical in self._ineqs:
            return True
        model = self._feasibility_model()
        model.minimize(ineq.expr)
        solution = _FLOAT_SOLVER.solve(model)
        if solution.status is LPStatus.INFEASIBLE:
            return True
        if solution.status is not LPStatus.OPTIMAL:
            return False
        value = float(solution.objective_value)
        return value >= _MARGIN * (1.0 + abs(value))

    def entails_all(self, other: "Polyhedron") -> bool:
        """Inclusion check ``self ⊆ other``."""
        if self._bottom:
            return True
        if other._bottom:
            return self.is_empty()
        return all(self.entails(ineq) for ineq in other._ineqs)

    def var_bounds(self, var: str) -> Interval:
        """Exact interval bounds of ``var`` over the polyhedron."""
        if self._bottom:
            return Interval.point(0)
        from repro.poly.linexpr import AffineExpr

        expr = AffineExpr.variable(var)
        lower = self.minimize(expr)
        negated_upper = self.minimize(-expr)
        upper = None if negated_upper is None else -negated_upper
        if lower is not None and upper is not None and lower > upper:
            return Interval.point(0)  # empty; callers treat as degenerate
        return Interval(lower, upper)

    def all_bounds(self) -> dict[str, Interval]:
        """Interval bounds for every mentioned variable."""
        return {var: self.var_bounds(var) for var in sorted(self.variables)}

    # -- lattice operations --------------------------------------------------

    def meet(self, other: "Polyhedron | Iterable[LinIneq]") -> "Polyhedron":
        """Conjunction."""
        if isinstance(other, Polyhedron):
            if self._bottom or other._bottom:
                return Polyhedron.bottom()
            return Polyhedron(self._ineqs + other._ineqs)
        if self._bottom:
            return Polyhedron.bottom()
        return Polyhedron(self._ineqs + tuple(other))

    def join(self, other: "Polyhedron") -> "Polyhedron":
        """Weak join: keep each side's constraints entailed by the other.

        Sound (the result contains both operands) though weaker than the
        convex hull.  All mutually entailed constraints are kept, even
        mutually redundant ones: a constraint such as ``i <= n + 1`` may
        be redundant w.r.t. a transient ``i <= 1`` now but must survive
        the widening that later drops the transient one — eager
        redundancy elimination here is exactly what loses loop bounds.
        """
        if self._bottom or self.is_empty():
            return other
        if other._bottom or other.is_empty():
            return self
        kept = [ineq for ineq in self._ineqs if other.entails(ineq)]
        present = set(kept)
        for ineq in other._ineqs:
            canonical = ineq.normalize()
            if canonical not in present and self.entails(ineq):
                present.add(canonical)
                kept.append(ineq)
        return Polyhedron(kept)

    def widen(self, newer: "Polyhedron") -> "Polyhedron":
        """Standard widening: drop constraints not entailed by ``newer``."""
        if self._bottom:
            return newer
        if newer._bottom:
            return self
        return Polyhedron(
            ineq for ineq in self._ineqs if newer.entails(ineq)
        )

    def reduce(self) -> "Polyhedron":
        """Remove redundant constraints; detect emptiness.

        Purely a pruning operation (the result is never smaller than
        the input as a set of points), so the float-only entailment is
        used throughout.
        """
        if self._bottom:
            return self
        if self.is_empty():
            return Polyhedron.bottom()
        kept: list[LinIneq] = list(self._ineqs)
        index = 0
        while index < len(kept):
            candidate = kept[index]
            rest = Polyhedron(kept[:index] + kept[index + 1:])
            if rest._entails_for_pruning(candidate):
                kept.pop(index)
            else:
                index += 1
        return Polyhedron(kept)

    # -- projection -------------------------------------------------------------

    def project_out(self, variables: Sequence[str],
                    max_constraints: int = 64) -> "Polyhedron":
        """Existentially quantify ``variables`` via Fourier-Motzkin.

        After each elimination the constraint set is pruned; if it still
        exceeds ``max_constraints``, the loosest constraints are dropped
        (sound: dropping constraints only enlarges the polyhedron).
        """
        if self._bottom:
            return self
        current = list(self._ineqs)
        remaining = list(variables)
        while remaining:
            # Pick the variable with the fewest pairings to limit growth.
            def elimination_size(var: str) -> int:
                pos = sum(1 for i in current if i.expr.coefficient(var) > 0)
                neg = sum(1 for i in current if i.expr.coefficient(var) < 0)
                return pos * neg

            remaining.sort(key=elimination_size)
            var = remaining.pop(0)
            current = _eliminate(current, var)
            if len(current) > max_constraints:
                reduced = Polyhedron(current).reduce()
                current = list(reduced.ineqs)
                if len(current) > max_constraints:
                    current = current[:max_constraints]
        return Polyhedron(current)

    # -- transfer function ---------------------------------------------------------

    def transfer(self, transition: Transition,
                 state_variables: Sequence[str]) -> "Polyhedron":
        """Strongest affine postcondition (over-approximated).

        The pre-state is constrained by the guard; post-state variables
        are introduced as primed copies related to the pre-state by the
        updates (equalities for affine updates, interval bounds for
        non-affine ones, bound inequalities for nondet); pre-state
        variables are then projected out.  The ``cost`` variable is not
        tracked (potentials never mention it).
        """
        guarded = self.meet(transition.guard)
        if guarded.is_empty():
            return Polyhedron.bottom()

        constraints: list[LinIneq] = list(guarded.ineqs)
        primed: list[str] = []
        interval_cache: dict[str, Interval] | None = None
        for var in state_variables:
            if var == COST_VAR:
                continue
            update = transition.update_of(var)
            post = var + _POST_SUFFIX
            primed.append(var)
            if isinstance(update, NondetUpdate):
                post_poly = Polynomial.variable(post)
                if update.lower is not None:
                    constraints.append(LinIneq.geq(post_poly, update.lower))
                if update.upper is not None:
                    constraints.append(LinIneq.leq(post_poly, update.upper))
                continue
            if update.is_affine():
                post_poly = Polynomial.variable(post)
                constraints.extend(LinIneq.equals(post_poly, update))
                continue
            # Non-affine polynomial update: fall back to interval bounds.
            if interval_cache is None:
                interval_cache = guarded.all_bounds()
            value_range = polynomial_range(update, interval_cache)
            post_poly = Polynomial.variable(post)
            if value_range.lower is not None:
                constraints.append(
                    LinIneq.geq(post_poly, Polynomial.constant(value_range.lower))
                )
            if value_range.upper is not None:
                constraints.append(
                    LinIneq.leq(post_poly, Polynomial.constant(value_range.upper))
                )

        polyhedron = Polyhedron(constraints)
        polyhedron = polyhedron.project_out(
            [var for var in state_variables if var != COST_VAR]
        )
        renaming = {var + _POST_SUFFIX: var for var in primed}
        return Polyhedron(ineq.rename(renaming) for ineq in polyhedron.ineqs)

    # -- dunder plumbing ---------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Polyhedron):
            return NotImplemented
        if self._bottom or other._bottom:
            return self._bottom == other._bottom
        return set(self._ineqs) == set(other._ineqs)

    def __hash__(self) -> int:
        return hash((self._bottom, frozenset(self._ineqs)))

    def __str__(self) -> str:
        if self._bottom:
            return "false"
        if not self._ineqs:
            return "true"
        return " and ".join(str(ineq) for ineq in self._ineqs)

    def __repr__(self) -> str:
        return f"Polyhedron({str(self)!r})"


def _eliminate(ineqs: list[LinIneq], var: str) -> list[LinIneq]:
    """One Fourier-Motzkin elimination step."""
    free: list[LinIneq] = []
    positive: list[LinIneq] = []
    negative: list[LinIneq] = []
    for ineq in ineqs:
        coefficient = ineq.expr.coefficient(var)
        if coefficient > 0:
            positive.append(ineq)
        elif coefficient < 0:
            negative.append(ineq)
        else:
            free.append(ineq)
    for pos in positive:
        a_pos = pos.expr.coefficient(var)
        for neg in negative:
            a_neg = neg.expr.coefficient(var)
            combined = pos.expr.scale(-a_neg) + neg.expr.scale(a_pos)
            free.append(LinIneq(combined).normalize())
    # Drop syntactic duplicates and trivia.
    result: list[LinIneq] = []
    seen: set[LinIneq] = set()
    for ineq in free:
        if ineq.is_trivial() or ineq in seen:
            continue
        seen.add(ineq)
        result.append(ineq)
    return result
