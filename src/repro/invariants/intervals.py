"""Interval arithmetic over (possibly unbounded) rational intervals.

Used by the invariant generator to bound the value of a *non-affine*
polynomial update from interval bounds on its inputs, and by the
Handelman encoder's compactness check.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Mapping

from repro.poly.polynomial import Polynomial

Bound = Fraction | None  # None encodes the corresponding infinity.


@dataclass(frozen=True)
class Interval:
    """A closed interval with optional infinite endpoints.

    ``lower is None`` means −∞; ``upper is None`` means +∞.
    """

    lower: Bound = None
    upper: Bound = None

    def __post_init__(self):
        if (self.lower is not None and self.upper is not None
                and self.lower > self.upper):
            raise ValueError(f"empty interval [{self.lower}, {self.upper}]")

    @staticmethod
    def top() -> "Interval":
        """The unbounded interval."""
        return Interval(None, None)

    @staticmethod
    def point(value: Fraction | int) -> "Interval":
        """A singleton interval."""
        value = Fraction(value)
        return Interval(value, value)

    def is_bounded(self) -> bool:
        """True iff both endpoints are finite."""
        return self.lower is not None and self.upper is not None

    def contains(self, value: Fraction | int) -> bool:
        """Membership test."""
        value = Fraction(value)
        if self.lower is not None and value < self.lower:
            return False
        if self.upper is not None and value > self.upper:
            return False
        return True

    # -- arithmetic -------------------------------------------------------

    def add(self, other: "Interval") -> "Interval":
        """Interval addition."""
        return Interval(
            _add(self.lower, other.lower),
            _add(self.upper, other.upper),
        )

    def negate(self) -> "Interval":
        """Interval negation."""
        return Interval(
            None if self.upper is None else -self.upper,
            None if self.lower is None else -self.lower,
        )

    def scale(self, factor: Fraction) -> "Interval":
        """Multiplication by a constant."""
        if factor == 0:
            return Interval.point(0)
        if factor > 0:
            return Interval(
                None if self.lower is None else self.lower * factor,
                None if self.upper is None else self.upper * factor,
            )
        return self.negate().scale(-factor)

    def multiply(self, other: "Interval") -> "Interval":
        """Full interval multiplication."""
        candidates: list[Bound] = []
        unbounded = False
        for a in (self.lower, self.upper):
            for b in (other.lower, other.upper):
                if a is None or b is None:
                    # An infinite endpoint makes the product unbounded
                    # unless the other side is identically zero; keep it
                    # simple and go to top on that side.
                    unbounded = True
                else:
                    candidates.append(a * b)
        if unbounded or not candidates:
            # Zero-crossing refinements are possible but unnecessary for
            # our use (bounded program variables).
            if self == Interval.point(0) or other == Interval.point(0):
                return Interval.point(0)
            return Interval.top()
        return Interval(min(candidates), max(candidates))

    def power(self, exponent: int) -> "Interval":
        """Interval exponentiation by repeated multiplication."""
        result = Interval.point(1)
        for _ in range(exponent):
            result = result.multiply(self)
        return result

    def hull(self, other: "Interval") -> "Interval":
        """Smallest interval containing both."""
        lower = None
        if self.lower is not None and other.lower is not None:
            lower = min(self.lower, other.lower)
        upper = None
        if self.upper is not None and other.upper is not None:
            upper = max(self.upper, other.upper)
        return Interval(lower, upper)

    def __str__(self) -> str:
        low = "-oo" if self.lower is None else str(self.lower)
        high = "+oo" if self.upper is None else str(self.upper)
        return f"[{low}, {high}]"


def _add(a: Bound, b: Bound) -> Bound:
    if a is None or b is None:
        return None
    return a + b


def polynomial_range(poly: Polynomial,
                     bounds: Mapping[str, Interval]) -> Interval:
    """Bound the value of ``poly`` given interval bounds per variable.

    Missing variables are treated as unbounded.
    """
    total = Interval.point(0)
    for mono, coeff in poly.terms():
        factor = Interval.point(1)
        for var, exp in mono.items():
            factor = factor.multiply(
                bounds.get(var, Interval.top()).power(exp)
            )
        total = total.add(factor.scale(coeff))
    return total
