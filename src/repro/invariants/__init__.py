"""Affine invariant generation (our replacement for Aspic/Sting).

The analysis needs, for each location, a conjunction of affine
inequalities over-approximating the reachable states (algorithm
assumption 1).  This package computes such invariants by forward
abstract interpretation on a polyhedra-lite domain:

- :class:`~repro.invariants.polyhedron.Polyhedron` — conjunctions of
  :class:`~repro.ts.guards.LinIneq` with exact LP-based entailment,
  meet, weak join, widening and Fourier-Motzkin projection;
- :mod:`~repro.invariants.intervals` — interval arithmetic used to bound
  non-affine (polynomial) updates;
- :mod:`~repro.invariants.engine` — the worklist fixpoint with delayed
  widening and narrowing;
- :func:`~repro.invariants.generator.generate_invariants` — the public
  entry point, which also conjoins user annotations (the paper's
  manually strengthened invariants, marked ``*`` in Table 1).
"""

from repro.invariants.polyhedron import Polyhedron
from repro.invariants.intervals import Interval, polynomial_range
from repro.invariants.engine import FixpointEngine
from repro.invariants.generator import InvariantMap, generate_invariants

__all__ = [
    "Polyhedron",
    "Interval",
    "polynomial_range",
    "FixpointEngine",
    "InvariantMap",
    "generate_invariants",
]
