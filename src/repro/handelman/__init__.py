"""Handelman-based positivity encoding (paper Step 3).

Converts implication constraints

    aff_1(x) >= 0 ∧ ... ∧ aff_k(x) >= 0  ⇒  poly(x) >= 0

(with ``poly`` linear in the symbolic template variables) into purely
existentially quantified *linear* constraints by requiring ``poly`` to be
a nonnegative combination of products of at most ``K`` of the ``aff_i``
(Handelman's theorem gives completeness for strictly positive ``poly``
over compact ``⟨Aff⟩``).
"""

from repro.handelman.products import generate_products
from repro.handelman.encode import ImplicationConstraint, encode_implication
from repro.handelman.farkas import encode_affine_implication

__all__ = [
    "generate_products",
    "ImplicationConstraint",
    "encode_implication",
    "encode_affine_implication",
]
