"""Farkas'-lemma encoding: the affine special case of Handelman.

When the consequent is affine (template degree 1), products of more than
one premise inequality can never help match monomials of degree ≥ 2
unless they cancel; the classical Farkas encoding (``K = 1``) is then
complete over nonempty polyhedra.  Exposed separately for the ablation
benchmark comparing ``K`` values and for tests.
"""

from __future__ import annotations

from repro.handelman.encode import (
    EncodingStats,
    ImplicationConstraint,
    encode_implication,
)
from repro.lp.model import LPModel
from repro.utils.naming import FreshNameGenerator


def encode_affine_implication(constraint: ImplicationConstraint,
                              model: LPModel,
                              fresh: FreshNameGenerator) -> EncodingStats:
    """Encode with products of at most one premise inequality."""
    return encode_implication(constraint, model, fresh, max_factors=1)
