"""Encoding of implication constraints into LP equalities.

Each :class:`ImplicationConstraint` ``⋀ aff_i >= 0 ⇒ poly >= 0`` becomes

    poly(x)  ==  Σ_{g ∈ Prod_K(Aff)} c_g · g(x),   c_g >= 0

as a polynomial identity: for every monomial, the (template-linear)
coefficient on the left equals the linear combination of the products'
coefficients on the right.  All generated constraints are linear in the
template symbols and the fresh ``c_g``, so the result is an LP.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.handelman.products import generate_products
from repro.lp.model import LPModel
from repro.poly.linexpr import AffineExpr
from repro.poly.monomial import Monomial
from repro.poly.template import TemplatePolynomial
from repro.ts.guards import LinIneq
from repro.utils.naming import FreshNameGenerator


@dataclass
class ImplicationConstraint:
    """``premise ⇒ consequent >= 0`` with a template-linear consequent."""

    premise: tuple[LinIneq, ...]
    consequent: TemplatePolynomial
    name: str

    def __str__(self) -> str:
        premise = " and ".join(str(p) for p in self.premise) or "true"
        return f"[{self.name}] {premise} => {self.consequent} >= 0"


@dataclass
class EncodingStats:
    """Size accounting for one encoded implication."""

    products: int
    monomials: int


def encode_implication(constraint: ImplicationConstraint, model: LPModel,
                       fresh: FreshNameGenerator,
                       max_factors: int) -> EncodingStats:
    """Encode one implication into ``model``; returns size statistics.

    Fresh nonnegative multiplier variables are named
    ``c[<constraint name>]!<index>``.
    """
    affine_polys = [ineq.expr.to_polynomial() for ineq in constraint.premise]
    products = generate_products(affine_polys, max_factors)

    combination = TemplatePolynomial.zero()
    for product in products:
        multiplier = fresh.fresh(f"c[{constraint.name}]")
        model.add_variable(multiplier, lower=0)
        # Normalize the product to unit max-coefficient: mathematically
        # a reparametrization of c_g (which is nonnegative either way)
        # but it keeps the LP matrix well-conditioned — degree-3
        # products of [1,100]-box constraints otherwise reach 1e6-scale
        # coefficients that make HiGHS fail.
        largest = max(abs(coeff) for _, coeff in product.terms())
        if largest > 1:
            product = product.scale(1 / largest)
        combination = combination + TemplatePolynomial.from_symbol(
            multiplier
        ).multiply_polynomial(product)

    difference = constraint.consequent - combination
    monomials: list[Monomial] = difference.monomials()
    for mono in monomials:
        coefficient: AffineExpr = difference.coefficient(mono)
        model.add_equality(coefficient, name=f"{constraint.name}:{mono}")
    return EncodingStats(products=len(products), monomials=len(monomials))
