"""Generation of the product set ``Prod_K(Aff)``.

``Prod_K(Aff)`` is the set of products of at most ``K`` (with
repetition) affine expressions from ``Aff``, including the empty product
``1``.  Every element is nonnegative wherever all ``aff_i >= 0`` hold,
which is what makes the encoding sound.
"""

from __future__ import annotations

import itertools

from repro.poly.polynomial import Polynomial


def generate_products(affine_exprs: list[Polynomial],
                      max_factors: int) -> list[Polynomial]:
    """All products of at most ``max_factors`` expressions (paper's
    ``Prod_K``), deduplicated as polynomials, constant ``1`` first.

    >>> x = Polynomial.variable("x")
    >>> [str(p) for p in generate_products([x], 2)]
    ['1', 'x', 'x^2']
    """
    products: list[Polynomial] = []
    seen: set[Polynomial] = set()

    def add(poly: Polynomial) -> None:
        if poly.is_zero():
            return
        if poly not in seen:
            seen.add(poly)
            products.append(poly)

    add(Polynomial.constant(1))
    # Deduplicate the generators themselves first (guards often repeat
    # invariant inequalities verbatim).
    generators: list[Polynomial] = []
    generator_seen: set[Polynomial] = set()
    for expr in affine_exprs:
        if expr not in generator_seen and not expr.is_zero():
            generator_seen.add(expr)
            generators.append(expr)

    for count in range(1, max_factors + 1):
        for combo in itertools.combinations_with_replacement(generators, count):
            product = Polynomial.constant(1)
            for factor in combo:
                product = product * factor
            add(product)
    return products
