"""Generation of the product set ``Prod_K(Aff)``.

``Prod_K(Aff)`` is the set of products of at most ``K`` (with
repetition) affine expressions from ``Aff``, including the empty product
``1``.  Every element is nonnegative wherever all ``aff_i >= 0`` hold,
which is what makes the encoding sound.

Products are enumerated with *prefix sharing*: the degree-``k`` level is
built by multiplying each degree-``(k-1)`` product by one more generator
(with index at least the prefix's last index, so each multiset is
enumerated exactly once).  Every product therefore costs exactly one
polynomial multiplication off its parent — the seed re-multiplied each
combination from the constant polynomial up, i.e. ``k`` multiplies per
degree-``k`` product.  The enumeration order is identical to
``itertools.combinations_with_replacement`` per level, so generated LP
columns (and hence pivot sequences) are unchanged.
"""

from __future__ import annotations

from repro.poly.polynomial import Polynomial


def generate_products(affine_exprs: list[Polynomial],
                      max_factors: int) -> list[Polynomial]:
    """All products of at most ``max_factors`` expressions (paper's
    ``Prod_K``), deduplicated as polynomials, constant ``1`` first.

    >>> x = Polynomial.variable("x")
    >>> [str(p) for p in generate_products([x], 2)]
    ['1', 'x', 'x^2']
    """
    products: list[Polynomial] = []
    seen: set[Polynomial] = set()

    def add(poly: Polynomial) -> None:
        if poly.is_zero():
            return
        if poly not in seen:
            seen.add(poly)
            products.append(poly)

    one = Polynomial.constant(1)
    add(one)
    # Deduplicate the generators themselves first (guards often repeat
    # invariant inequalities verbatim).
    generators: list[Polynomial] = []
    generator_seen: set[Polynomial] = set()
    for expr in affine_exprs:
        if expr not in generator_seen and not expr.is_zero():
            generator_seen.add(expr)
            generators.append(expr)

    # Level k holds every product of exactly k generators as
    # (product, smallest generator index allowed to extend it).
    level: list[tuple[Polynomial, int]] = [(one, 0)]
    for _ in range(max_factors):
        next_level: list[tuple[Polynomial, int]] = []
        for prefix, start in level:
            for index in range(start, len(generators)):
                product = prefix * generators[index]
                add(product)
                next_level.append((product, index))
        level = next_level
    return products
